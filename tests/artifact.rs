//! Integration tests for the artifact-harness tooling: the
//! `tools/bench-compare.sh --all` trajectory walk over the committed
//! `BENCH_PR*.json` reports must hold op-count parity and emit
//! well-formed delta output, and a perturbed op count anywhere in the
//! sequence must fail the walk.
//!
//! These run the real shell script via `bash` from the repository root
//! (integration tests execute with the package root as CWD).

use std::path::Path;
use std::process::{Command, Output};

fn bench_compare(args: &[&str]) -> Output {
    Command::new("bash")
        .arg("tools/bench-compare.sh")
        .args(args)
        .output()
        .expect("spawn tools/bench-compare.sh")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn trajectory_walk_holds_op_count_parity() {
    for f in ["BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR4.json", "BENCH_PR5.json"] {
        assert!(Path::new(f).exists(), "committed report {f} missing");
    }
    let out = bench_compare(&["--all"]);
    let text = stdout_of(&out);
    assert!(
        out.status.success(),
        "--all failed:\n{text}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Verdict and per-pair delta tables are present and well-formed.
    assert!(text.contains("trajectory OK"), "missing verdict:\n{text}");
    assert!(
        text.contains("op counts identical across all shared spans"),
        "missing per-pair parity line:\n{text}"
    );
    assert!(
        text.contains("total_ns delta") && text.contains("self_ns delta"),
        "missing delta-table header:\n{text}"
    );
    // Same-kind pairs compared, methodology boundary skipped, not gated.
    assert!(
        text.contains("BENCH_PR1.json -> BENCH_PR2.json (session)"),
        "session pair not compared:\n{text}"
    );
    assert!(
        text.contains("BENCH_PR4.json -> BENCH_PR5.json (loadgen)"),
        "loadgen pair not compared:\n{text}"
    );
    assert!(
        text.contains("methodology change (session -> loadgen)"),
        "kind boundary not announced:\n{text}"
    );

    // The trajectory summary covers every committed report, oldest first.
    let summary = text
        .split("trajectory summary")
        .nth(1)
        .expect("summary section");
    let mut last = 0;
    for f in ["BENCH_PR1.json", "BENCH_PR2.json", "BENCH_PR4.json", "BENCH_PR5.json"] {
        let pos = summary.find(f).unwrap_or_else(|| panic!("{f} missing from summary:\n{text}"));
        assert!(pos > last, "{f} out of order in summary:\n{text}");
        last = pos;
    }
    // The loadgen rows carry the headline throughput trajectory.
    assert!(summary.contains("390.98"), "PR4 req/s missing:\n{text}");
    assert!(summary.contains("537.98"), "PR5 req/s missing:\n{text}");
}

#[test]
fn trajectory_walk_fails_on_perturbed_op_count() {
    let original = std::fs::read_to_string("BENCH_PR5.json").expect("read BENCH_PR5.json");
    let perturbed = original.replacen("\"pairings\": 20700", "\"pairings\": 20701", 1);
    assert_ne!(original, perturbed, "perturbation did not apply — baseline changed?");

    let dir = std::env::temp_dir().join(format!("dlr-artifact-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bad = dir.join("BENCH_PR5_perturbed.json");
    std::fs::write(&bad, perturbed).expect("write perturbed report");

    let out = bench_compare(&["--all", "BENCH_PR4.json", bad.to_str().unwrap()]);
    let text = stdout_of(&out);
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        !out.status.success(),
        "--all must fail on an op-count drift:\n{text}"
    );
    assert!(
        text.contains("OP-COUNT MISMATCH"),
        "missing mismatch report:\n{text}"
    );
    assert!(
        text.contains("ops.pairings 20700 -> 20701"),
        "mismatch report must name the drifted op:\n{text}"
    );
}

#[test]
fn pairwise_compare_rejects_bad_usage() {
    let out = bench_compare(&["BENCH_PR4.json"]);
    assert_eq!(out.status.code(), Some(2), "one-file usage must exit 2");
    let out = bench_compare(&["--all", "BENCH_PR4.json"]);
    assert_eq!(out.status.code(), Some(2), "--all with one file must exit 2");
}
