//! End-to-end exercise of the dlr-server subsystem through the workspace
//! facade: many concurrent clients over real TCP, structured error paths,
//! and an epoch refresh landing while traffic is in flight.

use dlr::core::driver::{self, ErrorCode, GENERATION_ANY};
use dlr::core::dlr as scheme;
use dlr::core::CoreError;
use dlr::prelude::*;
use dlr::protocol::transport::TcpTransport;
use dlr::server::{Keyring, LoadgenConfig, Server, ServerConfig, ServerHandle, StatsSnapshot};
use rand::SeedableRng;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

type E = Toy;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn toy_params() -> SchemeParams {
    SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        max_sessions: 16,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

struct RunningServer {
    handle: ServerHandle,
    thread: std::thread::JoinHandle<std::io::Result<StatsSnapshot>>,
}

impl RunningServer {
    fn addr(&self) -> SocketAddr {
        self.handle.local_addr()
    }

    fn stop(self) -> StatsSnapshot {
        self.handle.shutdown();
        self.thread.join().expect("server thread").expect("server run")
    }
}

fn start_server(keyring: Keyring<E>, config: ServerConfig) -> RunningServer {
    let server = Server::bind("127.0.0.1:0", Arc::new(keyring), config).expect("bind");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    RunningServer { handle, thread }
}

fn connect(addr: SocketAddr) -> TcpTransport {
    let stream = TcpStream::connect(addr).expect("connect");
    let t = TcpTransport::new(stream);
    t.set_nodelay(true).unwrap();
    t.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    t
}

fn remote_code(err: &CoreError) -> Option<u8> {
    match err {
        CoreError::Remote { code, .. } => Some(*code),
        _ => None,
    }
}

/// Eight clients share one server concurrently, each running its own
/// hello → decrypt×N → shutdown session; every plaintext must round-trip.
#[test]
fn many_concurrent_clients_through_facade() {
    let mut r = rng(10);
    let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
    let mut keyring = Keyring::new();
    keyring.insert(b"shared", pk.clone(), s2);
    let running = start_server(keyring, quick_config());
    let addr = running.addr();

    const CLIENTS: usize = 8;
    const REQS: usize = 6;
    let gate = Arc::new(Barrier::new(CLIENTS));
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let pk = pk.clone();
            let s1 = s1.clone();
            let gate = Arc::clone(&gate);
            scope.spawn(move || {
                let mut r = rng(100 + c as u64);
                let mut p1 = scheme::Party1::new(pk.clone(), s1);
                let mut t = connect(addr);
                driver::p1_hello(&mut t, b"shared", GENERATION_ANY).unwrap();
                gate.wait(); // all sessions overlap
                for _ in 0..REQS {
                    let m = <E as Pairing>::Gt::random(&mut r);
                    let ct = scheme::encrypt(&pk, &m, &mut r);
                    let got = driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r).unwrap();
                    assert_eq!(got, m);
                }
                driver::p1_shutdown(&mut t).unwrap();
            });
        }
    });

    let stats = running.stop();
    assert_eq!(stats.sessions_accepted, CLIENTS as u64);
    assert_eq!(stats.sessions_completed, CLIENTS as u64);
    assert_eq!(stats.requests_decrypt, (CLIENTS * REQS) as u64);
    assert_eq!(stats.error_replies, 0);
    assert_eq!(stats.sessions_rejected_busy, 0);
}

/// Malformed traffic gets structured error replies and never takes the
/// server down: unknown key, stale generation, raw garbage frames.
#[test]
fn error_paths_are_structured_and_survivable() {
    let mut r = rng(20);
    let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
    let mut keyring = Keyring::new();
    keyring.insert(b"k", pk.clone(), s2);
    let running = start_server(keyring, quick_config());
    let addr = running.addr();

    // Unknown key id in the hello.
    let mut t = connect(addr);
    let err = driver::p1_hello(&mut t, b"no-such-key", GENERATION_ANY).unwrap_err();
    assert_eq!(remote_code(&err), Some(ErrorCode::UnknownKey as u8));

    // Explicit generation the server never reached.
    let err = driver::p1_hello(&mut t, b"k", 42).unwrap_err();
    assert_eq!(remote_code(&err), Some(ErrorCode::StaleGeneration as u8));

    // A garbage frame (unknown tag byte) on the same session.
    use dlr::protocol::transport::Transport as _;
    t.send(bytes::Bytes::from_static(&[0xEE, 1, 2, 3])).unwrap();
    let reply = t.recv().unwrap();
    let err = driver::parse_reply(&reply).unwrap_err();
    assert_eq!(remote_code(&err), Some(ErrorCode::UnknownTag as u8));

    // The session is still usable: correct hello, then a real decrypt.
    let gen = driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
    assert_eq!(gen, 0);
    let mut p1 = scheme::Party1::new(pk.clone(), s1);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = scheme::encrypt(&pk, &m, &mut r);
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r).unwrap(), m);
    driver::p1_shutdown(&mut t).unwrap();

    // A client that vanishes mid-protocol only kills its own session.
    drop(connect(addr));

    let stats = running.stop();
    assert!(stats.error_replies >= 3);
    assert_eq!(stats.requests_decrypt, 1);
}

/// Fixed-base tables are built at key load and rebuilt after each epoch
/// refresh *outside* the generation lock: sessions in flight across two
/// forced refreshes keep decrypting (re-hello on StaleGeneration), and no
/// request ever stalls behind table precompute.
#[test]
fn epoch_refresh_does_not_stall_inflight_sessions() {
    let mut r = rng(40);
    let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
    let mut keyring = Keyring::new();
    keyring.insert(b"k", pk.clone(), s2);
    // Registration itself must have paid the precompute (tentpole: tables
    // are built at key load, not in the first session).
    let entry = keyring.get(b"k").unwrap();
    assert!(entry.public_key().tables_warm(), "insert must warm tables");

    let mut server = Server::bind("127.0.0.1:0", Arc::new(keyring), quick_config()).expect("bind");
    let handle = server.handle();
    let addr = handle.local_addr();

    // The epoch hook refreshes over the wire with the shared P1; clients
    // below share the same P1 so a post-refresh retry uses the new share.
    let shared_p1 = Arc::new(Mutex::new(scheme::Party1::new(pk.clone(), s1)));
    {
        let p1 = Arc::clone(&shared_p1);
        server.set_epoch_hook(move |epoch| {
            let mut t = connect(addr);
            driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
            let mut r = rng(2000 + epoch);
            driver::p1_refresh(&mut p1.lock().unwrap(), &mut t, &mut r).unwrap();
            let _ = driver::p1_shutdown(&mut t);
        });
    }
    let thread = std::thread::spawn(move || server.run());

    const CLIENTS: usize = 4;
    const REQS: usize = 10;
    let gate = Arc::new(Barrier::new(CLIENTS + 1));
    let max_latency = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for c in 0..CLIENTS {
            let pk = pk.clone();
            let p1 = Arc::clone(&shared_p1);
            let gate = Arc::clone(&gate);
            workers.push(scope.spawn(move || {
                let mut r = rng(300 + c as u64);
                let mut t = connect(addr);
                driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
                gate.wait(); // overlap with the forced refreshes below
                let mut slowest = Duration::ZERO;
                for _ in 0..REQS {
                    let m = <E as Pairing>::Gt::random(&mut r);
                    let ct = scheme::encrypt(&pk, &m, &mut r);
                    loop {
                        let started = std::time::Instant::now();
                        let res = {
                            let mut p1 = p1.lock().unwrap();
                            driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r)
                        };
                        slowest = slowest.max(started.elapsed());
                        match res {
                            Ok(got) => {
                                assert_eq!(got, m);
                                break;
                            }
                            Err(e) => {
                                // A refresh won the race: re-bind to the
                                // current generation and retry.
                                assert_eq!(
                                    remote_code(&e),
                                    Some(ErrorCode::StaleGeneration as u8),
                                    "unexpected failure: {e}"
                                );
                                driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
                            }
                        }
                    }
                }
                driver::p1_shutdown(&mut t).unwrap();
                slowest
            }));
        }
        gate.wait();
        // Two refreshes land while the decrypt loops run.
        for want in 1..=2u64 {
            handle.force_epoch();
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while handle.stats().refreshes < want {
                assert!(std::time::Instant::now() < deadline, "refresh {want} never landed");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        workers
            .into_iter()
            .map(|w| w.join().expect("client"))
            .max()
            .unwrap()
    });

    handle.shutdown();
    let stats = thread.join().expect("server thread").expect("server run");
    assert_eq!(stats.refreshes, 2);
    assert!(stats.requests_decrypt >= (CLIENTS * REQS) as u64);
    assert!(entry.public_key().tables_warm());
    // Generous ceiling: a request may wait behind the refresh's critical
    // section, but never behind table precompute (which happens unlocked).
    assert!(
        max_latency < Duration::from_secs(2),
        "in-flight decrypt stalled {max_latency:?}"
    );
}

/// The built-in load generator drives the facade-visible server while an
/// epoch refresh rotates the share mid-run; stale sessions recover.
#[test]
fn loadgen_with_mid_run_refresh() {
    let mut r = rng(30);
    let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
    let mut keyring = Keyring::new();
    keyring.insert(b"k", pk.clone(), s2);
    let mut server = Server::bind("127.0.0.1:0", Arc::new(keyring), quick_config()).expect("bind");
    let handle = server.handle();
    let addr = handle.local_addr();

    // The epoch hook refreshes over the wire using a shared P1 — the same
    // share object the verification decrypt below uses afterwards.
    let shared_p1 = Arc::new(Mutex::new(scheme::Party1::new(pk.clone(), s1.clone())));
    {
        let p1 = Arc::clone(&shared_p1);
        server.set_epoch_hook(move |epoch| {
            let mut t = connect(addr);
            driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
            let mut r = rng(1000 + epoch);
            driver::p1_refresh(&mut p1.lock().unwrap(), &mut t, &mut r).unwrap();
            let _ = driver::p1_shutdown(&mut t);
        });
    }
    let thread = std::thread::spawn(move || server.run());

    // Load phase with private P1 clones (pre-refresh share).
    let outcome = dlr::server::run_loadgen::<E, _>(
        addr,
        &pk,
        &s1,
        &LoadgenConfig {
            clients: 3,
            requests_per_client: 8,
            key_id: b"k".to_vec(),
            ..LoadgenConfig::default()
        },
        &mut r,
    );
    assert_eq!(outcome.successes, 24);
    assert_eq!(outcome.mismatches, 0);
    assert!(outcome.throughput_rps() > 0.0);

    // Force a refresh, then decrypt with the rotated share end to end.
    handle.force_epoch();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.stats().refreshes == 0 {
        assert!(std::time::Instant::now() < deadline, "refresh never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut t = connect(addr);
    let gen = driver::p1_hello(&mut t, b"k", GENERATION_ANY).unwrap();
    assert_eq!(gen, 1);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = scheme::encrypt(&pk, &m, &mut r);
    let mut p1 = shared_p1.lock().unwrap();
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, &mut t, &mut r).unwrap(), m);
    drop(p1);
    driver::p1_shutdown(&mut t).unwrap();

    handle.shutdown();
    let stats = thread.join().expect("server thread").expect("server run");
    assert_eq!(stats.epochs, 1);
    assert_eq!(stats.refreshes, 1);
    assert_eq!(stats.requests_decrypt, 25);
}
