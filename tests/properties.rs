//! Property-based tests (proptest) over the public API: algebraic
//! invariants of the schemes and fuzzing of every decoder.

use dlr::core::hpske::{self, HpskeCiphertext, HpskeKey};
use dlr::core::{dlr as scheme, kem, pss};
use dlr::curve::modgroup::{Mini1009, ModGroup};
use dlr::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

type MG = ModGroup<Mini1009>;
type MgScalar = <MG as Group>::Scalar;
type E = Toy;

fn rng_from(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn toy_params() -> SchemeParams {
    SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pss_roundtrip_any_length(seed in 0u64..1000, ell in 1usize..12) {
        let mut r = rng_from(seed);
        let key = pss::generate::<MG, _>(ell, &mut r);
        let m = MG::random(&mut r);
        let ct = pss::encrypt(&key, &m, &mut r);
        prop_assert_eq!(pss::decrypt(&key, &ct), Some(m));
    }

    #[test]
    fn hpske_homomorphism_random_products(seed in 0u64..1000, kappa in 1usize..6, n in 1usize..6) {
        let mut r = rng_from(seed);
        let key: HpskeKey<MgScalar> = HpskeKey::generate(kappa, &mut r);
        let ms: Vec<MG> = (0..n).map(|_| MG::random(&mut r)).collect();
        let es: Vec<MgScalar> = (0..n).map(|_| FieldElement::random(&mut r)).collect();
        let cts: Vec<_> = ms.iter().map(|m| hpske::encrypt(&key, m, &mut r)).collect();
        let combined = HpskeCiphertext::product_of_powers(&cts, &es);
        let expect = MG::product_of_powers(&ms, &es);
        prop_assert_eq!(hpske::decrypt(&key, &combined), Some(expect));
    }

    #[test]
    fn hpske_mul_div_inverse(seed in 0u64..1000) {
        let mut r = rng_from(seed);
        let key: HpskeKey<MgScalar> = HpskeKey::generate(3, &mut r);
        let m0 = MG::random(&mut r);
        let m1 = MG::random(&mut r);
        let c0 = hpske::encrypt(&key, &m0, &mut r);
        let c1 = hpske::encrypt(&key, &m1, &mut r);
        prop_assert_eq!(hpske::decrypt(&key, &c0.mul(&c1).div(&c1)), Some(m0));
    }

    #[test]
    fn dlr_roundtrip_survives_random_refresh_schedule(seed in 0u64..200, schedule in proptest::collection::vec(any::<bool>(), 1..6)) {
        let mut r = rng_from(seed);
        let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
        let mut p1 = scheme::Party1::new(pk.clone(), s1);
        let mut p2 = scheme::Party2::new(pk.clone(), s2);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = scheme::encrypt(&pk, &m, &mut r);
        for &do_refresh in &schedule {
            if do_refresh {
                scheme::refresh_local(&mut p1, &mut p2, &mut r).unwrap();
            } else {
                prop_assert_eq!(scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
            }
        }
        prop_assert_eq!(scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
    }

    #[test]
    fn ciphertext_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // arbitrary bytes: must cleanly parse or error, never panic
        let _ = scheme::Ciphertext::<E>::from_bytes(&bytes);
    }

    #[test]
    fn message_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let params = toy_params();
        let _ = scheme::DecMsg1::<E>::from_bytes(&bytes, &params);
        let _ = scheme::DecMsg2::<E>::from_bytes(&bytes, &params);
        let _ = scheme::RefMsg1::<E>::from_bytes(&bytes, &params);
        let _ = scheme::RefMsg2::<E>::from_bytes(&bytes, &params);
    }

    #[test]
    fn kem_rejects_any_single_bitflip(seed in 0u64..50, flip_byte in 0usize..64, flip_bit in 0usize..8) {
        let mut r = rng_from(seed);
        let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
        let mut p1 = scheme::Party1::new(pk.clone(), s1);
        let mut p2 = scheme::Party2::new(pk.clone(), s2);
        let mut ct = kem::seal(&pk, b"integrity matters here", &mut r);
        let idx = flip_byte % ct.dem.body.len();
        ct.dem.body[idx] ^= 1 << flip_bit;
        prop_assert!(kem::open_local(&mut p1, &mut p2, &ct, &mut r).is_err());
    }

    #[test]
    fn encryption_is_randomized(seed in 0u64..500) {
        let mut r = rng_from(seed);
        let (pk, _s1, _s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let c1 = scheme::encrypt(&pk, &m, &mut r);
        let c2 = scheme::encrypt(&pk, &m, &mut r);
        prop_assert_ne!(c1, c2);
    }

    #[test]
    fn rerandomize_preserves_plaintext_and_changes_bytes(seed in 0u64..200) {
        let mut r = rng_from(seed);
        let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
        let mut p1 = scheme::Party1::new(pk.clone(), s1);
        let mut p2 = scheme::Party2::new(pk.clone(), s2);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = scheme::encrypt(&pk, &m, &mut r);
        let ct2 = scheme::rerandomize(&pk, &ct, &mut r);
        prop_assert_ne!(ct.to_bytes(), ct2.to_bytes());
        prop_assert_eq!(scheme::decrypt_local(&mut p1, &mut p2, &ct2, &mut r).unwrap(), m);
    }
}

// ---------------------------------------------------------------------------
// Differential tests for the exponentiation engines: the comb-table
// `FixedBase::pow_fixed` and the sliding-window `pow`/`pow_vartime_limbs`
// must agree bit-for-bit with the Montgomery ladder (`pow_ladder`) on every
// backend, including the edge scalars the window recoders are most likely
// to mishandle (zero, one, r−1, lone high bits, sparse multi-limb values).
// ---------------------------------------------------------------------------

use dlr::bls12;
use dlr::curve::{FixedBase, G, Gt};

/// Reference square-and-multiply over a raw limb slice (MSB first).
fn naive_pow_limbs<Grp: Group>(base: &Grp, exp: &[u64]) -> Grp {
    let mut acc = Grp::identity();
    for i in (0..64 * exp.len() as u32).rev() {
        acc = acc.raw_double();
        if (exp[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
            acc = acc.raw_op(base);
        }
    }
    acc
}

/// Scalars exercising recoder edge cases (values reduce mod r on small
/// fields, which is itself a case worth hitting).
fn edge_scalars<F: PrimeField>() -> Vec<F> {
    let two64 = F::from_u64(1 << 32) * F::from_u64(1 << 32);
    vec![
        F::zero(),
        F::one(),
        F::zero() - F::one(),                            // r − 1
        F::from_u64(2),
        F::from_u64(1 << 62),                            // lone bit, limb 0
        two64,                                           // lone bit 64
        two64 * F::from_u64(2) + F::one(),               // sparse: bits 65, 0
        two64 * two64 + F::from_u64(0xdead_beef),        // bit 128 + low limb
    ]
}

fn assert_pow_engines_agree<Grp: Group>(
    base: &Grp,
    scalars: &[Grp::Scalar],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let table = FixedBase::new(base);
    for s in scalars {
        let ladder = base.pow_ladder(s);
        prop_assert_eq!(base.pow(s), ladder);
        prop_assert_eq!(table.pow_fixed(s), ladder);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pow_engines_agree_on_toy(seed in 0u64..1000) {
        let mut r = rng_from(seed);
        let mut scalars = edge_scalars::<<G<Toy> as Group>::Scalar>();
        scalars.extend((0..4).map(|_| <G<Toy> as Group>::Scalar::random(&mut r)));
        assert_pow_engines_agree(&G::<Toy>::random(&mut r), &scalars)?;
        assert_pow_engines_agree(&Gt::<Toy>::random(&mut r), &scalars)?;
    }

    #[test]
    fn vartime_limbs_matches_binary_chain(
        seed in 0u64..1000,
        limbs in proptest::collection::vec(proptest::prelude::any::<u64>(), 1..5),
    ) {
        // Arbitrary limb slices — including values far above the group
        // order, as used by cofactor clearing and subgroup checks.
        let mut r = rng_from(seed);
        let g = G::<Toy>::random(&mut r);
        prop_assert_eq!(g.pow_vartime_limbs(&limbs), naive_pow_limbs(&g, &limbs));
        let t = Gt::<Toy>::random(&mut r);
        prop_assert_eq!(t.pow_vartime_limbs(&limbs), naive_pow_limbs(&t, &limbs));
    }
}

proptest! {
    // 512-bit and BLS12-381 group ops are orders of magnitude slower than
    // Toy's; a few random cases on top of the fixed edge set suffice.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn pow_engines_agree_on_ss512(seed in 0u64..100) {
        let mut r = rng_from(seed);
        let mut scalars = edge_scalars::<<G<Ss512> as Group>::Scalar>();
        scalars.push(<G<Ss512> as Group>::Scalar::random(&mut r));
        assert_pow_engines_agree(&G::<Ss512>::random(&mut r), &scalars)?;
    }

    #[test]
    fn pow_engines_agree_on_bls12(seed in 0u64..100) {
        let mut r = rng_from(seed);
        let mut scalars = edge_scalars::<bls12::Fr>();
        scalars.push(bls12::Fr::random(&mut r));
        assert_pow_engines_agree(&bls12::G1::random(&mut r), &scalars)?;
        assert_pow_engines_agree(&bls12::G2::random(&mut r), &scalars)?;
        assert_pow_engines_agree(&bls12::Gt::random(&mut r), &scalars)?;
    }
}
