//! Cross-crate integration: full DLR sessions over real transports, both
//! P1 layouts, multiple parameter sets.

use dlr::core::driver;
use dlr::core::dlr as scheme;
use dlr::prelude::*;
use dlr::protocol::runtime::run_pair;
use dlr::protocol::transport::transcript_bytes;
use rand::SeedableRng;

type E = Toy;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn toy_params() -> SchemeParams {
    SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64)
}

#[test]
fn multi_period_session_over_channel() {
    let mut r = rng(1);
    let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
    let mut p1 = scheme::Party1::new(pk.clone(), s1);
    let mut p2 = scheme::Party2::new(pk.clone(), s2);

    let messages: Vec<_> = (0..4).map(|_| <E as Pairing>::Gt::random(&mut r)).collect();
    let cts: Vec<_> = messages
        .iter()
        .map(|m| scheme::encrypt(&pk, m, &mut r))
        .collect();

    let msgs = messages.clone();
    let out = run_pair(
        move |t| {
            let mut r = rng(2);
            let mut got = Vec::new();
            for ct in &cts {
                got.push(driver::p1_decrypt(&mut p1, ct, t, &mut r).unwrap());
                driver::p1_refresh(&mut p1, t, &mut r).unwrap();
            }
            driver::p1_shutdown(t).unwrap();
            got
        },
        move |t| {
            let mut r = rng(3);
            driver::p2_serve_loop(&mut p2, t, &mut r).unwrap()
        },
    );
    assert_eq!(out.p1, msgs);
    assert_eq!(out.p2, 8); // 4 decrypts + 4 refreshes
    assert!(transcript_bytes(&out.transcript) > 4000);
}

#[test]
fn streaming_and_plain_layouts_interoperate_with_one_p2() {
    let mut r = rng(4);
    let (pk, s1, s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
    // one P2 serves a plain P1, then (after its refresh) the same P2 can
    // never serve a *different* P1 — but both layouts must produce
    // identical wire messages against identical shares.
    let mut plain = scheme::Party1::new(pk.clone(), s1.clone());
    let mut streaming = dlr::core::streaming::StreamingParty1::new(pk.clone(), s1, &mut r);
    let mut p2a = scheme::Party2::new(pk.clone(), s2.clone());
    let mut p2b = scheme::Party2::new(pk.clone(), s2);

    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = scheme::encrypt(&pk, &m, &mut r);

    let d1 = plain.dec_start(&ct, &mut r);
    let d2 = p2a.dec_respond(&d1).unwrap();
    assert_eq!(plain.dec_finish(&d2).unwrap(), m);

    let d1 = streaming.dec_start(&ct, &mut r);
    let d2 = p2b.dec_respond(&d1).unwrap();
    assert_eq!(streaming.dec_finish(&d2).unwrap(), m);
}

#[test]
fn higher_security_parameters_work() {
    // a heavier-but-honest parameter choice on the toy curve
    let mut r = rng(5);
    let params = SchemeParams::derive::<<E as Pairing>::Scalar>(24, 512);
    assert!(params.ell > 30);
    let (pk, s1, s2) = scheme::keygen::<E, _>(params, &mut r);
    let mut p1 = scheme::Party1::new(pk.clone(), s1);
    let mut p2 = scheme::Party2::new(pk.clone(), s2);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = scheme::encrypt(&pk, &m, &mut r);
    assert_eq!(scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
    scheme::refresh_local(&mut p1, &mut p2, &mut r).unwrap();
    assert_eq!(scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
}

#[test]
#[ignore = "slow: benchmark-grade curve; run with --ignored"]
fn ss512_full_period() {
    let mut r = rng(6);
    let params = SchemeParams::derive::<<Ss512 as Pairing>::Scalar>(64, 512);
    let (pk, s1, s2) = scheme::keygen::<Ss512, _>(params, &mut r);
    let mut p1 = scheme::Party1::new(pk.clone(), s1);
    let mut p2 = scheme::Party2::new(pk.clone(), s2);
    let m = <Ss512 as Pairing>::Gt::random(&mut r);
    let ct = scheme::encrypt(&pk, &m, &mut r);
    assert_eq!(scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
    scheme::refresh_local(&mut p1, &mut p2, &mut r).unwrap();
    assert_eq!(scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
}

#[test]
fn wrong_share_pairs_fail_gracefully() {
    let mut r = rng(7);
    let (pk, s1, _s2) = scheme::keygen::<E, _>(toy_params(), &mut r);
    let (_pk2, _s1b, s2b) = scheme::keygen::<E, _>(toy_params(), &mut r);
    // mismatched shares from two different keygens: protocol completes but
    // decrypts to garbage (honest-but-wrong, not a panic)
    let mut p1 = scheme::Party1::new(pk.clone(), s1);
    let mut p2 = scheme::Party2::new(pk.clone(), s2b);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = scheme::encrypt(&pk, &m, &mut r);
    let out = scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap();
    assert_ne!(out, m);
}
