//! Integration tests for the scheme extensions: DIBE, CCA2, secure
//! storage, and the streaming (optimal-rate) layout.

use dlr::core::storage::LeakyStorage;
use dlr::core::{cca2, dibe, ibe, streaming};
use dlr::hash::ots::{Lamport, OneTimeSignature, Winternitz};
use dlr::prelude::*;
use rand::SeedableRng;

type E = Toy;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn toy_params() -> SchemeParams {
    SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64)
}

#[test]
fn dibe_many_identities_many_periods() {
    let mut r = rng(20);
    let (params, ms1, ms2) = dibe::dibe_keygen::<E, _>(toy_params(), 16, &mut r);
    let mut a1 = dibe::DibeParty1::new(params.clone(), ms1);
    let mut a2 = dibe::DibeParty2::new(params.clone(), ms2);

    let ids: [&[u8]; 3] = [b"alice", b"bob", b"carol"];
    let mut holders = Vec::new();
    for id in ids {
        let (s1, s2) = dibe::idkey_local(&mut a1, &mut a2, id, &mut r).unwrap();
        holders.push((
            dibe::IdParty1::new(&params, s1),
            dibe::IdParty2::new(&params, s2),
        ));
        dibe::dibe_refresh_master_local(&mut a1, &mut a2, &mut r).unwrap();
    }
    // every identity decrypts its own mail, across identity refreshes
    for (i, id) in ids.iter().enumerate() {
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = ibe::encrypt(&params, id, &m, &mut r);
        let (p1, p2) = &mut holders[i];
        assert_eq!(dibe::dibe_decrypt_local(p1, p2, &ct, &mut r).unwrap(), m);
        dibe::dibe_refresh_idkey_local(p1, p2, &mut r).unwrap();
        assert_eq!(dibe::dibe_decrypt_local(p1, p2, &ct, &mut r).unwrap(), m);
        // cross-identity decryption garbles
        let j = (i + 1) % ids.len();
        let (q1, q2) = &mut holders[j];
        assert_ne!(dibe::dibe_decrypt_local(q1, q2, &ct, &mut r).unwrap(), m);
    }
}

#[test]
fn cca2_full_lifecycle_both_ots() {
    let mut r = rng(21);
    let (params, ms1, ms2) = dibe::dibe_keygen::<E, _>(toy_params(), 12, &mut r);
    let mut p1 = dibe::DibeParty1::new(params.clone(), ms1);
    let mut p2 = dibe::DibeParty2::new(params.clone(), ms2);
    let m = <E as Pairing>::Gt::random(&mut r);

    let ct = cca2::encrypt::<E, Lamport, _>(&params, &m, &mut r);
    assert_eq!(cca2::decrypt_distributed(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);

    let ct = cca2::encrypt::<E, Winternitz<8>, _>(&params, &m, &mut r);
    assert_eq!(cca2::decrypt_distributed(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);

    // each ciphertext uses a fresh one-time identity
    let ct2 = cca2::encrypt::<E, Winternitz<8>, _>(&params, &m, &mut r);
    assert_ne!(
        dlr::hash::ots::Winternitz::<8>::verify_key_bytes(&ct.vk),
        dlr::hash::ots::Winternitz::<8>::verify_key_bytes(&ct2.vk)
    );
}

#[test]
fn cca2_decryption_oracle_semantics() {
    // the classic CCA2 probe: mauling the challenge must be rejected, and
    // decrypting *other* valid ciphertexts must keep working
    let mut r = rng(22);
    let (params, ms1, ms2) = dibe::dibe_keygen::<E, _>(toy_params(), 12, &mut r);
    let mut p1 = dibe::DibeParty1::new(params.clone(), ms1);
    let mut p2 = dibe::DibeParty2::new(params.clone(), ms2);
    let m = <E as Pairing>::Gt::random(&mut r);
    let challenge = cca2::encrypt::<E, Winternitz<4>, _>(&params, &m, &mut r);

    for _ in 0..3 {
        let other = <E as Pairing>::Gt::random(&mut r);
        let ct = cca2::encrypt::<E, Winternitz<4>, _>(&params, &other, &mut r);
        assert_eq!(
            cca2::decrypt_distributed(&mut p1, &mut p2, &ct, &mut r).unwrap(),
            other
        );
    }
    let mut mauled = challenge.clone();
    mauled.inner.big_b = mauled.inner.big_b.op(&<E as Pairing>::Gt::generator());
    assert!(cca2::decrypt_distributed(&mut p1, &mut p2, &mauled, &mut r).is_err());
}

#[test]
fn storage_long_run() {
    let mut r = rng(23);
    let payload: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
    let mut store = LeakyStorage::<E>::store(toy_params(), &payload, &mut r);
    for _ in 0..12 {
        store.refresh(&mut r).unwrap();
    }
    assert_eq!(store.retrieve(&mut r).unwrap(), payload);
    assert_eq!(store.periods(), 12);
}

#[test]
fn streaming_party_many_periods_small_secret_memory() {
    let mut r = rng(24);
    let params = toy_params();
    let (pk, s1, s2) = dlr::core::dlr::keygen::<E, _>(params, &mut r);
    let mut p1 = streaming::StreamingParty1::new(pk.clone(), s1, &mut r);
    let mut p2 = dlr::core::dlr::Party2::new(pk.clone(), s2);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::core::dlr::encrypt(&pk, &m, &mut r);

    let skcomm_bits =
        params.kappa * <<E as Pairing>::Scalar as FieldElement>::byte_len() * 8;
    for _ in 0..5 {
        let m1 = p1.dec_start(&ct, &mut r);
        let m2 = p2.dec_respond(&m1).unwrap();
        assert_eq!(p1.dec_finish(&m2).unwrap(), m);
        // outside refresh: exactly |sk_comm| resident
        assert_eq!(p1.device().secret.total_bits(), skcomm_bits);
        let r1 = p1.ref_start(&mut r);
        let r2 = p2.ref_respond(&r1, &mut r).unwrap();
        p1.ref_finish(&r2, &mut r).unwrap();
        p1.ref_complete().unwrap();
        p2.ref_complete().unwrap();
    }
}

#[test]
fn ibe_single_processor_matches_distributed() {
    // sanity: the single-processor IBE substrate and the distributed one
    // share ciphertext formats — a ciphertext made for either decrypts in
    // both worlds given consistent keys
    let mut r = rng(25);
    let (params, master) = ibe::setup::<E, _>(toy_params(), 12, &mut r);
    let key = ibe::extract(&params, &master, b"dora", &mut r);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = ibe::encrypt(&params, b"dora", &m, &mut r);
    assert_eq!(ibe::decrypt(&key, &ct).unwrap(), m);
    let bytes = ct.to_bytes();
    let parsed = ibe::IbeCiphertext::<E>::from_bytes(&bytes, params.n_id).unwrap();
    assert_eq!(ibe::decrypt(&key, &parsed).unwrap(), m);
}
