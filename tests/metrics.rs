//! End-to-end observability: the `dlr-metrics` span registry and the
//! transport wire statistics, exercised through the public facade.

use dlr::core::params::SchemeParams;
use dlr::core::{dlr as scheme, driver};
use dlr::curve::{counters, Group, Pairing, Toy};
use dlr::protocol::runtime::run_pair;
use rand::rngs::StdRng;
use rand::SeedableRng;

type E = Toy;
type Fr = <E as Pairing>::Scalar;

/// The span registry is process-global; tests that touch it must not
/// overlap (the harness runs test functions on concurrent threads).
static REGISTRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[allow(clippy::type_complexity)]
fn setup(
    seed: u64,
) -> (
    scheme::PublicKey<E>,
    scheme::Share1<E>,
    scheme::Share2<E>,
    <E as Pairing>::Gt,
    scheme::Ciphertext<E>,
) {
    let mut r = StdRng::seed_from_u64(seed);
    let params = SchemeParams::derive::<Fr>(16, 64);
    let (pk, s1, s2) = scheme::keygen::<E, _>(params, &mut r);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = scheme::encrypt(&pk, &m, &mut r);
    (pk, s1, s2, m, ct)
}

#[test]
fn driver_decryption_reports_wire_traffic() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (pk, s1, s2, m, ct) = setup(31);
    let mut p1 = scheme::Party1::new(pk.clone(), s1);
    let mut p2 = scheme::Party2::new(pk, s2);

    let out = run_pair(
        move |t| {
            let mut rng = StdRng::seed_from_u64(32);
            let got = driver::p1_decrypt(&mut p1, &ct, t, &mut rng).unwrap();
            driver::p1_shutdown(t).unwrap();
            got
        },
        move |t| {
            let mut rng = StdRng::seed_from_u64(33);
            driver::p2_serve_loop(&mut p2, t, &mut rng).unwrap()
        },
    );
    assert_eq!(out.p1, m);

    // Decrypt request + shutdown out, one response in — all bytes counted.
    assert_eq!(out.wire.frames_sent, 2);
    assert_eq!(out.wire.frames_received, 1);
    assert!(out.wire.bytes_sent > 0);
    assert!(out.wire.bytes_received > 0);
    assert_eq!(out.wire.rounds(), 1);
    assert!(out.wire.round_latency_ns[0] > 0);
    // The wire stats agree with the recorded public transcript.
    assert_eq!(
        out.wire.total_bytes(),
        dlr::protocol::transport::transcript_bytes(&out.transcript) as u64
    );
}

#[test]
fn span_ops_match_counter_measurement() {
    let _guard = REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (pk, s1, s2, m, ct) = setup(41);
    let mut p1 = scheme::Party1::new(pk.clone(), s1);
    let mut p2 = scheme::Party2::new(pk, s2);
    let mut r = StdRng::seed_from_u64(42);

    // Measure one local decryption both ways at once: the raw thread-local
    // counters, and the span registry wrapped around the same call.
    dlr::metrics::reset();
    let (got, ops) = counters::measure(|| {
        scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap()
    });
    assert_eq!(got, m);

    let spans = dlr::metrics::snapshot_spans();
    let dec = &spans["dec"];
    assert_eq!(dec.count, 1);
    // The root span saw exactly what the counters saw — instrumentation
    // neither drops nor double-counts group operations.
    assert_eq!(dec.ops, ops);
    assert!(dec.ops.pairings > 0, "Toy decryption must pair");
    // Child phases partition the root's operations.
    let child_sum = spans["dec.p1.start"].ops + spans["dec.p2.respond"].ops
        + spans["dec.p1.finish"].ops;
    assert_eq!(child_sum, dec.ops);
    assert!(dec.total_ns >= dec.child_ns);
}
