//! The security experiments as assertions: adversary win rates against the
//! real implementation stay at a coin flip within the Theorem 4.1 budgets,
//! budgets are enforced, and the single-device baseline collapses.

use dlr::baselines::naive;
use dlr::curve::Gt;
use dlr::leakage::adversaries::{
    AdaptiveDigest, BitProbe, FullShare2Exfiltrator, HammingProbe, RandomGuesser,
};
use dlr::leakage::game::{estimate_win_rate, GameConfig, GameOutcome};
use dlr::prelude::*;
use rand::SeedableRng;

type E = Toy;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn cfg() -> GameConfig {
    let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
    GameConfig::theorem_bounds::<E>(params, P1Layout::Streaming)
}

fn share2_bits() -> usize {
    let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
    params.ell * <<E as Pairing>::Scalar as FieldElement>::byte_len() * 8
}

const TRIALS: usize = 40;
const SLACK: f64 = 0.27; // binomial noise at 40 trials

#[test]
fn random_guesser_no_advantage() {
    let mut r = rng(10);
    let stats = estimate_win_rate::<E, _>(&cfg(), || Box::new(RandomGuesser::new(2)), TRIALS, &mut r);
    assert_eq!(stats.aborts, 0);
    assert!((stats.win_rate() - 0.5).abs() < SLACK, "{stats:?}");
}

#[test]
fn bit_probe_no_advantage() {
    let mut r = rng(11);
    let s2 = share2_bits();
    let stats = estimate_win_rate::<E, _>(
        &cfg(),
        move || Box::new(BitProbe::new(16, s2 / 2, 4)),
        TRIALS,
        &mut r,
    );
    assert_eq!(stats.aborts, 0);
    assert!((stats.win_rate() - 0.5).abs() < SLACK, "{stats:?}");
}

#[test]
fn full_share2_rate_one_is_admissible_and_useless() {
    let mut r = rng(12);
    let s2 = share2_bits();
    let stats = estimate_win_rate::<E, _>(
        &cfg(),
        move || Box::new(FullShare2Exfiltrator::new(s2, 16, 3)),
        TRIALS,
        &mut r,
    );
    assert_eq!(stats.aborts, 0, "ρ₂ = 1 must be within budget");
    assert!((stats.win_rate() - 0.5).abs() < SLACK, "{stats:?}");
}

#[test]
fn hamming_sidechannel_no_advantage() {
    let mut r = rng(13);
    let stats =
        estimate_win_rate::<E, _>(&cfg(), || Box::new(HammingProbe::new(4, 3)), TRIALS, &mut r);
    assert_eq!(stats.aborts, 0);
    assert!((stats.win_rate() - 0.5).abs() < SLACK, "{stats:?}");
}

#[test]
fn adaptive_digest_no_advantage() {
    let mut r = rng(14);
    let stats =
        estimate_win_rate::<E, _>(&cfg(), || Box::new(AdaptiveDigest::new(8, 3)), TRIALS, &mut r);
    assert_eq!(stats.aborts, 0);
    assert!((stats.win_rate() - 0.5).abs() < SLACK, "{stats:?}");
}

#[test]
fn budget_violations_abort() {
    let mut r = rng(15);
    let c = cfg();
    // P1 budget is λ = 64 bits per share lifetime; ask for more
    let mut adv = BitProbe::new(c.b1 as usize + 1, 0, 1);
    let mut dist = dlr::leakage::game::random_message_dist::<E>();
    let out = dlr::leakage::game::run_cpa_cml(&c, &mut adv, &mut dist, &mut r);
    assert!(matches!(out, GameOutcome::Aborted(_)), "{out:?}");
}

#[test]
fn naive_single_device_collapses() {
    let mut r = rng(16);
    let key_bits = <<E as Pairing>::Scalar as FieldElement>::byte_len() * 8;
    // full coverage over 4 periods → certain win
    let rate = naive::estimate_naive_win_rate::<Gt<E>, _>(key_bits / 4, 4, 30, &mut r);
    assert!(rate > 0.95, "naive scheme should fall, rate = {rate}");
    // insufficient coverage → coin flip
    let rate = naive::estimate_naive_win_rate::<Gt<E>, _>(key_bits / 4, 2, 40, &mut r);
    assert!((rate - 0.5).abs() < SLACK, "rate = {rate}");
}

#[test]
fn plain_layout_also_resists() {
    let mut r = rng(17);
    let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
    let c = GameConfig::theorem_bounds::<E>(params, P1Layout::Plain);
    let stats = estimate_win_rate::<E, _>(&c, || Box::new(BitProbe::new(16, 64, 3)), TRIALS, &mut r);
    assert_eq!(stats.aborts, 0);
    assert!((stats.win_rate() - 0.5).abs() < SLACK, "{stats:?}");
}
