#![allow(clippy::all)] // vendored shim: mirrors upstream API, not linted
//! Offline vendored shim for the subset of the `parking_lot 0.12` API
//! used by the DLR workspace: [`Mutex`] and [`RwLock`] with non-poisoning
//! guards and `const` constructors.
//!
//! Backed by `std::sync` primitives (poison is swallowed, matching
//! parking_lot's semantics). See the workspace `Cargo.toml` for why
//! third-party crates are vendored.

/// A mutual-exclusion lock whose guards never poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. A panicked previous
    /// holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock if it is not currently held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: Mutex<u64> = Mutex::new(0);

    #[test]
    fn const_static_mutex() {
        *GLOBAL.lock() += 1;
        assert!(*GLOBAL.lock() >= 1);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
