//! Offline vendored shim for the subset of the `criterion 0.5` API used
//! by the DLR workspace: [`Criterion`], [`Bencher::iter`], benchmark
//! groups, and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The shim measures mean wall-clock time per iteration and prints one
//! line per benchmark — no statistical analysis, outlier detection, or
//! HTML reports. When invoked with `--test` (as `cargo test`/`cargo
//! bench -- --test` do for `harness = false` targets) every benchmark
//! body runs exactly once so the target doubles as a smoke test.
//!
//! See the workspace `Cargo.toml` for why third-party crates are vendored.


#![allow(clippy::all)] // vendored shim: mirrors upstream API, not linted
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver; configured per-group via the builder
/// methods and passed `&mut` to each target function.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set how long to run the body untimed before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark; `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: None,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
        };
        f(&mut b);
        match b.mean {
            Some(mean) if !self.test_mode => {
                println!("{id:<50} time: [{}]", fmt_duration(mean));
            }
            _ => println!("{id:<50} ok (test mode)"),
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Finish the group (upstream flushes reports here; the shim prints
    /// eagerly, so this only consumes the group).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name and a displayable parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    mean: Option<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, storing the mean wall-clock duration per call. In
    /// `--test` mode the routine runs exactly once.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.mean = None;
            return;
        }
        // Warm-up: run untimed until the warm-up budget elapses.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // Size each sample so that `sample_size` samples roughly fill the
        // measurement budget.
        let per_iter = start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let budget_per_sample =
            self.measurement_time.as_nanos() / self.sample_size.max(1) as u128;
        let iters_per_sample = (budget_per_sample / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += t.elapsed();
            total_iters += iters_per_sample;
            if measure_start.elapsed() > self.measurement_time.saturating_mul(2) {
                break; // routine much slower than the warm-up estimate
            }
        }
        self.mean = Some(Duration::from_nanos(
            (total.as_nanos() / u128::from(total_iters.max(1))) as u64,
        ));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group function from a config and target functions,
/// mirroring criterion's `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_mean() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.test_mode = false;
        let mut runs = 0u64;
        c.bench_function("shim/self-test", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("straus", 32);
        assert_eq!(id.id, "straus/32");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1)), "1.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.000 ms");
    }
}
