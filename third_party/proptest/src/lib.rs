//! Offline vendored shim for the subset of the `proptest 1.x` API used by
//! the DLR workspace: the [`proptest!`] macro, [`Strategy`] over integers,
//! integer ranges, fixed-size arrays, tuples and [`collection::vec`], plus
//! the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream (acceptable for this repository's tests,
//! which assert algebraic properties over randomly sampled inputs):
//!
//! * no shrinking — a failing case reports its seed and case index only;
//! * the value stream is a fixed xorshift-based generator seeded from the
//!   test name, so runs are deterministic but differ from upstream's;
//! * `prop_assume!` rejections simply skip the case (no rejection cap).
//!
//! See the workspace `Cargo.toml` for why third-party crates are vendored.


#![allow(clippy::all)] // vendored shim: mirrors upstream API, not linted
pub use crate::strategy::Strategy;

pub mod test_runner {
    //! Deterministic case generator and failure plumbing.

    /// Per-test pseudo-random source (xorshift64*; deterministic, not
    /// cryptographic).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed a generator; a zero seed is nudged to a fixed constant.
        pub fn new(seed: u64) -> Self {
            Self {
                state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed },
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` filtered the inputs; the case is skipped.
        Reject(String),
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runtime configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` generated cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Stable seed derived from the test path (SipHash with fixed keys via
    /// `DefaultHasher`, so identical across runs and hosts).
    pub fn seed_for(test_name: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut h);
        h.finish()
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges and tuples.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! [`Arbitrary`] types and the [`any`] strategy constructor.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain generation strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy generating unconstrained values of `A` (see [`any`]).
    pub struct Any<A>(core::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`: uniform over its whole domain.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a boolean condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                String::from(stringify!($cond)),
            ));
        }
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ..) { .. }`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $config;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::test_runner::TestRng::new(seed);
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases && attempts < config.cases.saturating_mul(8).max(16) {
                attempts += 1;
                $(let $arg = ($strat).generate(&mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $(let $arg = $arg;)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed (seed {:#x}): {}",
                            ran + 1,
                            config.cases,
                            seed,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_and_tuples(
            v in crate::collection::vec(any::<u8>(), 2..6),
            pair in (any::<u8>(), crate::collection::vec(any::<u8>(), 0..3)),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(pair.1.len() < 3);
        }

        #[test]
        fn assume_skips(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn arrays_generate(a in any::<[u64; 3]>()) {
            prop_assert_eq!(a.len(), 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::new(7);
        let mut b = crate::test_runner::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
