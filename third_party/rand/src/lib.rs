#![allow(clippy::all)] // vendored shim: mirrors upstream API, not linted
//! Offline vendored shim for the subset of the `rand 0.8` API used by the
//! DLR workspace.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of third-party crates the workspace depends on are
//! vendored as minimal, API-compatible shims under `third_party/` (see the
//! workspace `Cargo.toml`). This crate provides:
//!
//! * the [`RngCore`] / [`SeedableRng`] / [`Rng`] traits,
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (NOT the
//!   upstream ChaCha-based `StdRng`; seeded streams differ from real
//!   `rand`, which only shifts sampled constants in this repo's
//!   experiments, never correctness),
//! * [`thread_rng`] — seeded from the clock, a counter and ASLR noise.
//!
//! **This shim is not cryptographically secure.** It is sufficient for the
//! research experiments in this repository (which need uniformity and
//! reproducibility, not unpredictability against an attacker); a
//! production deployment must swap the real `rand` crate back in. The
//! `erase`/leakage semantics of the workspace do not depend on this crate.

/// Error type for fallible generator operations (never produced by the
/// shim generators, which are infallible).
#[derive(Debug)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as in `rand 0.8`.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Instantiate from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Instantiate from a `u64` seed (expanded with SplitMix64, as in
    /// upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }

    /// Instantiate from environmental entropy (clock + counter).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

/// Convenience sampling methods on top of [`RngCore`] (tiny subset of the
/// upstream `Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range`.
    fn sample<R: RngCore>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift rejection-free mapping is fine for the
                // shim's research use; bias is < 2^-32 for spans < 2^32.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn entropy_u64() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let count = COUNTER.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    // ASLR noise: the address of a stack local differs across processes.
    let stack_probe = 0u8;
    let addr = core::ptr::addr_of!(stack_probe) as u64;
    let mut s = nanos ^ count.rotate_left(32) ^ addr;
    splitmix64(&mut s)
}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++ in this shim; upstream uses a
    /// ChaCha-based generator, so sampled streams differ from real `rand`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            let mut rng = Self { s };
            // Warm up so low-entropy seeds decorrelate.
            for _ in 0..8 {
                rng.step();
            }
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.step().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    /// Per-call generator seeded from environmental entropy.
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            Self {
                inner: StdRng::seed_from_u64(super::entropy_u64()),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }
}

/// Return a generator seeded from environmental entropy (the shim
/// equivalent of `rand::thread_rng`; each call returns an independent
/// generator rather than a thread-local handle).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = Rng::gen_range(&mut r, 10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn thread_rngs_are_independent() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        // Not a strict guarantee, but with 64-bit outputs a collision
        // means the entropy source is broken.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bits_look_uniform() {
        let mut r = StdRng::seed_from_u64(5);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones();
        }
        // 64000 bits, expect ~32000 ones; allow a generous band.
        assert!((30000..34000).contains(&ones), "ones = {ones}");
    }
}
