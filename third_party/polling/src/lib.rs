#![allow(clippy::all)] // vendored shim: mirrors upstream API, not linted
//! Offline vendored shim for the subset of the `polling 3.x` readiness
//! API used by the DLR workspace: a [`Poller`] multiplexing OS readiness
//! events (epoll on Linux/Android, kqueue on macOS/iOS) plus a built-in
//! wakeup channel ([`Poller::notify`], an `eventfd` on Linux, a pipe on
//! kqueue platforms) so event loops can be interrupted from other
//! threads without a signal or a sacrificial socket.
//!
//! Documented divergences from upstream `polling`:
//!
//! * **Level-triggered, persistent interest.** Upstream delivers events
//!   in oneshot mode and requires re-arming after every event; this shim
//!   keeps the registered interest active until [`Poller::modify`] or
//!   [`Poller::delete`] changes it, which matches how the `dlr-server`
//!   readiness loop manages per-connection interest state.
//! * **No `Source`/`Borrowed` wrappers** — registration takes any
//!   `AsRawFd` directly and the caller guarantees the fd outlives its
//!   registration (the server owns every registered socket).
//! * [`Poller::wait`] never surfaces the internal notification fd as an
//!   event; a wakeup with no ready sockets returns `Ok(0)` and the
//!   caller re-checks its control state (inbox, shutdown flag, epoch
//!   counters) — exactly the upstream `notify` contract.
//!
//! Syscalls are declared as `extern "C"` bindings against the platform
//! libc that `std` already links, keeping the workspace free of a
//! vendored `libc` crate. See the workspace `Cargo.toml` for why
//! third-party crates are vendored.

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Key reserved for the internal notification fd; never delivered.
const NOTIFY_KEY: usize = usize::MAX;

/// A readiness event (or an interest registration) for one fd.
///
/// `key` is the caller-chosen identifier passed at registration and
/// handed back verbatim with every event. Error/hang-up conditions are
/// reported as both readable and writable so the caller discovers the
/// failure from the I/O call itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier for the registered fd.
    pub key: usize,
    /// Readable (or in an error/hup state).
    pub readable: bool,
    /// Writable (or in an error/hup state).
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Self {
        Self { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Self {
        Self { key, readable: false, writable: true }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Self {
        Self { key, readable: true, writable: true }
    }

    /// Registered but dormant (useful before the first `modify`).
    pub fn none(key: usize) -> Self {
        Self { key, readable: false, writable: false }
    }
}

/// Reusable buffer of events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterate over the events of the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the last wait delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all buffered events.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// OS readiness multiplexer with a built-in cross-thread wakeup channel.
#[derive(Debug)]
pub struct Poller {
    sys: sys::Poller,
}

// The poller is a kernel object: registration and waiting from multiple
// threads are serialized by the kernel, and `notify` is explicitly a
// cross-thread operation.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Create a poller (and its internal notification channel).
    pub fn new() -> io::Result<Self> {
        Ok(Self { sys: sys::Poller::new()? })
    }

    /// Register `source` with the given interest. `interest.key` must not
    /// be `usize::MAX` (reserved for the internal notification channel).
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved",
            ));
        }
        self.sys.add(source.as_raw_fd(), interest)
    }

    /// Replace the interest registered for `source`.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved",
            ));
        }
        self.sys.modify(source.as_raw_fd(), interest)
    }

    /// Remove `source` from the poller. Removing an fd that was never
    /// added (or was auto-removed by `close`) is not an error.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.sys.delete(source.as_raw_fd())
    }

    /// Block until at least one registered fd is ready, the timeout
    /// expires, or another thread calls [`Poller::notify`]. Returns the
    /// number of events appended to `events` (0 on timeout/notify).
    /// `None` waits forever. A signal interruption reports as `Ok(0)`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.sys.wait(&mut events.inner, timeout)
    }

    /// Wake up a concurrent (or the next) [`Poller::wait`]. Multiple
    /// notifications may coalesce into a single wakeup.
    pub fn notify(&self) -> io::Result<()> {
        self.sys.notify()
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod sys {
    //! epoll backend (level-triggered) with an eventfd wakeup channel.

    use super::{Event, NOTIFY_KEY};
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EINTR: i32 = 4;
    const ENOENT: i32 = 2;

    // The kernel ABI packs epoll_event on x86-64; other architectures
    // use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        epfd: c_int,
        event_fd: c_int,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Self> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let event_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Self { epfd, event_fd };
            poller.ctl(
                EPOLL_CTL_ADD,
                event_fd,
                Event { key: NOTIFY_KEY, readable: true, writable: false },
            )?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: c_int, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn add(&self, fd: i32, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest)
        }

        pub(super) fn modify(&self, fd: i32, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest)
        }

        pub(super) fn delete(&self, fd: i32) -> io::Result<()> {
            match self.ctl(EPOLL_CTL_DEL, fd, Event::none(0)) {
                Err(e) if e.raw_os_error() == Some(ENOENT) => Ok(()),
                other => other,
            }
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms: c_int = match timeout {
                // Round up so a sub-millisecond deadline cannot spin.
                Some(d) => ((d.as_nanos() + 999_999) / 1_000_000).min(c_int::MAX as u128) as c_int,
                None => -1,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
            let n = match cvt(unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
            }) {
                Ok(n) => n as usize,
                Err(e) if e.raw_os_error() == Some(EINTR) => 0,
                Err(e) => return Err(e),
            };
            let mut delivered = 0;
            for ev in &buf[..n] {
                let key = { ev.data } as usize;
                if key == NOTIFY_KEY {
                    self.drain_notify();
                    continue;
                }
                let bits = { ev.events };
                let failed = bits & (EPOLLERR | EPOLLHUP) != 0;
                out.push(Event {
                    key,
                    readable: failed || bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: failed || bits & EPOLLOUT != 0,
                });
                delivered += 1;
            }
            Ok(delivered)
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            let one: u64 = 1;
            // EAGAIN means the counter is already saturated: a wakeup is
            // pending, which is all notify promises.
            unsafe { write(self.event_fd, (&one as *const u64).cast(), 8) };
            Ok(())
        }

        fn drain_notify(&self) {
            let mut buf = 0u64;
            // A single read resets the eventfd counter to zero.
            unsafe { read(self.event_fd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.event_fd);
                close(self.epfd);
            }
        }
    }

    fn interest_bits(interest: Event) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

#[cfg(any(target_os = "macos", target_os = "ios"))]
mod sys {
    //! kqueue backend (level-triggered) with a pipe wakeup channel.

    use super::{Event, NOTIFY_KEY};
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::ptr;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const F_SETFL: c_int = 4;
    const F_SETFD: c_int = 2;
    const FD_CLOEXEC: c_int = 1;
    const O_NONBLOCK: c_int = 0x0004;
    const EINTR: i32 = 4;
    const ENOENT: i32 = 2;

    #[repr(C)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: isize,
        tv_nsec: isize,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const KEvent,
            nchanges: c_int,
            eventlist: *mut KEvent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        kq: c_int,
        pipe_read: c_int,
        pipe_write: c_int,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Self> {
            let kq = cvt(unsafe { kqueue() })?;
            let mut fds = [0 as c_int; 2];
            if let Err(e) = cvt(unsafe { pipe(fds.as_mut_ptr()) }) {
                unsafe { close(kq) };
                return Err(e);
            }
            for fd in fds {
                unsafe {
                    fcntl(fd, F_SETFD, FD_CLOEXEC);
                    fcntl(fd, F_SETFL, O_NONBLOCK);
                }
            }
            let poller = Self { kq, pipe_read: fds[0], pipe_write: fds[1] };
            poller.apply(fds[0], EVFILT_READ, EV_ADD, NOTIFY_KEY)?;
            Ok(poller)
        }

        fn apply(&self, fd: c_int, filter: i16, flags: u16, key: usize) -> io::Result<()> {
            let change = KEvent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: key as *mut c_void,
            };
            match cvt(unsafe { kevent(self.kq, &change, 1, ptr::null_mut(), 0, ptr::null()) }) {
                Err(e)
                    if flags == EV_DELETE && e.raw_os_error() == Some(ENOENT) =>
                {
                    Ok(())
                }
                other => other.map(|_| ()),
            }
        }

        fn set_interest(&self, fd: i32, interest: Event) -> io::Result<()> {
            self.apply(
                fd,
                EVFILT_READ,
                if interest.readable { EV_ADD } else { EV_DELETE },
                interest.key,
            )?;
            self.apply(
                fd,
                EVFILT_WRITE,
                if interest.writable { EV_ADD } else { EV_DELETE },
                interest.key,
            )
        }

        pub(super) fn add(&self, fd: i32, interest: Event) -> io::Result<()> {
            self.set_interest(fd, interest)
        }

        pub(super) fn modify(&self, fd: i32, interest: Event) -> io::Result<()> {
            self.set_interest(fd, interest)
        }

        pub(super) fn delete(&self, fd: i32) -> io::Result<()> {
            self.apply(fd, EVFILT_READ, EV_DELETE, 0)?;
            self.apply(fd, EVFILT_WRITE, EV_DELETE, 0)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let ts = timeout.map(|d| Timespec {
                tv_sec: d.as_secs().min(isize::MAX as u64) as isize,
                tv_nsec: d.subsec_nanos() as isize,
            });
            let ts_ptr = ts.as_ref().map_or(ptr::null(), |t| t as *const Timespec);
            let mut buf: [KEvent; 64] = unsafe { std::mem::zeroed() };
            let n = match cvt(unsafe {
                kevent(self.kq, ptr::null(), 0, buf.as_mut_ptr(), buf.len() as c_int, ts_ptr)
            }) {
                Ok(n) => n as usize,
                Err(e) if e.raw_os_error() == Some(EINTR) => 0,
                Err(e) => return Err(e),
            };
            let mut delivered = 0;
            for ev in &buf[..n] {
                let key = ev.udata as usize;
                if key == NOTIFY_KEY {
                    self.drain_notify();
                    continue;
                }
                out.push(Event {
                    key,
                    readable: ev.filter == EVFILT_READ,
                    writable: ev.filter == EVFILT_WRITE,
                });
                delivered += 1;
            }
            Ok(delivered)
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            let byte = 1u8;
            unsafe { write(self.pipe_write, (&byte as *const u8).cast(), 1) };
            Ok(())
        }

        fn drain_notify(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.pipe_read, buf.as_mut_ptr().cast(), buf.len()) };
                if n < buf.len() as isize {
                    break;
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_read);
                close(self.pipe_write);
                close(self.kq);
            }
        }
    }
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
)))]
compile_error!("the vendored polling shim supports epoll (Linux/Android) and kqueue (macOS/iOS) only");

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn timeout_expires_with_no_events() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let started = Instant::now();
        let n = poller.wait(&mut events, Some(Duration::from_millis(40))).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() >= Duration::from_millis(35));
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        let started = Instant::now();
        // No registered sources at all: only the notify can end this wait.
        let n = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(n, 0);
        assert!(started.elapsed() < Duration::from_secs(5));
        t.join().unwrap();
    }

    #[test]
    fn read_readiness_is_reported_with_the_registered_key() {
        let (mut client, server) = tcp_pair();
        let poller = Poller::new().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        let mut events = Events::new();
        // Nothing to read yet.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);

        client.write_all(b"x").unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        // Level-triggered: unread data keeps reporting.
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let mut byte = [0u8; 8];
        let mut s = &server;
        assert_eq!(s.read(&mut byte).unwrap(), 1);
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
    }

    #[test]
    fn interest_can_be_modified_and_deleted() {
        let (mut client, server) = tcp_pair();
        let poller = Poller::new().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.add(&server, Event::none(3)).unwrap();

        // A fresh socket is writable the moment we ask for it.
        poller.modify(&server, Event::all(3)).unwrap();
        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);

        // Back to read-only interest: writability stops reporting.
        poller.modify(&server, Event::readable(3)).unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);

        // After delete, even readable data stays silent.
        poller.delete(&server).unwrap();
        client.write_all(b"y").unwrap();
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap(), 0);
        // Deleting twice is fine.
        poller.delete(&server).unwrap();
    }

    #[test]
    fn reserved_key_is_rejected() {
        let (_client, server) = tcp_pair();
        let poller = Poller::new().unwrap();
        assert!(poller.add(&server, Event::readable(usize::MAX)).is_err());
    }
}
