//! Offline vendored shim for the subset of the `bytes 1.x` API used by
//! the DLR workspace: the cheaply-cloneable immutable [`Bytes`] buffer.
//!
//! Backed by `Arc<[u8]>` (upstream uses a custom vtable; the observable
//! semantics for this workspace — O(1) clone, slice deref, equality — are
//! identical). See the workspace `Cargo.toml` for why third-party crates
//! are vendored.


#![allow(clippy::all)] // vendored shim: mirrors upstream API, not linted
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from_static(b"")
    }

    /// Wrap a static byte string (the shim copies it into shared storage;
    /// upstream borrows it — an allocation-count difference only).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl core::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Self::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl core::hash::Hash for Bytes {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in core::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[1..], b"bc");
        assert_eq!(a.to_vec(), b"abc".to_vec());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn debug_escapes() {
        let s = format!("{:?}", Bytes::from_static(b"a\x00"));
        assert_eq!(s, "b\"a\\x00\"");
    }
}
