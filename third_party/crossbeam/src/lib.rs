//! Offline vendored shim for the subset of the `crossbeam 0.8` API used
//! by the DLR workspace: MPMC [`channel`]s with disconnect semantics and
//! [`thread`] scoped threads.
//!
//! See the workspace `Cargo.toml` for why third-party crates are vendored.
//! The channel implementation is a mutex+condvar queue — adequate for the
//! two-party protocol transports in this repository, which exchange a few
//! kilobyte-sized frames per protocol run, not for high-contention use.


#![allow(clippy::all)] // vendored shim: mirrors upstream API, not linted
pub mod thread {
    //! Scoped threads (shim): delegates to [`std::thread::scope`], which
    //! provides the same borrow-stack-data guarantee as upstream
    //! `crossbeam::thread::scope`.
    //!
    //! Documented divergences from upstream `crossbeam 0.8`:
    //!
    //! * `scope` returns the closure's value directly instead of a
    //!   `thread::Result` (std propagates child panics on join);
    //! * spawn closures take no `&Scope` argument — re-spawning from a
    //!   child uses the captured [`Scope`] reference, as in std.
    pub use std::thread::{scope, Scope, ScopedJoinHandle};

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_stack_data() {
            let data = vec![1u64, 2, 3, 4];
            let mut partials = vec![0u64; 2];
            super::scope(|s| {
                let (lo, hi) = data.split_at(2);
                let (p0, p1) = partials.split_at_mut(1);
                s.spawn(|| p0[0] = lo.iter().sum());
                s.spawn(|| p1[0] = hi.iter().sum());
            });
            assert_eq!(partials, vec![3, 7]);
        }
    }
}

pub use thread::scope;

pub mod channel {
    //! Multi-producer multi-consumer unbounded FIFO channels.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender { chan: chan.clone() },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking until one arrives; fails once the
        /// queue is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .chan
                    .ready
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front().ok_or(RecvError)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));

            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_blocking_recv() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }
    }
}
