//! The production instantiation: the same DLR system over **BLS12-381**
//! (Type-3), built from scratch in `dlr-bls12`.
//!
//! The paper assumes a symmetric pairing; real deployments use asymmetric
//! curves. Because the scheme code is generic over the `Pairing` trait,
//! switching is a one-line type change — key shares live in `G2`,
//! ciphertext components in `G1`.
//!
//! ```text
//! cargo run --release --example type3_bls12
//! ```

use dlr::bls12::Bls12_381;
use dlr::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut rng = rand::thread_rng();

    // Same API as the Toy/SS parameter sets — only the engine changes.
    let params = SchemeParams::derive::<<Bls12_381 as Pairing>::Scalar>(16, 64);
    println!(
        "BLS12-381 instance: κ = {}, ℓ = {} (255-bit scalars, 381-bit base field)",
        params.kappa, params.ell
    );

    let (pk, sk1, sk2) = dlr_scheme::keygen::<Bls12_381, _>(params, &mut rng);
    let mut p1 = dlr_scheme::Party1::new(pk.clone(), sk1);
    let mut p2 = dlr_scheme::Party2::new(pk.clone(), sk2);

    let m = <Bls12_381 as Pairing>::Gt::random(&mut rng);
    let ct = dlr_scheme::encrypt(&pk, &m, &mut rng);
    println!(
        "ciphertext: {} bytes (G1 point + GT element)",
        ct.to_bytes().len()
    );

    let t0 = std::time::Instant::now();
    let out = dlr_scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut rng)?;
    assert_eq!(out, m);
    println!(
        "two-party decryption over BLS12-381: ok ({:.1} s — the pairing favours transparency over speed)",
        t0.elapsed().as_secs_f64()
    );

    let t0 = std::time::Instant::now();
    dlr_scheme::refresh_local(&mut p1, &mut p2, &mut rng)?;
    println!("share refresh: ok ({:.1} s)", t0.elapsed().as_secs_f64());

    let out = dlr_scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut rng)?;
    assert_eq!(out, m);
    println!("old ciphertext decrypts under the refreshed shares: ok");
    Ok(())
}
