//! Quickstart: generate distributed keys, encrypt, run the two-party
//! decryption protocol, refresh the shares, decrypt again.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dlr::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut rng = rand::thread_rng();

    // Parameters: security n = 16 (ε = 2^-16) and leakage parameter
    // λ = 128 bits per period from P1, over the TOY curve. Swap `Toy` for
    // `Ss512` for benchmark-grade groups — the API is identical.
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 128);
    println!("derived parameters: κ = {}, ℓ = {}", params.kappa, params.ell);

    // Gen(1^n): the public key and the two secret key shares. The master
    // secret g2^α exists only inside keygen — from here on it lives only
    // as the Πss sharing split across the devices.
    let (pk, sk1, sk2) = dlr_scheme::keygen::<Toy, _>(params, &mut rng);
    let mut p1 = dlr_scheme::Party1::new(pk.clone(), sk1);
    let mut p2 = dlr_scheme::Party2::new(pk.clone(), sk2);

    // Encrypt a group element (two group elements of ciphertext).
    let message = <Toy as Pairing>::Gt::random(&mut rng);
    let ct = dlr_scheme::encrypt(&pk, &message, &mut rng);
    println!(
        "ciphertext: {} bytes ({} group elements)",
        ct.to_bytes().len(),
        2
    );

    // Decrypt via the 2-party protocol.
    let out = dlr_scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut rng)?;
    assert_eq!(out, message);
    println!("decryption protocol: ok");

    // Refresh: new shares, same public key — old ciphertexts still work.
    for period in 1..=3 {
        dlr_scheme::refresh_local(&mut p1, &mut p2, &mut rng)?;
        let out = dlr_scheme::decrypt_local(&mut p1, &mut p2, &ct, &mut rng)?;
        assert_eq!(out, message);
        println!("period {period}: shares refreshed, old ciphertext still decrypts");
    }

    // Arbitrary byte payloads via the hybrid (KEM/DEM) layer.
    let sealed = dlr::core::kem::seal(&pk, b"hello, leaky world", &mut rng);
    let opened = dlr::core::kem::open_local(&mut p1, &mut p2, &sealed, &mut rng)?;
    assert_eq!(opened, b"hello, leaky world");
    println!("hybrid encryption: ok");

    Ok(())
}
