//! The "auxiliary device" scenario of §1.1: a main processor (`P1`) and a
//! much simpler smart card (`P2`) connected over a real TCP socket.
//!
//! The example measures what each device actually computes: the card's
//! entire job is products-of-powers of received group elements — no
//! pairings, no hashing to the curve, no per-ciphertext state.
//!
//! ```text
//! cargo run --release --example smartcard
//! ```

use dlr::core::driver;
use dlr::curve::counters;
use dlr::prelude::*;
use dlr::protocol::transport::TcpTransport;
use std::net::{TcpListener, TcpStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 128);
    let (pk, sk1, sk2) = dlr_scheme::keygen::<Toy, _>(params, &mut rng);

    let message = <Toy as Pairing>::Gt::random(&mut rng);
    let ct = dlr_scheme::encrypt(&pk, &message, &mut rng);

    // "Smart card" thread: owns sk2, serves requests over TCP.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let card_pk = pk.clone();
    let card = std::thread::spawn(move || -> Result<_, Box<CoreError>> {
        let (stream, _) = listener.accept().expect("accept");
        let mut transport = TcpTransport::new(stream);
        let mut p2 = dlr_scheme::Party2::new(card_pk, sk2);
        let mut rng = rand::thread_rng();
        counters::reset();
        let served = driver::p2_serve_loop(&mut p2, &mut transport, &mut rng)
            .map_err(Box::new)?;
        Ok((served, counters::snapshot()))
    });

    // Main processor: owns sk1, drives decryptions and refreshes.
    let mut transport = TcpTransport::new(TcpStream::connect(addr)?);
    let mut p1 = dlr_scheme::Party1::new(pk.clone(), sk1);
    counters::reset();
    for period in 0..3 {
        let out = driver::p1_decrypt(&mut p1, &ct, &mut transport, &mut rng)?;
        assert_eq!(out, message);
        driver::p1_refresh(&mut p1, &mut transport, &mut rng)?;
        println!("period {period}: decrypted over TCP + refreshed");
    }
    let p1_ops = counters::snapshot();
    driver::p1_shutdown(&mut transport)?;

    let (served, p2_ops) = card.join().expect("card thread")?;
    println!("\nrequests served by the card: {served}");
    println!("main processor ops: {p1_ops}");
    println!("smart card ops:     {p2_ops}");
    assert_eq!(p2_ops.pairings, 0, "the card must never pair");
    assert!(p2_ops.g_op + p2_ops.g_pow > 0);
    println!("\nthe card did {} exponentiations and 0 pairings — matching the", p2_ops.total_pows());
    println!("paper's claim that P2 can be a simple auxiliary device.");
    Ok(())
}
