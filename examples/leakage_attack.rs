//! The headline security experiment, live: the same bit-probe adversary
//! plays the real CPA-CML game (Definition 3.2) against DLR and against a
//! naive single-device scheme.
//!
//! * against DLR it may even take **100% of P2's share every period** —
//!   its win rate stays at a coin flip;
//! * against the naive scheme, a *quarter* of the key per period hands it
//!   the whole key after four periods and a win rate of 1.
//!
//! ```text
//! cargo run --release --example leakage_attack
//! ```

use dlr::baselines::naive;
use dlr::curve::Gt;
use dlr::leakage::adversaries::{BitProbe, FullShare2Exfiltrator};
use dlr::leakage::game::{estimate_win_rate, GameConfig};
use dlr::prelude::*;

fn main() {
    let mut rng = rand::thread_rng();
    let trials = 60;
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 64);
    let cfg = GameConfig::theorem_bounds::<Toy>(params, P1Layout::Streaming);
    let share2_bits = params.ell * <<Toy as Pairing>::Scalar as FieldElement>::byte_len() * 8;

    println!("CPA-CML game, {trials} trials per configuration (TOY curve)\n");

    // 1. Bit probe at a quarter of each budget per period.
    let stats = estimate_win_rate::<Toy, _>(
        &cfg,
        || Box::new(BitProbe::new(16, share2_bits / 4, 4)),
        trials,
        &mut rng,
    );
    println!(
        "DLR   vs bit probe (25%/period, 4 periods):   win rate {:.3} (advantage {:+.3})",
        stats.win_rate(),
        stats.advantage()
    );

    // 2. Full exfiltration of P2's share — rate 1, still admissible!
    let stats = estimate_win_rate::<Toy, _>(
        &cfg,
        move || Box::new(FullShare2Exfiltrator::new(share2_bits, 16, 4)),
        trials,
        &mut rng,
    );
    println!(
        "DLR   vs FULL P2-share exfiltration (ρ₂ = 1): win rate {:.3} (advantage {:+.3})",
        stats.win_rate(),
        stats.advantage()
    );

    // 3. The same probe against one leaky device holding the whole key.
    let naive_key_bits = <<Toy as Pairing>::Scalar as FieldElement>::byte_len() * 8;
    let quarter = naive_key_bits / 4;
    let rate = naive::estimate_naive_win_rate::<Gt<Toy>, _>(quarter, 4, trials, &mut rng);
    println!("naive vs bit probe (25%/period, 4 periods):   win rate {rate:.3}");

    let rate2 = naive::estimate_naive_win_rate::<Gt<Toy>, _>(quarter, 2, trials, &mut rng);
    println!("naive vs bit probe (25%/period, 2 periods):   win rate {rate2:.3}");

    println!("\ndistribution + refresh is what turns bounded-per-period leakage");
    println!("into unbounded-lifetime tolerance; a single static key drowns.");
}
