//! DLRCCA2 (§4.3): chosen-ciphertext security via the BCHK transform —
//! each ciphertext carries a one-time signature under a fresh key whose
//! verification key *is* the IBE identity it is encrypted to.
//!
//! ```text
//! cargo run --release --example cca2_session
//! ```

use dlr::core::{cca2, dibe};
use dlr::hash::ots::Winternitz;
use dlr::prelude::*;

type W16 = Winternitz<4>;

fn main() -> Result<(), CoreError> {
    let mut rng = rand::thread_rng();
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 128);

    let (ibe_params, ms1, ms2) = dibe::dibe_keygen::<Toy, _>(params, 32, &mut rng);
    let mut p1 = dibe::DibeParty1::new(ibe_params.clone(), ms1);
    let mut p2 = dibe::DibeParty2::new(ibe_params.clone(), ms2);

    // Encrypt: fresh WOTS key pair per message; identity = verification key.
    let secret = <Toy as Pairing>::Gt::random(&mut rng);
    let ct = cca2::encrypt::<Toy, W16, _>(&ibe_params, &secret, &mut rng);
    println!(
        "CCA2 ciphertext: {} bytes (IBE part + one-time vk + signature)",
        ct.to_bytes().len()
    );

    // Decrypt: verify, then run the identity-key-generation and decryption
    // protocols for this ciphertext's one-time identity.
    let out = cca2::decrypt_distributed(&mut p1, &mut p2, &ct, &mut rng)?;
    assert_eq!(out, secret);
    println!("distributed CCA2 decryption: ok");

    // Malleation attempts die at the signature check — this is what an
    // adversarial decryption oracle would see.
    let mut tampered = ct.clone();
    tampered.inner.big_b = tampered.inner.big_b.op(&<Toy as Pairing>::Gt::generator());
    match cca2::decrypt_distributed(&mut p1, &mut p2, &tampered, &mut rng) {
        Err(CoreError::InvalidCiphertext(why)) => {
            println!("tampered ciphertext rejected: {why}")
        }
        other => panic!("tampering must be rejected, got {other:?}"),
    }

    // Serialization survives the wire.
    let bytes = ct.to_bytes();
    let parsed = cca2::Cca2Ciphertext::<Toy, W16>::from_bytes(&bytes, ibe_params.n_id)?;
    assert_eq!(
        cca2::decrypt_distributed(&mut p1, &mut p2, &parsed, &mut rng)?,
        secret
    );
    println!("wire round-trip: ok");

    // Master shares refresh under the same public parameters.
    dibe::dibe_refresh_master_local(&mut p1, &mut p2, &mut rng)?;
    let ct2 = cca2::encrypt::<Toy, W16, _>(&ibe_params, &secret, &mut rng);
    assert_eq!(
        cca2::decrypt_distributed(&mut p1, &mut p2, &ct2, &mut rng)?,
        secret
    );
    println!("decryption after master refresh: ok");
    Ok(())
}
