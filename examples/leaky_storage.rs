//! Secure storage on leaky hardware (§4.4): a secret survives years of
//! bounded-per-period leakage because every period re-randomizes the
//! stored ciphertext and refreshes the key shares.
//!
//! The example simulates an adversary that, every period, grabs as many
//! raw bits of each device's secret memory as the Theorem 4.1 budget
//! allows — and shows both that the budget accounting admits it and that
//! the payload remains recoverable (and the leaked bits stale).
//!
//! ```text
//! cargo run --release --example leaky_storage
//! ```

use dlr::core::storage::LeakyStorage;
use dlr::leakage::leakfn::{window_bits, LeakInput};
use dlr::leakage::LeakageBudget;
use dlr::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut rng = rand::thread_rng();
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 128);

    let payload = b"launch codes: definitely not 0000";
    let mut store = LeakyStorage::<Toy>::store(params, payload, &mut rng);
    println!(
        "stored {} payload bytes as a {}-byte re-randomizable ciphertext",
        payload.len(),
        store.ciphertext().kem.to_bytes().len() + store.ciphertext().dem.body.len() + 32,
    );

    // Adversary budgets per Theorem 4.1: λ bits from P1's share lifetime,
    // the full share from P2.
    let p2_bits = params.ell * <<Toy as Pairing>::Scalar as FieldElement>::byte_len() * 8;
    let mut budget1 = LeakageBudget::new(params.lambda as u64, 0);
    let mut budget2 = LeakageBudget::new(p2_bits as u64, 0);

    let mut offset = 0usize;
    for period in 1..=8u64 {
        // leak before refreshing (the share about to be retired)
        let take1 = params.lambda as usize;
        let view1 = store.p1.device().secret.view();
        let mut probe1 = window_bits(offset, take1.min(view1.total_bits()));
        let leaked1 = probe1.eval(&LeakInput {
            secret: &view1,
            public: &[],
        });
        let view2 = store.p2.device().secret.view();
        let mut probe2 = window_bits(0, p2_bits.min(view2.total_bits()));
        let leaked2 = probe2.eval(&LeakInput {
            secret: &view2,
            public: &[],
        });
        budget1
            .charge_period(leaked1.len() as u64, 0)
            .expect("within Theorem 4.1 budget");
        budget2
            .charge_period(leaked2.len() as u64, 0)
            .expect("within Theorem 4.1 budget");
        offset += leaked1.len();

        store.refresh(&mut rng)?;
        println!(
            "period {period}: adversary took {} + {} bits (lifetime total {}), shares refreshed",
            leaked1.len(),
            leaked2.len(),
            budget1.total_leaked() + budget2.total_leaked(),
        );
    }

    let recovered = store.retrieve(&mut rng)?;
    assert_eq!(recovered, payload);
    println!(
        "\nafter {} periods and {} total leaked bits, the payload is intact:",
        store.periods(),
        budget1.total_leaked() + budget2.total_leaked(),
    );
    println!("  {:?}", String::from_utf8_lossy(&recovered));
    println!("every leaked bit described a share that no longer exists.");
    Ok(())
}
