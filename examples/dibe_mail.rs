//! Distributed identity-based encryption (§4.2): a mail service whose
//! master key is split across two devices.
//!
//! Issuing a user's decryption key is itself a two-party protocol — the
//! master key is never reconstructed, and both the master shares and each
//! user's key shares refresh independently.
//!
//! ```text
//! cargo run --release --example dibe_mail
//! ```

use dlr::core::{dibe, ibe};
use dlr::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut rng = rand::thread_rng();
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 128);
    let n_id = 32; // identity hash bits (use 256 for full strength)

    // Key authority: two devices sharing the master key.
    let (ibe_params, ms1, ms2) = dibe::dibe_keygen::<Toy, _>(params, n_id, &mut rng);
    let mut authority1 = dibe::DibeParty1::new(ibe_params.clone(), ms1);
    let mut authority2 = dibe::DibeParty2::new(ibe_params.clone(), ms2);
    println!("authority online: master key split across two devices (n_id = {n_id})");

    // Anyone can encrypt to "alice@example.org" with only the public
    // parameters — before Alice even has a key.
    let love_letter = <Toy as Pairing>::Gt::random(&mut rng);
    let ct = ibe::encrypt(&ibe_params, b"alice@example.org", &love_letter, &mut rng);
    println!("mail encrypted to alice@example.org ({} bytes)", ct.to_bytes().len());

    // Alice requests her key: a 2-party protocol between the authority's
    // devices yields *shares*, handed to Alice's phone + her smart card.
    let (alice1, alice2) =
        dibe::idkey_local(&mut authority1, &mut authority2, b"alice@example.org", &mut rng)?;
    let mut phone = dibe::IdParty1::new(&ibe_params, alice1);
    let mut card = dibe::IdParty2::new(&ibe_params, alice2);
    println!("identity key issued as two shares (master key never assembled)");

    // Alice reads her mail via the distributed decryption protocol.
    let out = dibe::dibe_decrypt_local(&mut phone, &mut card, &ct, &mut rng)?;
    assert_eq!(out, love_letter);
    println!("alice decrypted her mail");

    // Bob cannot.
    let (bob1, bob2) = dibe::idkey_local(&mut authority1, &mut authority2, b"bob@example.org", &mut rng)?;
    let mut bob_phone = dibe::IdParty1::new(&ibe_params, bob1);
    let mut bob_card = dibe::IdParty2::new(&ibe_params, bob2);
    let eavesdropped = dibe::dibe_decrypt_local(&mut bob_phone, &mut bob_card, &ct, &mut rng)?;
    assert_ne!(eavesdropped, love_letter);
    println!("bob's key decrypts alice's mail to garbage (as it must)");

    // Everything refreshes: the authority's master shares and Alice's key
    // shares — old ciphertexts keep decrypting.
    for period in 1..=3 {
        dibe::dibe_refresh_master_local(&mut authority1, &mut authority2, &mut rng)?;
        dibe::dibe_refresh_idkey_local(&mut phone, &mut card, &mut rng)?;
        let out = dibe::dibe_decrypt_local(&mut phone, &mut card, &ct, &mut rng)?;
        assert_eq!(out, love_letter);
        println!("period {period}: master + identity shares refreshed, mail still readable");
    }

    // Keys issued from refreshed master shares still match the public
    // parameters.
    let (carol1, carol2) =
        dibe::idkey_local(&mut authority1, &mut authority2, b"carol@example.org", &mut rng)?;
    let mut c1 = dibe::IdParty1::new(&ibe_params, carol1);
    let mut c2 = dibe::IdParty2::new(&ibe_params, carol2);
    let note = <Toy as Pairing>::Gt::random(&mut rng);
    let ct2 = ibe::encrypt(&ibe_params, b"carol@example.org", &note, &mut rng);
    assert_eq!(dibe::dibe_decrypt_local(&mut c1, &mut c2, &ct2, &mut rng)?, note);
    println!("new identities keep working after master refreshes");
    Ok(())
}
