#!/usr/bin/env bash
# The local CI gate: everything a PR must pass, in one command.
# Wraps the documentation gate (tools/check-docs.sh) and the workspace
# test suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> docs gate"
tools/check-docs.sh

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "ci OK"
