#!/usr/bin/env bash
# The local CI gate: everything a PR must pass, in one command.
# Wraps the documentation gate (tools/check-docs.sh) and the workspace
# test suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> docs gate (incl. table-drift check)"
tools/check-docs.sh --tables

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> server integration tests (live TCP)"
cargo test -q -p dlr-server
cargo test -q --test server_e2e

echo "==> cluster integration tests (2-replica fleet, routing/failover/epoch locality)"
cargo test -q -p dlr-cluster

echo "==> loadgen smoke run"
cargo run --release -q -p dlr-bench --bin loadgen -- --clients 2 --requests 5

echo "==> cluster smoke run (2 replicas, routed clients, mid-run replica restart)"
cargo run --release -q -p dlr-cli -- cluster --replicas 2 --keys 3 --clients 3 \
    --requests 8 --fault-ms 60 --downtime-ms 120

echo "==> kick-tires artifact run (tables + drift gate + trajectory parity)"
tools/kick-tires.sh

echo "ci OK"
