#!/usr/bin/env bash
# The local CI gate: everything a PR must pass, in one command.
# Wraps the documentation gate (tools/check-docs.sh) and the workspace
# test suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> docs gate"
tools/check-docs.sh

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> server integration tests (live TCP)"
cargo test -q -p dlr-server
cargo test -q --test server_e2e

echo "==> loadgen smoke run"
cargo run --release -q -p dlr-bench --bin loadgen -- --clients 2 --requests 5

echo "==> bench report op-count parity (PR4 -> PR5)"
tools/bench-compare.sh BENCH_PR4.json BENCH_PR5.json

echo "ci OK"
