#!/usr/bin/env bash
# Diff two harness --json reports (e.g. BENCH_PR1.json vs BENCH_PR2.json):
# per-span-path total_ns and self_ns deltas plus the op counts, failing
# with exit 1 if any span present in both reports disagrees on operation
# counts — op counts are the semantic fingerprint of a run, so a perf PR
# must move nanoseconds while keeping them bit-identical.
#
# usage: tools/bench-compare.sh BASELINE.json CANDIDATE.json
#        tools/bench-compare.sh --all [BENCH.json ...]
#
# --all walks the committed BENCH_PR*.json trajectory (oldest to newest,
# or an explicit file list): compares every consecutive pair *of the same
# report kind* for op-count parity and prints a one-table summary of the
# headline numbers (dec.p1.start, enc span time, loadgen throughput)
# across the whole sequence. Session reports (harness --json) and loadgen
# reports run different workloads over the same span names, so op counts
# are only comparable within a kind; kind boundaries are announced and
# skipped. Exits 1 if any same-kind consecutive pair disagrees.
set -euo pipefail

report_kind() {
    python3 -c '
import json, sys
meta = json.load(open(sys.argv[1])).get("meta", {})
print("loadgen" if meta.get("component") == "dlr-loadgen" else "session")
' "$1"
}

if [ "${1:-}" = "--all" ]; then
    shift
    cd "$(dirname "$0")/.."
    if [ $# -gt 0 ]; then
        files=("$@")
    else
        # Sort by the numeric PR suffix, not lexically (PR10 > PR9).
        mapfile -t files < <(ls BENCH_PR*.json 2>/dev/null \
            | sed 's/^BENCH_PR\([0-9]*\)\.json$/\1 &/' | sort -n | cut -d' ' -f2)
    fi
    if [ "${#files[@]}" -lt 2 ]; then
        echo "--all needs at least two BENCH_*.json files, found ${#files[@]}" >&2
        exit 2
    fi

    status=0
    compared=0
    i=0
    while [ $((i + 1)) -lt "${#files[@]}" ]; do
        a="${files[$i]}" b="${files[$((i + 1))]}"
        ka="$(report_kind "$a")" kb="$(report_kind "$b")"
        if [ "$ka" = "$kb" ]; then
            echo "==> $a -> $b ($ka)"
            if ! "$0" "$a" "$b"; then
                status=1
            fi
            compared=$((compared + 1))
        else
            echo "==> $a -> $b: methodology change ($ka -> $kb), op counts not comparable — skipped"
        fi
        echo
        i=$((i + 1))
    done
    if [ "$compared" -eq 0 ]; then
        echo "--all compared no pairs (every consecutive pair crossed a methodology boundary)" >&2
        exit 2
    fi

    python3 - "${files[@]}" <<'PY'
import json
import sys

print("trajectory summary (oldest -> newest):")
header = f"{'report':<18} {'kind':<10} {'dec.p1.start':>14} {'enc span':>12} {'req/s':>8}"
print(header)
print("-" * len(header))

def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.2f} {unit}"
    return f"{ns} ns"

for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    spans = {s["path"]: s for s in doc.get("spans", [])}
    meta = doc.get("meta", {})
    kind = "loadgen" if meta.get("component") == "dlr-loadgen" else "session"
    p1s = fmt_ns(spans["dec.p1.start"]["total_ns"]) if "dec.p1.start" in spans else "-"
    enc = fmt_ns(spans["enc"]["total_ns"]) if "enc" in spans else "-"
    rps = meta.get("throughput_rps", "-")
    print(f"{path:<18} {kind:<10} {p1s:>14} {enc:>12} {rps:>8}")

print()
print("note: session and loadgen reports run different workloads over the")
print("same span names, so timings only trend within a kind; timings are")
print("machine-dependent, op-count parity within a kind is the gate.")
PY

    if [ "$status" -ne 0 ]; then
        echo "OP-COUNT MISMATCH somewhere in the trajectory (see above)" >&2
        exit 1
    fi
    echo "trajectory OK: op counts identical across all same-kind consecutive pairs ($compared compared)"
    exit 0
fi

if [ $# -ne 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json" >&2
    echo "       $0 --all [BENCH.json ...]" >&2
    exit 2
fi

python3 - "$1" "$2" <<'PY'
import json
import sys

base_path, cand_path = sys.argv[1], sys.argv[2]
with open(base_path) as f:
    base = json.load(f)
with open(cand_path) as f:
    cand = json.load(f)

def spans_of(doc):
    return {s["path"]: s for s in doc.get("spans", [])}

base_spans, cand_spans = spans_of(base), spans_of(cand)
OPS = ("g_op", "g_pow", "gt_op", "gt_pow", "pairings")

def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if abs(ns) >= div:
            return f"{ns / div:+.2f} {unit}"
    return f"{ns:+d} ns"

print(f"baseline : {base_path}")
print(f"candidate: {cand_path}")
base_batching = base.get("meta", {}).get("batching", "off")
cand_batching = cand.get("meta", {}).get("batching", "off")
if base_batching != cand_batching:
    # Server-side batching is a scheduling change, not a methodology
    # change: the fused batch engine must be counter-identical to the
    # inline path, so op-count parity is still enforced across it.
    print(f"note: server batching changed ({base_batching} -> {cand_batching}); "
          "batching must be free at the op-count level, parity still enforced")
print()
header = f"{'span':<28} {'count':>5} {'total_ns delta':>16} {'%':>8} {'self_ns delta':>16}"
print(header)
print("-" * len(header))

mismatches = []
for path in sorted(set(base_spans) | set(cand_spans)):
    b, c = base_spans.get(path), cand_spans.get(path)
    if b is None or c is None:
        which = "candidate only" if b is None else "baseline only"
        print(f"{path:<28} {'-':>5} {which:>16}")
        continue
    dt = c["total_ns"] - b["total_ns"]
    ds = c["self_ns"] - b["self_ns"]
    pct = 100.0 * dt / b["total_ns"] if b["total_ns"] else 0.0
    print(f"{path:<28} {c['count']:>5} {fmt_ns(dt):>16} {pct:>+7.1f}% {fmt_ns(ds):>16}")
    if b["count"] != c["count"]:
        mismatches.append(f"{path}: count {b['count']} -> {c['count']}")
    for op in OPS:
        if b["ops"][op] != c["ops"][op]:
            mismatches.append(f"{path}: ops.{op} {b['ops'][op]} -> {c['ops'][op]}")

print()
if mismatches:
    print("OP-COUNT MISMATCH (perf changes must not change semantics):")
    for m in mismatches:
        print(f"  {m}")
    sys.exit(1)
print("op counts identical across all shared spans")
PY
