#!/usr/bin/env bash
# Diff two harness --json reports (e.g. BENCH_PR1.json vs BENCH_PR2.json):
# per-span-path total_ns and self_ns deltas plus the op counts, failing
# with exit 1 if any span present in both reports disagrees on operation
# counts — op counts are the semantic fingerprint of a run, so a perf PR
# must move nanoseconds while keeping them bit-identical.
#
# usage: tools/bench-compare.sh BASELINE.json CANDIDATE.json
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json" >&2
    exit 2
fi

python3 - "$1" "$2" <<'PY'
import json
import sys

base_path, cand_path = sys.argv[1], sys.argv[2]
with open(base_path) as f:
    base = json.load(f)
with open(cand_path) as f:
    cand = json.load(f)

def spans_of(doc):
    return {s["path"]: s for s in doc.get("spans", [])}

base_spans, cand_spans = spans_of(base), spans_of(cand)
OPS = ("g_op", "g_pow", "gt_op", "gt_pow", "pairings")

def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if abs(ns) >= div:
            return f"{ns / div:+.2f} {unit}"
    return f"{ns:+d} ns"

print(f"baseline : {base_path}")
print(f"candidate: {cand_path}")
print()
header = f"{'span':<28} {'count':>5} {'total_ns delta':>16} {'%':>8} {'self_ns delta':>16}"
print(header)
print("-" * len(header))

mismatches = []
for path in sorted(set(base_spans) | set(cand_spans)):
    b, c = base_spans.get(path), cand_spans.get(path)
    if b is None or c is None:
        which = "candidate only" if b is None else "baseline only"
        print(f"{path:<28} {'-':>5} {which:>16}")
        continue
    dt = c["total_ns"] - b["total_ns"]
    ds = c["self_ns"] - b["self_ns"]
    pct = 100.0 * dt / b["total_ns"] if b["total_ns"] else 0.0
    print(f"{path:<28} {c['count']:>5} {fmt_ns(dt):>16} {pct:>+7.1f}% {fmt_ns(ds):>16}")
    if b["count"] != c["count"]:
        mismatches.append(f"{path}: count {b['count']} -> {c['count']}")
    for op in OPS:
        if b["ops"][op] != c["ops"][op]:
            mismatches.append(f"{path}: ops.{op} {b['ops'][op]} -> {c['ops'][op]}")

print()
if mismatches:
    print("OP-COUNT MISMATCH (perf changes must not change semantics):")
    for m in mismatches:
        print(f"  {m}")
    sys.exit(1)
print("op counts identical across all shared spans")
PY
