#!/usr/bin/env bash
# Full artifact run, unattended: everything kick-tires.sh checks, plus
# every EXPERIMENTS.md table on every parameter set (harness --full),
# the A1-A7 + T2/F1/F2/F6/F7 criterion benches, the L1 loadgen
# concurrency ladder (1..16 clients), and the L2 worker-count sweep
# (generation-only, machine-dependent — flat on a single-core box).
# Expect tens of minutes to hours depending on the machine; all output
# lands in out/.
#
# usage: tools/full.sh
set -euo pipefail
cd "$(dirname "$0")/.."

started=$(date +%s)
declare -a claims

step() { printf '\n==> %s\n' "$1"; }

step "kick-tires preflight (gated tables + drift + parity)"
tools/kick-tires.sh
claims+=("kick-tires preflight (drift gate + op parity): OK")

step "full workspace test suite"
cargo test --workspace -q
claims+=("workspace test suite: OK")

step "regenerate gated tables + L1 concurrency ladder + L2 worker sweep (full profile)"
./target/release/dlr artifact --profile full --mode all --l2-workers 1,2,4
claims+=("full-profile tables incl. L1 ladder + L2 worker sweep (machine-dependent): OK")

step "all experiment tables, all parameter sets (harness --full)"
cargo run --release -q -p dlr-bench --bin harness -- all --full | tee out/harness-full.txt
claims+=("harness --full (T1-T3, F1-F8, A1-A7 tables, all curves): OK")

step "criterion benches (timing-grade, machine-dependent)"
cargo bench -p dlr-bench 2>&1 | tee out/criterion.log | grep -E "^(test|a[0-9]|t2|f[0-9]|Benchmarking)" || true
claims+=("criterion benches A1-A7/T2/F1/F2/F6/F7 (log: out/criterion.log): OK")

elapsed=$(( $(date +%s) - started ))
cat <<EOF

============================================================
 full artifact run PASSED in ${elapsed}s
============================================================
 claims checked:
EOF
for c in "${claims[@]}"; do printf '   - %s\n' "$c"; done
cat <<EOF
 tables written:
$(ls out/* | sed 's/^/   - /')
 op-count parity verdict: IDENTICAL (see kick-tires preflight above;
   ladder and criterion output are timing-grade, machine-dependent)
============================================================
EOF
