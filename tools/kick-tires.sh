#!/usr/bin/env bash
# Kick-the-tires artifact run: from a clean checkout, offline, in minutes,
# smoke-verify every headline claim of EXPERIMENTS.md and regenerate the
# measured tables (A6 span fingerprint, A7 fixed-base parity, A8 multiexp
# crossover, A9 dynamic-batching ablation, L1 server load, L2
# high-concurrency ladder, L3 replica-fleet ladder) into out/. Exits
# nonzero if any regenerated op count disagrees with the committed docs.
#
# usage: tools/kick-tires.sh
#
# What it checks, in order:
#   1. the workspace builds in release mode (no network access needed);
#   2. `dlr artifact` regenerates A6/A7/A8/A9/L1/L2/L3 into out/ and
#      every exact (op-count) cell matches EXPERIMENTS.md — the
#      table-drift gate (L2 includes the 1024-concurrent-session rung
#      against the event-loop server with the adaptive batch window on;
#      A9 ablates batch=1 vs adaptive vs unbounded windows and gates the
#      deterministic batched-request counts; L3 sweeps 1/2/4 key-sharded
#      replicas with routed clients and drift-gates the redirect counts);
#   3. the fresh A6/L1/L3 metrics JSON is op-identical to the committed
#      BENCH_PR2.json / BENCH_PR8.json / BENCH_PR10.json baselines (live
#      run vs history);
#   4. the committed PR7->PR8 server rebuild, the PR8->PR9 fleet
#      routing, and the PR9->PR10 batch executor each preserved the
#      workload's op-count fingerprint exactly (routing and batching
#      must be free at the op-count level);
#   5. a negative control: a deliberately perturbed dec.p2.respond op
#      count must make the comparator fail (the parity gate can fail);
#   6. the committed BENCH_PR1->PR10 trajectory itself holds op-count
#      parity within each report kind (`bench-compare.sh --all`).
#
# The full-length counterpart (all parameter sets, criterion benches,
# loadgen concurrency ladder) is tools/full.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

started=$(date +%s)
declare -a claims

step() { printf '\n==> %s\n' "$1"; }

step "release build (offline)"
cargo build --release -q -p dlr-cli -p dlr-bench
claims+=("release build: OK")

step "regenerate A6/A7/A8/A9/L1/L2/L3 tables + table-drift gate"
./target/release/dlr artifact --profile kick-tires --mode all
claims+=("table-drift gate (A6/A7/A8/A9/L1/L2/L3 vs EXPERIMENTS.md): OK")

step "live session vs committed BENCH_PR2.json (op-count parity)"
tools/bench-compare.sh BENCH_PR2.json out/A6.json
claims+=("live A6 session op-identical to BENCH_PR2.json: OK")

step "live loadgen vs committed BENCH_PR8.json (op-count parity)"
tools/bench-compare.sh BENCH_PR8.json out/L1.json
claims+=("live L1 loadgen op-identical to BENCH_PR8.json: OK")

step "live fleet loadgen vs committed BENCH_PR10.json (op-count parity)"
tools/bench-compare.sh BENCH_PR10.json out/L3.json
claims+=("live fleet session op-identical to BENCH_PR10.json: OK")

step "PR7->PR8 server rebuild preserved the op-count fingerprint"
tools/bench-compare.sh BENCH_PR7.json BENCH_PR8.json
claims+=("event-loop rebuild op-identical to threaded server (PR7 vs PR8): OK")

step "PR8->PR9 fleet routing preserved the op-count fingerprint"
tools/bench-compare.sh BENCH_PR8.json BENCH_PR9.json
claims+=("2-replica routed fleet op-identical to single server (PR8 vs PR9): OK")

step "PR9->PR10 dynamic batching preserved the op-count fingerprint"
tools/bench-compare.sh BENCH_PR9.json BENCH_PR10.json
claims+=("adaptive batch executor op-identical to inline path (PR9 vs PR10): OK")

step "negative control: a perturbed dec.p2.respond op count must fail"
perturbed=$(mktemp /tmp/dlr-perturbed-XXXXXX.json)
python3 - out/L3.json "$perturbed" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
bumped = 0
for s in doc["spans"]:
    if s["path"] == "dec.p2.respond":
        s["ops"]["gt_pow"] += 1
        bumped += 1
assert bumped == 1, f"expected one dec.p2.respond span, found {bumped}"
json.dump(doc, open(sys.argv[2], "w"))
PY
if tools/bench-compare.sh BENCH_PR10.json "$perturbed" >/dev/null 2>&1; then
    rm -f "$perturbed"
    echo "FAIL: comparator accepted a perturbed dec.p2.respond op count"
    exit 1
fi
rm -f "$perturbed"
claims+=("comparator rejects a perturbed batch op count (negative control): OK")

step "committed BENCH_PR1->PR10 trajectory parity"
tools/bench-compare.sh --all
claims+=("BENCH_PR* trajectory op-count parity: OK")

# Headline claims, re-read from the freshly generated CSVs so the
# summary reflects this run, not the committed docs.
p2_pairings=$(awk -F, '$1 == "dec.p2.respond" { print $7 }' out/A6.csv)
p1_pairings=$(awk -F, '$1 == "dec.p1.start" { print $7 }' out/A6.csv)
dec_gexp=$(awk -F, '$1 == "dec" { print $4 }' out/A6.csv)
a7_parity=$(awk -F, 'NR > 1 { printf "%s%s: %s", (NR > 2 ? ", " : ""), $1, $7 }' out/A7.csv)
l1_row=$(awk -F, 'NR == 2 { print $2 " requests, " $3 " verified, " $4 " failures" }' out/L1.csv)
l2_top=$(awk -F, 'END { print $1 " concurrent sessions, " $3 "/" $2 " verified, " $4 " failures, " $6 " client panics" }' out/L2.csv)
a9_top=$(awk -F, 'END { print $1 " @ " $2 " sessions: " $6 "/" $3 " batched, " $7 " flushes" }' out/A9.csv)
l3_top=$(awk -F, 'END { print $1 " replicas, " $5 "/" $4 " verified, " $6 " failures, " $8 " redirects" }' out/L3.csv)
[ "$p2_pairings" = "0" ] || { echo "FAIL: P2 did $p2_pairings pairings (claim: zero)"; exit 1; }
claims+=("P2 does zero pairings (all $p1_pairings on P1): OK")
claims+=("A7 fixed-base/generic parity ($a7_parity): OK")
claims+=("L1 load run clean ($l1_row): OK")
claims+=("L2 top rung clean ($l2_top): OK")
claims+=("A9 top ablation cell clean ($a9_top): OK")
claims+=("L3 fleet top rung clean ($l3_top): OK")

elapsed=$(( $(date +%s) - started ))
cat <<EOF

============================================================
 kick-tires PASSED in ${elapsed}s
============================================================
 claims checked:
EOF
for c in "${claims[@]}"; do printf '   - %s\n' "$c"; done
cat <<EOF
 tables written:
$(ls out/*.md out/*.csv out/*.json | sed 's/^/   - /')
 op-count parity verdict: IDENTICAL (live run vs committed docs
   and BENCH_PR* history; per-11-decrypt fingerprint: $p1_pairings pairings,
   $dec_gexp G-exp, timings machine-dependent)
============================================================
EOF
