#!/usr/bin/env python3
"""Parameter generator for the supersingular (Type-1) curve families.

Searches for primes (r, p) with:

  * r prime (the pairing group order, the paper's `p`),
  * p = c*r - 1 prime with 4 | c, so p = 3 (mod 4) and E : y^2 = x^3 + x
    over F_p is supersingular with #E(F_p) = p + 1 = c*r.

The output constants are hardcoded in `crates/curve/src/params.rs`; the
Rust test-suite re-verifies primality (Miller-Rabin in `dlr-math`) and the
c*r - 1 = p relation from scratch on every run, so this script only needs
to be re-run to generate *new* parameter sets.

Usage:  python3 tools/paramgen.py
"""

import json
import random

SEED = 20120716  # PODC'12 begins 2012-07-16


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for n < 3.3e24; strong battery beyond."""
    if n < 2:
        return False
    for sp in [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]:
        if n % sp == 0:
            return n == sp
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def gen_prime(bits: int, rng: random.Random) -> int:
    while True:
        n = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(n):
            return n


def find_cofactor(r: int, pbits: int) -> tuple[int, int]:
    """Smallest 4-divisible c >= 2^(pbits-1)/r with p = c*r - 1 prime."""
    c = (1 << (pbits - 1)) // r
    c -= c % 4
    while True:
        c += 4
        p = c * r - 1
        if p % 4 == 3 and is_prime(p):
            return c, p


def main() -> None:
    rng = random.Random(SEED)
    out: dict = {}

    # one shared 256-bit subgroup order for SS512/SS768/SS1024
    r = gen_prime(256, rng)
    out["r"] = hex(r)
    for name, pbits in [("SS512", 512), ("SS768", 768), ("SS1024", 1024)]:
        c, p = find_cofactor(r, pbits)
        assert p.bit_length() == pbits
        out[name] = {"p": hex(p), "c": hex(c), "pbits": pbits}

    # TOY: its own small order for fast tests
    r0 = gen_prime(63, rng)
    c = 4
    while True:
        p0 = c * r0 - 1
        if p0 % 4 == 3 and is_prime(p0):
            break
        c += 4
    out["TOY"] = {"r": hex(r0), "p": hex(p0), "c": hex(c), "pbits": p0.bit_length()}

    # MINI: prime-order subgroups of Z_P^* with tiny order, for the exact
    # entropy experiments (F5)
    out["MINI"] = {}
    for rm in [17, 251, 1009]:
        k = (1 << 42) // rm
        while True:
            k += 1
            P = k * rm + 1
            if is_prime(P):
                break
        e = (P - 1) // rm
        x = 2
        while pow(x, e, P) == 1:
            x += 1
        h = pow(x, e, P)
        assert pow(h, rm, P) == 1
        out["MINI"][str(rm)] = {"P": P, "k": k, "h": h}

    print(json.dumps(out, indent=1))


if __name__ == "__main__":
    main()
