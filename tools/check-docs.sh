#!/usr/bin/env bash
# Documentation gate: rustdoc must build warning-free and every doctest
# must pass. Run from the repository root (CI runs this on every push).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> doctests"
cargo test --workspace --doc

echo "docs OK"
