#!/usr/bin/env bash
# Documentation gate: rustdoc must build warning-free and every doctest
# must pass. Run from the repository root (CI runs this on every push).
#
# With --tables, additionally regenerates the measured EXPERIMENTS.md
# tables (A6/A7/A8/A9/L1/L2/L3) into out/ via `dlr artifact` and fails if any exact
# (op-count) cell disagrees with the committed docs — the table-drift
# gate. Timing cells (columns headed `(md)`) are machine-dependent and
# never compared.
set -euo pipefail
cd "$(dirname "$0")/.."

check_tables=0
for arg in "$@"; do
    case "$arg" in
        --tables) check_tables=1 ;;
        *) echo "usage: $0 [--tables]" >&2; exit 2 ;;
    esac
done

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo doc --document-private-items (dlr-math, dlr-curve, dlr-metrics, dlr-server)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --document-private-items \
    -p dlr-math -p dlr-curve -p dlr-metrics -p dlr-server

echo "==> doctests"
cargo test --workspace --doc

if [ "$check_tables" -eq 1 ]; then
    echo "==> table-drift gate (EXPERIMENTS.md vs regenerated out/)"
    cargo run --release -q -p dlr-cli -- artifact --profile kick-tires --mode all
fi

echo "docs OK"
