//! Analytic leakage bounds — Theorem 4.1 instantiated on the *implemented*
//! memory layouts, plus the prior-work comparison constants of §1.2.1.
//!
//! Theorem 4.1: under BDDH and 2Lin, DLR/DLRIBE/DLRCCA2 are secure against
//! `(b_0, b_1, b_2)`-CML with
//!
//! ```text
//! b_0 = Ω(log n),   b_1 = (1 − c·n/(λ + c·n))·m_1,   b_2 = m_2
//! ```
//!
//! where `m_1 = |sk_comm| = κ·log p` and `m_2 = |sk_2| = ℓ·log p`. With the
//! §5 parameter setting `κ·log p ≈ λ + c·n` (c = 3 when `log p = n`), the
//! bound simplifies to `b_1 = λ`. The *rates* follow by dividing by the
//! secret-memory sizes: `m_1 + log p` normally, `2m_1 + log p` during
//! refresh.

use dlr_core::params::SchemeParams;

/// Derived leakage bounds and rates for one parameter choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageBounds {
    /// Security parameter `n`.
    pub n: u32,
    /// Leakage parameter `λ`.
    pub lambda: u32,
    /// `P1` tolerated bits per share lifetime (`b_1 = λ`).
    pub b1_bits: u64,
    /// `P2` tolerated bits (`b_2 = m_2`).
    pub b2_bits: u64,
    /// `P1` secret memory outside refresh, in bits (`m_1 + log p`).
    pub m1_normal_bits: u64,
    /// `P1` secret memory during refresh (`2·m_1 + log p`).
    pub m1_refresh_bits: u64,
    /// `P2` secret memory outside refresh (`m_2`).
    pub m2_normal_bits: u64,
    /// `P2` secret memory during refresh (`2·m_2`).
    pub m2_refresh_bits: u64,
}

impl LeakageBounds {
    /// Instantiate Theorem 4.1 on the streaming (`m_1 = |sk_comm|`) layout.
    pub fn theorem41(params: &SchemeParams) -> Self {
        let log_p = params.log_p as u64;
        let m1 = params.kappa as u64 * log_p; // |sk_comm|
        let m2 = params.ell as u64 * log_p; // |sk_2|
        Self {
            n: params.n,
            lambda: params.lambda,
            b1_bits: params.lambda as u64,
            b2_bits: m2,
            m1_normal_bits: m1 + log_p,
            m1_refresh_bits: 2 * m1 + log_p,
            m2_normal_bits: m2,
            m2_refresh_bits: 2 * m2,
        }
    }

    /// `ρ_1`: tolerated leakage rate from `P1` outside refresh —
    /// approaches `1 − o(1)` as `λ` grows.
    pub fn rho1(&self) -> f64 {
        self.b1_bits as f64 / self.m1_normal_bits as f64
    }

    /// `ρ_1^{Ref}`: rate during refresh — approaches `1/2 − o(1)`.
    pub fn rho1_refresh(&self) -> f64 {
        self.b1_bits as f64 / self.m1_refresh_bits as f64
    }

    /// `ρ_2 = 1`: `P2`'s full share may leak every period.
    pub fn rho2(&self) -> f64 {
        self.b2_bits as f64 / self.m2_normal_bits as f64
    }

    /// `ρ_2^{Ref}` under the generic accounting (`1/2`; the paper's proof
    /// shows the stronger `ρ_2^{Ref} = 1`, see
    /// [`Self::rho2_refresh_strong`]).
    pub fn rho2_refresh(&self) -> f64 {
        self.b2_bits as f64 / self.m2_refresh_bits as f64
    }

    /// The stronger `ρ_2^{Ref} = 1` bound proven in §4.
    pub fn rho2_refresh_strong(&self) -> f64 {
        1.0
    }
}

/// A prior scheme's tolerated leakage fraction **during refresh**
/// (§1.2.1 ¶3 comparison).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorScheme {
    /// Citation key.
    pub name: &'static str,
    /// Venue/reference.
    pub reference: &'static str,
    /// Tolerated refresh-leakage fraction (`None` = `o(1)`, i.e. vanishing).
    pub refresh_fraction: Option<f64>,
    /// Display string used in the T1 table.
    pub display: &'static str,
}

/// The comparison table of §1.2.1: tolerated leakage fraction during key
/// refresh.
pub const PRIOR_WORK: &[PriorScheme] = &[
    PriorScheme {
        name: "BKKV",
        reference: "[11] Brakerski-Kalai-Katz-Vaikuntanathan, FOCS'10",
        refresh_fraction: None,
        display: "o(1)",
    },
    PriorScheme {
        name: "LLW",
        reference: "[29] Lewko-Lewko-Waters, STOC'11",
        refresh_fraction: Some(1.0 / 258.0),
        display: "1/258",
    },
    PriorScheme {
        name: "DLWW",
        reference: "[17] Dodis-Lewko-Waters-Wichs, FOCS'11",
        refresh_fraction: Some(1.0 / 672.0),
        display: "1/672",
    },
    PriorScheme {
        name: "LRW",
        reference: "[30] Lewko-Rouselakis-Waters, TCC'11",
        refresh_fraction: None,
        display: "o(1)",
    },
    PriorScheme {
        name: "DHLW",
        reference: "[15] Dodis-Haralambiev-Lopez-Alt-Wichs, ASIACRYPT'10",
        refresh_fraction: Some(0.0),
        display: "0 (none)",
    },
];

/// Per-encryption cost profile (footnote 3 comparison, T2). Prior schemes'
/// profiles are asymptotic claims from the paper; ours are *measured* by
/// the bench harness via `dlr_curve::counters`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostProfile {
    /// Scheme label.
    pub name: &'static str,
    /// Plaintext granularity.
    pub granularity: &'static str,
    /// Ciphertext size in group elements (display form).
    pub ct_elements: &'static str,
    /// Exponentiations per encryption (display form).
    pub exps_per_enc: &'static str,
    /// Notes (group structure etc.).
    pub notes: &'static str,
}

/// Footnote-3 cost comparison rows for the prior schemes.
pub const PRIOR_COSTS: &[CostProfile] = &[
    CostProfile {
        name: "BKKV [11]",
        granularity: "bit-by-bit",
        ct_elements: "ω(n) per bit",
        exps_per_enc: "ω(n)",
        notes: "prime order",
    },
    CostProfile {
        name: "LLW [29]",
        granularity: "bit-by-bit",
        ct_elements: "O(1) per bit",
        exps_per_enc: "O(1)",
        notes: "composite order (4 primes)",
    },
    CostProfile {
        name: "LRW [30]",
        granularity: "group element",
        ct_elements: "ω(1)",
        exps_per_enc: "ω(1)",
        notes: "dual system",
    },
    CostProfile {
        name: "DLR (this repo)",
        granularity: "group element",
        ct_elements: "2",
        exps_per_enc: "2 (+1 cached pairing)",
        notes: "prime order; measured by harness t2",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    fn params(log_p: u32, n: u32, lambda: u32) -> SchemeParams {
        SchemeParams::derive_for_bits(log_p, n, lambda)
    }

    #[test]
    fn rho1_approaches_one() {
        // with log p = n = 256 and growing λ, ρ1 → 1
        let small = LeakageBounds::theorem41(&params(256, 256, 1024));
        let big = LeakageBounds::theorem41(&params(256, 256, 1 << 20));
        assert!(big.rho1() > small.rho1());
        assert!(big.rho1() > 0.99, "rho1 = {}", big.rho1());
        assert!(small.rho1() < 0.6);
    }

    #[test]
    fn rho1_refresh_approaches_half() {
        let big = LeakageBounds::theorem41(&params(256, 256, 1 << 20));
        assert!((big.rho1_refresh() - 0.5).abs() < 0.01);
        // and never exceeds 1/2
        for lam in [0u32, 256, 4096, 1 << 16] {
            let b = LeakageBounds::theorem41(&params(256, 128, lam));
            assert!(b.rho1_refresh() <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn rho2_is_exactly_one() {
        let b = LeakageBounds::theorem41(&params(256, 128, 2048));
        assert_eq!(b.rho2(), 1.0);
        assert_eq!(b.rho2_refresh(), 0.5);
        assert_eq!(b.rho2_refresh_strong(), 1.0);
    }

    #[test]
    fn beats_every_prior_scheme_on_refresh_leakage() {
        let ours = LeakageBounds::theorem41(&params(256, 256, 1 << 20));
        for prior in PRIOR_WORK {
            let theirs = prior.refresh_fraction.unwrap_or(0.0);
            assert!(
                ours.rho1_refresh() > theirs,
                "ours {} vs {} {}",
                ours.rho1_refresh(),
                prior.name,
                theirs
            );
        }
    }

    #[test]
    fn prior_tables_well_formed() {
        assert_eq!(PRIOR_WORK.len(), 5);
        assert_eq!(PRIOR_COSTS.len(), 4);
        assert!(PRIOR_COSTS.iter().any(|c| c.name.contains("DLR")));
    }
}
