//! The CPA-CML security game of Definition 3.2, playable against the real
//! implementation.
//!
//! The challenger generates keys, and then for as many time periods as the
//! adversary chooses: samples a ciphertext from the distribution `C`, runs
//! the **actual** decryption and refresh protocols between the party state
//! machines, snapshots each device's secret memory at the model-defined
//! moments, evaluates the adversary's leakage functions on those snapshots
//! (plus `pub^t` = transcript ‖ protocol input/output), and enforces the
//! `(b_0, b_1, b_2)` budgets. Then the standard IND-CPA challenge phase
//! runs.
//!
//! This game is an *experiment harness*: it measures the success of
//! concrete attack strategies against the implementation (experiments
//! F3/F4), complementing the paper's reduction proof.

use crate::bits::Bits;
use crate::budget::{BudgetExceeded, LeakageBudget};
use crate::leakfn::{LeakInput, LeakageFn};
use dlr_core::dlr::{self, Ciphertext, Party2, PublicKey};
use dlr_core::params::SchemeParams;
use dlr_core::party::{AnyParty1, P1Layout};
use dlr_curve::{Group, Pairing};
use rand::RngCore;

/// The public information of one period, `pub^t = (comm^t, c, m)`.
#[derive(Debug, Clone, Default)]
pub struct PeriodPublic {
    /// Serialized protocol transcript (all four messages).
    pub transcript: Vec<u8>,
    /// The decryption-protocol input ciphertext.
    pub dec_input: Vec<u8>,
    /// The decryption-protocol output message.
    pub dec_output: Vec<u8>,
}

impl PeriodPublic {
    /// Flatten for use as leakage-function input.
    pub fn flatten(&self) -> Vec<u8> {
        let mut out = self.transcript.clone();
        out.extend_from_slice(&self.dec_input);
        out.extend_from_slice(&self.dec_output);
        out
    }
}

/// The four leakage functions of one period
/// `(h_1^t, h_1^{t,Ref}, h_2^t, h_2^{t,Ref})`.
#[derive(Debug)]
pub struct PeriodLeakage {
    /// Applied to `P1`'s secret memory outside refresh.
    pub h1: LeakageFn,
    /// Applied to `P1`'s secret memory during refresh.
    pub h1_ref: LeakageFn,
    /// Applied to `P2`'s secret memory outside refresh.
    pub h2: LeakageFn,
    /// Applied to `P2`'s secret memory during refresh.
    pub h2_ref: LeakageFn,
}

impl PeriodLeakage {
    /// No leakage this period.
    pub fn none() -> Self {
        Self {
            h1: LeakageFn::null(),
            h1_ref: LeakageFn::null(),
            h2: LeakageFn::null(),
            h2_ref: LeakageFn::null(),
        }
    }
}

/// What the adversary receives back for one period.
#[derive(Debug, Clone)]
pub struct PeriodLeakageOutput {
    /// `ℓ_1^t`.
    pub l1: Bits,
    /// `ℓ_1^{t,Ref}`.
    pub l1_ref: Bits,
    /// `ℓ_2^t`.
    pub l2: Bits,
    /// `ℓ_2^{t,Ref}`.
    pub l2_ref: Bits,
    /// The public information of the period.
    pub public: PeriodPublic,
}

/// An adversary in the CPA-CML game.
pub trait Adversary<E: Pairing> {
    /// Phase 1: receive the public key.
    fn on_public_key(&mut self, _pk: &PublicKey<E>) {}

    /// Phase 3 driver: choose this period's leakage functions, or `None`
    /// to proceed to the challenge phase.
    fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage>;

    /// Phase 3: receive the leakage results of period `t`.
    fn on_leakage(&mut self, _t: u64, _out: PeriodLeakageOutput) {}

    /// Phase 4: submit the two challenge messages.
    fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (E::Gt, E::Gt);

    /// Phase 4: guess which message the challenge encrypts.
    fn guess(&mut self, challenge: &Ciphertext<E>) -> bool;
}

/// Game configuration.
pub struct GameConfig {
    /// Scheme parameters.
    pub params: SchemeParams,
    /// `P1` memory layout under attack.
    pub layout: P1Layout,
    /// Leakage bound for `P1` (bits per share lifetime).
    pub b1: u64,
    /// Leakage bound for `P2`.
    pub b2: u64,
    /// Cap on periods (safety net for non-terminating adversaries).
    pub max_periods: u64,
}

impl GameConfig {
    /// Config with bounds set to the Theorem 4.1 values for these
    /// parameters (λ bits from `P1`, full share size from `P2`).
    pub fn theorem_bounds<E: Pairing>(params: SchemeParams, layout: P1Layout) -> Self {
        let scalar_bits = 8 * <E::Scalar as dlr_math::FieldElement>::byte_len() as u64;
        Self {
            params,
            layout,
            b1: params.lambda as u64,
            b2: params.ell as u64 * scalar_bits,
            max_periods: 64,
        }
    }
}

/// Outcome of one game run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GameOutcome {
    /// The adversary guessed the challenge bit.
    AdversaryWins,
    /// The adversary guessed wrong.
    AdversaryLoses,
    /// The adversary exceeded a leakage budget — the challenger aborted.
    Aborted(BudgetExceeded),
}

/// The ciphertext distribution `C(n, pk, t)` of the game.
pub type CiphertextDist<'a, E> =
    &'a mut dyn FnMut(&PublicKey<E>, u64, &mut dyn RngCore) -> Ciphertext<E>;

/// Run one CPA-CML game. The ciphertext distribution `C(n, pk, t)` is the
/// closure `dist` (defaults: see [`random_message_dist`]).
pub fn run_cpa_cml<E: Pairing, R: RngCore>(
    cfg: &GameConfig,
    adversary: &mut dyn Adversary<E>,
    dist: CiphertextDist<'_, E>,
    rng: &mut R,
) -> GameOutcome {
    // 1. Key generation
    let (pk, s1, s2) = dlr::keygen::<E, _>(cfg.params, rng);
    let mut p1 = AnyParty1::new(cfg.layout, pk.clone(), s1, rng);
    let mut p2 = Party2::new(pk.clone(), s2);
    adversary.on_public_key(&pk);

    let mut budget1 = LeakageBudget::new(cfg.b1, 0);
    let mut budget2 = LeakageBudget::new(cfg.b2, 0);

    // 3. Leakage periods
    let mut t = 0u64;
    while t < cfg.max_periods {
        let Some(mut leak) = adversary.choose_leakage(t) else {
            break;
        };

        // Run the decryption protocol on a C-sampled ciphertext.
        let ct = dist(&pk, t, rng);
        let mut transcript = Vec::new();
        let m1 = p1.dec_start(&ct, rng);
        transcript.extend_from_slice(&m1.to_bytes());
        let m2 = p2.dec_respond(&m1).expect("honest protocol");
        transcript.extend_from_slice(&m2.to_bytes());
        let m = p1.dec_finish(&m2).expect("honest protocol");

        // Snapshot the "normal" views (share + this period's randomness).
        let view1 = p1.device().secret.view();
        let view2 = p2.device().secret.view();

        // Run the refresh protocol up to the staged point.
        let r1 = p1.ref_start(rng);
        transcript.extend_from_slice(&r1.to_bytes());
        let r2 = p2.ref_respond(&r1, rng).expect("honest protocol");
        transcript.extend_from_slice(&r2.to_bytes());
        p1.ref_finish(&r2, rng).expect("honest protocol");

        // Snapshot the refresh views (old + new share both resident).
        let view1_ref = p1.device().secret.view();
        let view2_ref = p2.device().secret.view();

        // Complete the period (erasure).
        p1.ref_complete().expect("staged");
        p2.ref_complete().expect("staged");

        let public = PeriodPublic {
            transcript,
            dec_input: ct.to_bytes(),
            dec_output: m.to_bytes(),
        };
        let pub_flat = public.flatten();

        // Budgets are charged on the *declared* output lengths.
        if let Err(e) = budget1.charge_period(
            leak.h1.output_bits() as u64,
            leak.h1_ref.output_bits() as u64,
        ) {
            return GameOutcome::Aborted(e);
        }
        if let Err(e) = budget2.charge_period(
            leak.h2.output_bits() as u64,
            leak.h2_ref.output_bits() as u64,
        ) {
            return GameOutcome::Aborted(e);
        }

        let out = PeriodLeakageOutput {
            l1: leak.h1.eval(&LeakInput {
                secret: &view1,
                public: &pub_flat,
            }),
            l1_ref: leak.h1_ref.eval(&LeakInput {
                secret: &view1_ref,
                public: &pub_flat,
            }),
            l2: leak.h2.eval(&LeakInput {
                secret: &view2,
                public: &pub_flat,
            }),
            l2_ref: leak.h2_ref.eval(&LeakInput {
                secret: &view2_ref,
                public: &pub_flat,
            }),
            public,
        };
        adversary.on_leakage(t, out);
        t += 1;
    }

    // 4. Challenge phase
    let (m0, m1) = adversary.challenge_messages(rng);
    let b = (rng.next_u32() & 1) == 1;
    let challenge = dlr::encrypt(&pk, if b { &m1 } else { &m0 }, rng);
    if adversary.guess(&challenge) == b {
        GameOutcome::AdversaryWins
    } else {
        GameOutcome::AdversaryLoses
    }
}

/// The default ciphertext distribution: encryptions of uniformly random
/// messages ("decryptions running in the background", §3.3).
pub fn random_message_dist<E: Pairing>(
) -> impl FnMut(&PublicKey<E>, u64, &mut dyn RngCore) -> Ciphertext<E> {
    |pk, _t, rng| {
        let m = E::Gt::random(rng);
        dlr::encrypt(pk, &m, rng)
    }
}

/// Estimate an adversary's win rate over `trials` independent games.
pub fn estimate_win_rate<E: Pairing, R: RngCore>(
    cfg: &GameConfig,
    mut make_adversary: impl FnMut() -> Box<dyn Adversary<E>>,
    trials: usize,
    rng: &mut R,
) -> WinStats {
    let mut wins = 0usize;
    let mut aborts = 0usize;
    for _ in 0..trials {
        let mut adv = make_adversary();
        let mut dist = random_message_dist::<E>();
        match run_cpa_cml(cfg, adv.as_mut(), &mut dist, rng) {
            GameOutcome::AdversaryWins => wins += 1,
            GameOutcome::AdversaryLoses => {}
            GameOutcome::Aborted(_) => aborts += 1,
        }
    }
    WinStats {
        trials,
        wins,
        aborts,
    }
}

/// Aggregated game statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WinStats {
    /// Number of games played.
    pub trials: usize,
    /// Games the adversary won.
    pub wins: usize,
    /// Games aborted for budget violations.
    pub aborts: usize,
}

impl WinStats {
    /// Win rate among non-aborted games.
    pub fn win_rate(&self) -> f64 {
        let n = self.trials - self.aborts;
        if n == 0 {
            return 0.0;
        }
        self.wins as f64 / n as f64
    }

    /// Advantage over random guessing: `2·(rate − 1/2)`.
    pub fn advantage(&self) -> f64 {
        2.0 * (self.win_rate() - 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakfn::prefix_bits;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type E = Toy;

    struct NullAdversary;
    impl Adversary<E> for NullAdversary {
        fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
            (t < 2).then(PeriodLeakage::none)
        }
        fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (
            <E as Pairing>::Gt,
            <E as Pairing>::Gt,
        ) {
            (Group::random(rng), Group::random(rng))
        }
        fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
            false
        }
    }

    fn cfg() -> GameConfig {
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        GameConfig::theorem_bounds::<E>(params, P1Layout::Streaming)
    }

    #[test]
    fn null_adversary_wins_half_ish() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(201);
        let stats = estimate_win_rate::<E, _>(&cfg(), || Box::new(NullAdversary), 40, &mut rng);
        assert_eq!(stats.aborts, 0);
        // fixed guess against a random bit: expect near 50%
        assert!(stats.win_rate() > 0.25 && stats.win_rate() < 0.75, "{stats:?}");
    }

    struct GreedyLeaker;
    impl Adversary<E> for GreedyLeaker {
        fn choose_leakage(&mut self, _t: u64) -> Option<PeriodLeakage> {
            Some(PeriodLeakage {
                h1: prefix_bits(1_000_000),
                h1_ref: LeakageFn::null(),
                h2: LeakageFn::null(),
                h2_ref: LeakageFn::null(),
            })
        }
        fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (
            <E as Pairing>::Gt,
            <E as Pairing>::Gt,
        ) {
            (Group::random(rng), Group::random(rng))
        }
        fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
            false
        }
    }

    #[test]
    fn over_budget_adversary_aborts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(202);
        let mut adv = GreedyLeaker;
        let mut dist = random_message_dist::<E>();
        let out = run_cpa_cml(&cfg(), &mut adv, &mut dist, &mut rng);
        assert!(matches!(out, GameOutcome::Aborted(_)));
    }

    #[test]
    fn leakage_outputs_delivered() {
        struct Collector {
            got: Vec<usize>,
        }
        impl Adversary<E> for Collector {
            fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
                (t < 3).then(|| PeriodLeakage {
                    h1: prefix_bits(8),
                    h1_ref: prefix_bits(4),
                    h2: prefix_bits(16),
                    h2_ref: LeakageFn::null(),
                })
            }
            fn on_leakage(&mut self, _t: u64, out: PeriodLeakageOutput) {
                self.got.push(out.l1.len() + out.l1_ref.len() + out.l2.len());
                assert!(!out.public.transcript.is_empty());
            }
            fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (
                <E as Pairing>::Gt,
                <E as Pairing>::Gt,
            ) {
                (Group::random(rng), Group::random(rng))
            }
            fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
                true
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(203);
        let mut adv = Collector { got: vec![] };
        let mut dist = random_message_dist::<E>();
        let _ = run_cpa_cml(&cfg(), &mut adv, &mut dist, &mut rng);
        assert_eq!(adv.got, vec![28, 28, 28]);
    }
}
