//! Exact entropy computations on mini groups — the numeric validation of
//! HPSKE's Definition 5.1(2) (experiment F5).
//!
//! For real parameters the entropy claim rests on the leftover hash lemma;
//! on the tiny [`ModGroup`] instances the
//! key/plaintext/coin spaces are small enough to **enumerate completely**,
//! so the average min-entropy
//!
//! ```text
//! H̃∞( m⃗ | Enc'(m⃗), L = h(sk_comm, m⃗, coins) )
//! ```
//!
//! can be computed *exactly* and compared against the `log p + 2·log(1/ε)`
//! requirement and the `−λ` chain-rule floor.

use dlr_curve::modgroup::{MiniParams, ModGroup};
use dlr_curve::Group;
use std::collections::HashMap;

/// `H∞(X) = −log₂ max_x P(x)` for a probability vector.
pub fn min_entropy(probs: &[f64]) -> f64 {
    let max = probs.iter().cloned().fold(0.0f64, f64::max);
    assert!(max > 0.0, "distribution must be non-trivial");
    -max.log2()
}

/// `H̃∞(X|Y) = −log₂ Σ_y max_x P(x, y)` from an exact joint distribution
/// given as counts (normalized internally).
pub fn average_min_entropy<Y: std::hash::Hash + Eq>(
    joint_counts: &HashMap<Y, HashMap<u64, u64>>,
    total: u64,
) -> f64 {
    assert!(total > 0);
    let sum_max: u64 = joint_counts
        .values()
        .map(|per_x| per_x.values().copied().max().unwrap_or(0))
        .sum();
    -((sum_max as f64 / total as f64).log2())
}

/// A leakage function for the enumeration: maps `(σ⃗, m⃗, coins)` (as dlog
/// indices) to at most `2^bits` values.
pub type IndexLeakage<'a> = dyn Fn(&[u64], &[u64], &[u64]) -> u64 + 'a;

/// Exhaustive HPSKE entropy experiment over a mini group.
#[derive(Debug, Clone, Copy)]
pub struct HpskeEntropy<M: MiniParams> {
    /// HPSKE key length κ.
    pub kappa: usize,
    /// Number of plaintexts ℓ.
    pub ell: usize,
    _marker: core::marker::PhantomData<M>,
}

/// Result of one exact computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyResult {
    /// `H̃∞(m⃗ | c⃗, L)` in bits.
    pub conditional_entropy: f64,
    /// `H∞(m⃗) = ℓ·log₂ r` (uniform prior).
    pub prior_entropy: f64,
    /// Leakage output bits λ used.
    pub leak_bits: u32,
}

impl EntropyResult {
    /// Entropy lost relative to the prior.
    pub fn loss(&self) -> f64 {
        self.prior_entropy - self.conditional_entropy
    }
}

impl<M: MiniParams> HpskeEntropy<M> {
    /// Configure an experiment. Enumeration size is `r^(κ + ℓ + ℓκ)` —
    /// keep it small.
    ///
    /// # Panics
    ///
    /// Panics if the enumeration would exceed ~2^27 states.
    pub fn new(kappa: usize, ell: usize) -> Self {
        let dims = (kappa + ell + ell * kappa) as u32;
        let states = (M::R as f64).powi(dims as i32);
        assert!(
            states <= (1u64 << 27) as f64,
            "enumeration too large: r^{dims} = {states:.3e}"
        );
        Self {
            kappa,
            ell,
            _marker: core::marker::PhantomData,
        }
    }

    /// Compute `H̃∞(m⃗ | c⃗, L)` exactly for leakage `leak` with declared
    /// output size `leak_bits` (the function's output is reduced mod
    /// `2^leak_bits`).
    pub fn exact(&self, leak_bits: u32, leak: &IndexLeakage<'_>) -> EntropyResult {
        let r = M::R;
        let g = ModGroup::<M>::generator();
        // precompute powers g^0..g^{r-1}
        let mut pow = Vec::with_capacity(r as usize);
        let mut acc = ModGroup::<M>::identity();
        for _ in 0..r {
            pow.push(acc);
            acc = acc.raw_op(&g);
        }
        let idx = |e: u64| pow[(e % r) as usize];

        let kappa = self.kappa;
        let ell = self.ell;
        let dims = kappa + ell + ell * kappa;
        let total = (r as u128).pow(dims as u32) as u64;
        let mask = if leak_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << leak_bits) - 1
        };

        // mixed-radix enumeration over (σ | m | coins)
        let mut state = vec![0u64; dims];
        let mut joint: HashMap<Vec<u64>, HashMap<u64, u64>> = HashMap::new();
        loop {
            let (sigma, rest) = state.split_at(kappa);
            let (m, coins) = rest.split_at(ell);

            // ciphertexts: for each i, (b_i1..b_iκ, g^{m_i}·∏ b_ij^{σ_j});
            // everything in exponent space: c0_i = m_i + Σ_j coins_ij·σ_j
            // — but the *adversary view* is group elements, which for a
            // cyclic group is a bijection of the exponents, so we key on
            // exponents directly (same σ gives same mask only through
            // coins, which are part of the view).
            let mut view: Vec<u64> = Vec::with_capacity(ell * (kappa + 1) + 1);
            for i in 0..ell {
                let ci = &coins[i * kappa..(i + 1) * kappa];
                let mut mask_exp = 0u64;
                for (j, &b) in ci.iter().enumerate() {
                    mask_exp = (mask_exp + b * sigma[j]) % r;
                }
                view.extend_from_slice(ci);
                view.push((m[i] + mask_exp) % r);
            }
            let leaked = leak(sigma, m, coins) & mask;
            view.push(leaked);

            // X = the plaintext vector index
            let mut x = 0u64;
            for &mi in m {
                x = x * r + mi;
            }
            *joint.entry(view).or_default().entry(x).or_insert(0) += 1;

            // increment mixed-radix counter
            let mut d = 0;
            loop {
                if d == dims {
                    let prior = ell as f64 * (r as f64).log2();
                    let h = average_min_entropy(&joint, total);
                    let _ = idx; // (idx retained for clarity; see note above)
                    return EntropyResult {
                        conditional_entropy: h,
                        prior_entropy: prior,
                        leak_bits,
                    };
                }
                state[d] += 1;
                if state[d] < r {
                    break;
                }
                state[d] = 0;
                d += 1;
            }
        }
    }
}

/// Convenience: leakage = the low `bits` of `σ_1` (key-prefix leakage).
pub fn leak_sigma_prefix() -> impl Fn(&[u64], &[u64], &[u64]) -> u64 {
    |sigma, _m, _coins| sigma.first().copied().unwrap_or(0)
}

/// Convenience: leakage = low bits of `Σ σ_j + Σ m_i + Σ coins` (a
/// correlated everything-leak).
pub fn leak_mixed() -> impl Fn(&[u64], &[u64], &[u64]) -> u64 {
    |sigma, m, coins| {
        let s: u64 = sigma.iter().sum::<u64>()
            + m.iter().sum::<u64>()
            + coins.iter().sum::<u64>();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::modgroup::Mini17;

    #[test]
    fn min_entropy_uniform() {
        let p = vec![0.25; 4];
        assert!((min_entropy(&p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_leakage_matches_analytic_formula() {
        // κ=1, ℓ=1 over r=17: given (b, c0), if b ≠ 1 the plaintext is
        // uniform over r values; if b = 1 it is determined.
        // E[max] = (1/r)·1 + ((r−1)/r)·(1/r)  ⇒ H̃ = −log₂ E
        let exp = HpskeEntropy::<Mini17>::new(1, 1);
        let res = exp.exact(0, &|_, _, _| 0);
        let r = 17f64;
        let analytic = -((1.0 / r) + ((r - 1.0) / r) * (1.0 / r)).log2();
        assert!(
            (res.conditional_entropy - analytic).abs() < 1e-9,
            "got {} want {analytic}",
            res.conditional_entropy
        );
        assert!((res.prior_entropy - r.log2()).abs() < 1e-12);
    }

    #[test]
    fn leakage_chain_rule_floor() {
        // H̃(m | c, L) ≥ H̃(m | c) − λ for λ-bit leakage
        let exp = HpskeEntropy::<Mini17>::new(1, 1);
        let base = exp.exact(0, &|_, _, _| 0).conditional_entropy;
        let leak = leak_sigma_prefix();
        for bits in [1u32, 2, 3] {
            let res = exp.exact(bits, &leak);
            assert!(
                res.conditional_entropy >= base - bits as f64 - 1e-9,
                "bits={bits}: {} < {} - {bits}",
                res.conditional_entropy,
                base
            );
            assert!(res.conditional_entropy <= base + 1e-9);
        }
    }

    #[test]
    fn leakage_on_key_degrades_gracefully() {
        let exp = HpskeEntropy::<Mini17>::new(1, 1);
        let leak = leak_sigma_prefix();
        let h1 = exp.exact(1, &leak).conditional_entropy;
        let h3 = exp.exact(3, &leak).conditional_entropy;
        assert!(h3 <= h1 + 1e-9, "more leakage cannot increase entropy");
    }

    #[test]
    fn two_plaintexts_roughly_double_prior() {
        let exp = HpskeEntropy::<Mini17>::new(1, 2);
        let res = exp.exact(0, &|_, _, _| 0);
        assert!((res.prior_entropy - 2.0 * 17f64.log2()).abs() < 1e-12);
        // with a single shared σ, conditioning can pin at most ~log r bits
        assert!(res.conditional_entropy > res.prior_entropy - 17f64.log2() - 1.0);
    }

    #[test]
    #[should_panic(expected = "enumeration too large")]
    fn oversized_enumeration_rejected() {
        let _ = HpskeEntropy::<dlr_curve::modgroup::Mini1009>::new(3, 3);
    }
}
