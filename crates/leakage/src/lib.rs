//! # dlr-leakage — the continual-memory-leakage model, executable
//!
//! Definition 3.2 of *Akavia–Goldwasser–Hazay (PODC'12)* as a running
//! harness against the real implementation:
//!
//! * [`leakfn`] — length-shrinking leakage functions over device
//!   secret-memory snapshots (+ `pub^t`);
//! * [`budget`] — the exact `L^t + |ℓ^t| + |ℓ^{t,Ref}| ≤ b_i` accounting;
//! * [`game`] — the CPA-CML game driver (keygen → leak-decrypt-refresh
//!   periods → challenge);
//! * [`adversaries`] — bit-probe / Hamming / adaptive-digest / full-share
//!   exfiltration strategies (pinned at advantage ≈ 0 against DLR;
//!   devastating against the `dlr-baselines` single-device scheme);
//! * [`entropy`] — exact average-min-entropy computation on mini groups,
//!   validating HPSKE's Definition 5.1(2) margin numerically;
//! * [`bounds`] — Theorem 4.1 instantiated on the implemented memory
//!   layouts, plus the §1.2.1 prior-work comparison constants.

pub mod adversaries;
pub mod bits;
pub mod bounds;
pub mod budget;
pub mod cca2_game;
pub mod entropy;
pub mod game;
pub mod leakfn;

pub use bits::Bits;
pub use budget::{BudgetExceeded, LeakageBudget};
pub use game::{Adversary, GameConfig, GameOutcome};
pub use leakfn::{LeakInput, LeakageFn};
