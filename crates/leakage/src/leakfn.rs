//! Leakage functions and their length-shrinking contract.
//!
//! Per §3.2, the adversary submits polynomial-time computable functions
//! whose input is the device's secret memory (share, secret randomness,
//! intermediate computation) *plus* the current public information
//! `pub^t`; the only restriction is that the **output length is bounded**.
//! [`LeakageFn`] carries the declared output bound; the challenger
//! truncates any excess (equivalently, rejects — we truncate so adversary
//! bugs do not panic the game) and charges the declared bound against the
//! budget.

use crate::bits::Bits;
use dlr_protocol::SecretView;

/// Input handed to a leakage function.
#[derive(Debug, Clone)]
pub struct LeakInput<'a> {
    /// Snapshot of the device's secret memory.
    pub secret: &'a SecretView,
    /// Public information `pub^t`: transcript, protocol inputs/outputs,
    /// public memory.
    pub public: &'a [u8],
}

/// A length-shrinking leakage function.
pub struct LeakageFn {
    name: String,
    output_bits: usize,
    #[allow(clippy::type_complexity)]
    eval: Box<dyn FnMut(&LeakInput<'_>) -> Bits + Send>,
}

impl core::fmt::Debug for LeakageFn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LeakageFn({} -> {} bits)", self.name, self.output_bits)
    }
}

impl LeakageFn {
    /// Construct a leakage function with a declared output bound.
    pub fn new(
        name: impl Into<String>,
        output_bits: usize,
        eval: impl FnMut(&LeakInput<'_>) -> Bits + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            output_bits,
            eval: Box::new(eval),
        }
    }

    /// The zero-output function (adversary declines to leak this slot).
    pub fn null() -> Self {
        Self::new("null", 0, |_| Bits::new())
    }

    /// Declared output bound in bits.
    pub fn output_bits(&self) -> usize {
        self.output_bits
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluate, truncating to the declared bound.
    pub fn eval(&mut self, input: &LeakInput<'_>) -> Bits {
        let raw = (self.eval)(input);
        if raw.len() <= self.output_bits {
            raw
        } else {
            raw.iter().take(self.output_bits).collect()
        }
    }
}

/// Leak the first `bits` bits of the flattened secret memory.
pub fn prefix_bits(bits: usize) -> LeakageFn {
    LeakageFn::new(format!("prefix[{bits}]"), bits, move |input| {
        (0..bits)
            .map_while(|i| input.secret.bit(i))
            .collect()
    })
}

/// Leak `bits` bits starting at bit offset `start` (wrapping probes used by
/// the block-dump adversary).
pub fn window_bits(start: usize, bits: usize) -> LeakageFn {
    LeakageFn::new(
        format!("window[{start}..+{bits}]"),
        bits,
        move |input| {
            let total = input.secret.total_bits();
            if total == 0 {
                return Bits::new();
            }
            (0..bits)
                .map(|i| input.secret.bit((start + i) % total).expect("wrapped"))
                .collect()
        },
    )
}

/// Leak the byte-wise Hamming weight of the secret memory, `weight_bits`
/// bits per byte-group (a classic power-analysis-style signal).
pub fn hamming_weights(groups: usize) -> LeakageFn {
    // each group weight is at most 8·group_size; we emit 8 bits per group
    LeakageFn::new(format!("hamming[{groups}]"), groups * 8, move |input| {
        let flat = input.secret.flatten();
        if flat.is_empty() || groups == 0 {
            return Bits::new();
        }
        let group_size = flat.len().div_ceil(groups);
        let mut out = Bits::new();
        for chunk in flat.chunks(group_size).take(groups) {
            let w: u32 = chunk.iter().map(|b| b.count_ones()).sum();
            for i in (0..8).rev() {
                out.push((w >> i) & 1 == 1);
            }
        }
        out
    })
}

/// Leak a SHA-256-based `bits`-bit digest of (secret ‖ public) — a
/// "worst-case looking" correlated leakage used in stress tests.
pub fn digest_bits(bits: usize) -> LeakageFn {
    LeakageFn::new(format!("digest[{bits}]"), bits, move |input| {
        let mut h = dlr_hash::sha256::Sha256::new();
        h.update(&input.secret.flatten());
        h.update(input.public);
        let d = h.finalize();
        Bits::from_bytes(&d).iter().take(bits).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_protocol::SecretMemory;

    fn view() -> dlr_protocol::SecretView {
        let mut m = SecretMemory::new();
        m.store("k", vec![0b1100_0000, 0xff]);
        m.view()
    }

    #[test]
    fn prefix_reads_msb_first() {
        let v = view();
        let mut f = prefix_bits(3);
        let out = f.eval(&LeakInput {
            secret: &v,
            public: &[],
        });
        assert_eq!(out, Bits::from_bools(&[true, true, false]));
        assert_eq!(f.output_bits(), 3);
    }

    #[test]
    fn window_wraps() {
        let v = view();
        let mut f = window_bits(15, 2);
        let out = f.eval(&LeakInput {
            secret: &v,
            public: &[],
        });
        // bit 15 = last bit of 0xff = 1; bit 16 wraps to bit 0 = 1
        assert_eq!(out, Bits::from_bools(&[true, true]));
    }

    #[test]
    fn truncation_enforced() {
        let v = view();
        let mut f = LeakageFn::new("verbose", 2, |input| {
            Bits::from_bytes(&input.secret.flatten())
        });
        let out = f.eval(&LeakInput {
            secret: &v,
            public: &[],
        });
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn hamming_counts() {
        let v = view();
        let mut f = hamming_weights(1);
        let out = f.eval(&LeakInput {
            secret: &v,
            public: &[],
        });
        // weight of [0b11000000, 0xff] = 2 + 8 = 10
        assert_eq!(out.as_bytes()[0], 10);
    }

    #[test]
    fn null_leaks_nothing() {
        let v = view();
        let mut f = LeakageFn::null();
        assert_eq!(
            f.eval(&LeakInput {
                secret: &v,
                public: &[]
            })
            .len(),
            0
        );
    }

    #[test]
    fn digest_depends_on_public() {
        let v = view();
        let mut f1 = digest_bits(32);
        let out1 = f1.eval(&LeakInput {
            secret: &v,
            public: b"a",
        });
        let out2 = f1.eval(&LeakInput {
            secret: &v,
            public: b"b",
        });
        assert_ne!(out1, out2);
    }
}
