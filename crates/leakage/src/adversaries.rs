//! A library of concrete leakage adversaries for the experiments.
//!
//! None of these can beat DLR (that is the point — experiment F3 shows
//! their win rates pinned at ~1/2 even at the paper's maximal leakage
//! rates), but the same strategies *demolish* the single-device baseline
//! in `dlr-baselines`, where the whole key sits in one leaky memory with
//! no refresh.

use crate::bits::Bits;
use crate::game::{Adversary, PeriodLeakage, PeriodLeakageOutput};
use crate::leakfn::{digest_bits, hamming_weights, prefix_bits, window_bits, LeakageFn};
use dlr_core::dlr::Ciphertext;
use dlr_curve::{Group, Pairing};
use rand::RngCore;

/// Baseline: no leakage, random guess. Win rate must be ≈ 1/2.
#[derive(Debug, Default)]
pub struct RandomGuesser {
    periods: u64,
    coin: bool,
}

impl RandomGuesser {
    /// Run `periods` empty leakage periods before the challenge.
    pub fn new(periods: u64) -> Self {
        Self {
            periods,
            coin: false,
        }
    }
}

impl<E: Pairing> Adversary<E> for RandomGuesser {
    fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
        (t < self.periods).then(PeriodLeakage::none)
    }
    fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (E::Gt, E::Gt) {
        self.coin = rng.next_u32() & 1 == 1;
        (E::Gt::random(rng), E::Gt::random(rng))
    }
    fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
        self.coin
    }
}

/// The bit-probe ("cold boot") adversary: each period it dumps as many
/// raw secret-memory bits as the budget allows, walking its probe window
/// across the memory over periods, trying to assemble a full key image.
///
/// Against DLR the assembled bits straddle refresh boundaries and are
/// mutually inconsistent, so the challenge guess degenerates to a coin
/// flip. Against the no-refresh single-device baseline the same strategy
/// recovers the whole key.
pub struct BitProbe {
    /// Bits to take from `P1` per period.
    pub p1_bits_per_period: usize,
    /// Bits to take from `P2` per period.
    pub p2_bits_per_period: usize,
    /// Leakage periods to run.
    pub periods: u64,
    offset1: usize,
    offset2: usize,
    /// Collected (offset, bits) fragments from each device.
    pub collected1: Vec<(usize, Bits)>,
    /// Collected fragments from `P2`.
    pub collected2: Vec<(usize, Bits)>,
    coin: bool,
}

impl BitProbe {
    /// New probe with per-period budgets.
    pub fn new(p1_bits_per_period: usize, p2_bits_per_period: usize, periods: u64) -> Self {
        Self {
            p1_bits_per_period,
            p2_bits_per_period,
            periods,
            offset1: 0,
            offset2: 0,
            collected1: Vec::new(),
            collected2: Vec::new(),
            coin: false,
        }
    }

    /// Total bits gathered so far.
    pub fn total_collected(&self) -> usize {
        self.collected1.iter().map(|(_, b)| b.len()).sum::<usize>()
            + self.collected2.iter().map(|(_, b)| b.len()).sum::<usize>()
    }
}

impl<E: Pairing> Adversary<E> for BitProbe {
    fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
        if t >= self.periods {
            return None;
        }
        let h1 = if self.p1_bits_per_period > 0 {
            window_bits(self.offset1, self.p1_bits_per_period)
        } else {
            LeakageFn::null()
        };
        let h2 = if self.p2_bits_per_period > 0 {
            window_bits(self.offset2, self.p2_bits_per_period)
        } else {
            LeakageFn::null()
        };
        Some(PeriodLeakage {
            h1,
            h1_ref: LeakageFn::null(),
            h2,
            h2_ref: LeakageFn::null(),
        })
    }

    fn on_leakage(&mut self, _t: u64, out: PeriodLeakageOutput) {
        if !out.l1.is_empty() {
            self.collected1.push((self.offset1, out.l1.clone()));
            self.offset1 += out.l1.len();
        }
        if !out.l2.is_empty() {
            self.collected2.push((self.offset2, out.l2.clone()));
            self.offset2 += out.l2.len();
        }
    }

    fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (E::Gt, E::Gt) {
        self.coin = rng.next_u32() & 1 == 1;
        (E::Gt::random(rng), E::Gt::random(rng))
    }

    fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
        // The fragments never cohere into a usable key against DLR: every
        // refresh invalidates previously-probed offsets. Best effort is a
        // coin flip.
        self.coin
    }
}

/// Hamming-weight side-channel adversary (power-analysis style): leaks
/// byte-group weights of both devices every period.
pub struct HammingProbe {
    /// Number of byte groups (8 bits of weight each) per device per period.
    pub groups: usize,
    /// Leakage periods to run.
    pub periods: u64,
    /// Collected weights.
    pub traces: Vec<PeriodLeakageOutput>,
    coin: bool,
}

impl HammingProbe {
    /// New probe.
    pub fn new(groups: usize, periods: u64) -> Self {
        Self {
            groups,
            periods,
            traces: Vec::new(),
            coin: false,
        }
    }
}

impl<E: Pairing> Adversary<E> for HammingProbe {
    fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
        (t < self.periods).then(|| PeriodLeakage {
            h1: hamming_weights(self.groups),
            h1_ref: LeakageFn::null(),
            h2: hamming_weights(self.groups),
            h2_ref: LeakageFn::null(),
        })
    }
    fn on_leakage(&mut self, _t: u64, out: PeriodLeakageOutput) {
        self.traces.push(out);
    }
    fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (E::Gt, E::Gt) {
        self.coin = rng.next_u32() & 1 == 1;
        (E::Gt::random(rng), E::Gt::random(rng))
    }
    fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
        self.coin
    }
}

/// Adaptive correlated-leakage adversary: leaks transcript-dependent
/// digests of the secret memory during *both* normal and refresh phases —
/// the strongest-shaped leakage our function library expresses.
pub struct AdaptiveDigest {
    /// Digest bits per slot per period.
    pub bits: usize,
    /// Leakage periods to run.
    pub periods: u64,
    coin: bool,
}

impl AdaptiveDigest {
    /// New adversary leaking `bits` per slot per period.
    pub fn new(bits: usize, periods: u64) -> Self {
        Self {
            bits,
            periods,
            coin: false,
        }
    }
}

impl<E: Pairing> Adversary<E> for AdaptiveDigest {
    fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
        (t < self.periods).then(|| PeriodLeakage {
            h1: digest_bits(self.bits),
            h1_ref: digest_bits(self.bits),
            h2: digest_bits(self.bits),
            h2_ref: digest_bits(self.bits),
        })
    }
    fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (E::Gt, E::Gt) {
        self.coin = rng.next_u32() & 1 == 1;
        (E::Gt::random(rng), E::Gt::random(rng))
    }
    fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
        self.coin
    }
}

/// Refresh-phase probe: leaks **only during refresh** (`h^{t,Ref}`), when
/// both the outgoing and incoming shares are resident — the phase where
/// the paper's tolerated fraction halves to `1/2 − o(1)`. Exercises the
/// carried-budget accounting (`L^{t+1} = |ℓ^{t,Ref}|`).
pub struct RefreshProbe {
    /// Bits per refresh from each device.
    pub bits: usize,
    /// Leakage periods to run.
    pub periods: u64,
    /// Refresh-view captures.
    pub captures: Vec<(Bits, Bits)>,
    coin: bool,
}

impl RefreshProbe {
    /// New probe leaking `bits` per refresh per device.
    pub fn new(bits: usize, periods: u64) -> Self {
        Self {
            bits,
            periods,
            captures: Vec::new(),
            coin: false,
        }
    }
}

impl<E: Pairing> Adversary<E> for RefreshProbe {
    fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
        (t < self.periods).then(|| PeriodLeakage {
            h1: LeakageFn::null(),
            h1_ref: prefix_bits(self.bits),
            h2: LeakageFn::null(),
            h2_ref: prefix_bits(self.bits),
        })
    }
    fn on_leakage(&mut self, _t: u64, out: PeriodLeakageOutput) {
        self.captures.push((out.l1_ref, out.l2_ref));
    }
    fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (E::Gt, E::Gt) {
        self.coin = rng.next_u32() & 1 == 1;
        (E::Gt::random(rng), E::Gt::random(rng))
    }
    fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
        self.coin
    }
}

/// Full-share exfiltration from `P2` (rate ρ₂ = 1): leaks **all** of
/// `P2`'s secret memory every period, plus budgeted bits from `P1` —
/// the extreme point of the paper's leakage-rate claim.
pub struct FullShare2Exfiltrator {
    /// P2 share size in bits (leaked in full).
    pub share2_bits: usize,
    /// Bits taken from `P1` per period.
    pub p1_bits: usize,
    /// Leakage periods to run.
    pub periods: u64,
    /// Full captures of `P2`'s share, one per period.
    pub captures: Vec<Bits>,
    coin: bool,
}

impl FullShare2Exfiltrator {
    /// New exfiltrator.
    pub fn new(share2_bits: usize, p1_bits: usize, periods: u64) -> Self {
        Self {
            share2_bits,
            p1_bits,
            periods,
            captures: Vec::new(),
            coin: false,
        }
    }
}

impl<E: Pairing> Adversary<E> for FullShare2Exfiltrator {
    fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
        if t >= self.periods {
            return None;
        }
        Some(PeriodLeakage {
            h1: prefix_bits(self.p1_bits),
            h1_ref: LeakageFn::null(),
            h2: prefix_bits(self.share2_bits),
            h2_ref: LeakageFn::null(),
        })
    }
    fn on_leakage(&mut self, _t: u64, out: PeriodLeakageOutput) {
        self.captures.push(out.l2);
    }
    fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (E::Gt, E::Gt) {
        self.coin = rng.next_u32() & 1 == 1;
        (E::Gt::random(rng), E::Gt::random(rng))
    }
    fn guess(&mut self, _c: &Ciphertext<E>) -> bool {
        // Knows every s⃗^t in full — and still cannot decrypt: the a_i and
        // Φ it would need are HPSKE-masked on P1 / already refreshed.
        self.coin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{estimate_win_rate, GameConfig};
    use dlr_core::params::SchemeParams;
    use dlr_core::party::P1Layout;
    use dlr_curve::Toy;
    use dlr_math::FieldElement;
    use rand::SeedableRng;

    type E = Toy;

    fn cfg(layout: P1Layout) -> GameConfig {
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        GameConfig::theorem_bounds::<E>(params, layout)
    }

    #[test]
    fn random_guesser_near_half() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(301);
        let stats = estimate_win_rate::<E, _>(
            &cfg(P1Layout::Streaming),
            || Box::new(RandomGuesser::new(2)),
            60,
            &mut rng,
        );
        assert_eq!(stats.aborts, 0);
        assert!((stats.win_rate() - 0.5).abs() < 0.2, "{stats:?}");
    }

    #[test]
    fn bit_probe_within_budget_no_advantage() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(302);
        let c = cfg(P1Layout::Streaming);
        // stay within budget: b1=λ=64 bits/period from P1, 256 from P2
        let stats = estimate_win_rate::<E, _>(
            &c,
            || Box::new(BitProbe::new(32, 256, 4)),
            40,
            &mut rng,
        );
        assert_eq!(stats.aborts, 0, "{stats:?}");
        assert!((stats.win_rate() - 0.5).abs() < 0.25, "{stats:?}");
    }

    #[test]
    fn full_share2_exfiltration_is_admissible_and_useless() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(303);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let c = cfg(P1Layout::Streaming);
        let share2_bits =
            params.ell * <<E as Pairing>::Scalar as FieldElement>::byte_len() * 8;
        let stats = estimate_win_rate::<E, _>(
            &c,
            move || Box::new(FullShare2Exfiltrator::new(share2_bits, 16, 3)),
            40,
            &mut rng,
        );
        // leaking 100% of P2's share every period is within b2 = m2
        assert_eq!(stats.aborts, 0, "{stats:?}");
        assert!((stats.win_rate() - 0.5).abs() < 0.25, "{stats:?}");
    }

    #[test]
    fn probe_collects_expected_volume() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(304);
        let c = cfg(P1Layout::Streaming);
        let mut adv = BitProbe::new(16, 64, 3);
        let mut dist = crate::game::random_message_dist::<E>();
        let _ = crate::game::run_cpa_cml(&c, &mut adv, &mut dist, &mut rng);
        assert_eq!(adv.total_collected(), 3 * (16 + 64));
    }
}

#[cfg(test)]
mod refresh_probe_tests {
    use super::*;
    use crate::game::{estimate_win_rate, run_cpa_cml, GameConfig, GameOutcome};
    use dlr_core::params::SchemeParams;
    use dlr_core::party::P1Layout;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type E = Toy;

    #[test]
    fn refresh_probe_within_half_budget_admissible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(310);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let cfg = GameConfig::theorem_bounds::<E>(params, P1Layout::Streaming);
        // refresh leakage is charged against both adjacent periods, so the
        // sustainable steady-state rate is b/2 per refresh
        let per_refresh = (cfg.b1 / 2) as usize;
        let stats = estimate_win_rate::<E, _>(
            &cfg,
            move || Box::new(RefreshProbe::new(per_refresh, 4)),
            30,
            &mut rng,
        );
        assert_eq!(stats.aborts, 0, "{stats:?}");
        assert!((stats.win_rate() - 0.5).abs() < 0.3, "{stats:?}");
    }

    #[test]
    fn refresh_probe_above_half_budget_aborts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(311);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let cfg = GameConfig::theorem_bounds::<E>(params, P1Layout::Streaming);
        // b/2 + 1 per refresh: period 2 carries b/2+1 and adds b/2+1 > b
        let mut adv = RefreshProbe::new((cfg.b1 / 2) as usize + 1, 4);
        let mut dist = crate::game::random_message_dist::<E>();
        let out = run_cpa_cml(&cfg, &mut adv, &mut dist, &mut rng);
        assert!(matches!(out, GameOutcome::Aborted(_)), "{out:?}");
    }

    #[test]
    fn refresh_view_contains_both_shares_worth_of_bits() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(312);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let cfg = GameConfig::theorem_bounds::<E>(params, P1Layout::Streaming);
        let mut adv = RefreshProbe::new(16, 1);
        let mut dist = crate::game::random_message_dist::<E>();
        let _ = run_cpa_cml(&cfg, &mut adv, &mut dist, &mut rng);
        assert_eq!(adv.captures.len(), 1);
        assert_eq!(adv.captures[0].0.len(), 16);
        assert_eq!(adv.captures[0].1.len(), 16);
    }
}
