//! Leakage-budget accounting, exactly as Definition 3.2 specifies.
//!
//! For device `P_i` with bound `b_i`, the bits leaked **while a given share
//! is in memory** must not exceed `b_i`:
//!
//! ```text
//! L_i^t + |ℓ_i^t| + |ℓ_i^{t,Ref}| ≤ b_i     with     L_i^{t+1} = |ℓ_i^{t,Ref}|
//! ```
//!
//! i.e. refresh-phase leakage is charged against *both* the outgoing and
//! the incoming share (both sit in memory during refresh).

/// Budget tracker for one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakageBudget {
    bound: u64,
    carried: u64,
    total_leaked: u64,
    periods: u64,
}

/// Budget violation: the requested leakage would exceed `b_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The bound `b_i`.
    pub bound: u64,
    /// What the period would have charged (`L^t + |ℓ^t| + |ℓ^{t,Ref}|`).
    pub attempted: u64,
}

impl core::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "leakage budget exceeded: {} bits attempted against bound {}",
            self.attempted, self.bound
        )
    }
}

impl std::error::Error for BudgetExceeded {}

impl LeakageBudget {
    /// New tracker with per-share bound `b_i` (bits). The key-generation
    /// leakage `|ℓ^Gen|` is carried into period 0 (Def. 3.2 sets
    /// `L^0 = |ℓ^Gen|`).
    pub fn new(bound: u64, keygen_leak: u64) -> Self {
        Self {
            bound,
            carried: keygen_leak,
            total_leaked: keygen_leak,
            periods: 0,
        }
    }

    /// The per-share bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Bits already charged against the current share.
    pub fn carried(&self) -> u64 {
        self.carried
    }

    /// Total bits leaked over the lifetime (unbounded in the continual
    /// model — this is the number experiment F4 watches grow).
    pub fn total_leaked(&self) -> u64 {
        self.total_leaked
    }

    /// Completed periods.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// Charge one period's leakage (`normal` = `|ℓ^t|`, `refresh` =
    /// `|ℓ^{t,Ref}|`). On success the refresh amount carries into the next
    /// period.
    pub fn charge_period(&mut self, normal: u64, refresh: u64) -> Result<(), BudgetExceeded> {
        let attempted = self.carried + normal + refresh;
        if attempted > self.bound {
            return Err(BudgetExceeded {
                bound: self.bound,
                attempted,
            });
        }
        self.total_leaked += normal + refresh;
        self.carried = refresh;
        self.periods += 1;
        Ok(())
    }

    /// Largest `normal` leakage admissible this period given a planned
    /// `refresh` amount.
    pub fn headroom(&self, refresh: u64) -> u64 {
        self.bound.saturating_sub(self.carried + refresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_period_bound_enforced() {
        let mut b = LeakageBudget::new(100, 0);
        assert!(b.charge_period(60, 40).is_ok());
        // carried = 40 now; 60 + 40 + carried = 140 > 100
        assert_eq!(
            b.charge_period(60, 40),
            Err(BudgetExceeded {
                bound: 100,
                attempted: 140
            })
        );
        // but 30 + 30 + 40 = 100 is fine
        assert!(b.charge_period(30, 30).is_ok());
    }

    #[test]
    fn total_grows_without_bound() {
        // steady state: carried 3 + normal 2 + refresh 3 = 8 ≤ 10 forever,
        // yet the lifetime total is unbounded — the continual property.
        let mut b = LeakageBudget::new(10, 0);
        for _ in 0..1000 {
            b.charge_period(2, 3).unwrap();
        }
        assert_eq!(b.total_leaked(), 5_000);
        assert_eq!(b.periods(), 1000);
    }

    #[test]
    fn keygen_leak_charges_period_zero() {
        let mut b = LeakageBudget::new(10, 8);
        assert!(b.charge_period(3, 0).is_err());
        assert!(b.charge_period(2, 0).is_ok());
        // carried resets to 0 after a refresh with no leakage
        assert!(b.charge_period(10, 0).is_ok());
    }

    #[test]
    fn headroom_reports_remaining() {
        let mut b = LeakageBudget::new(100, 0);
        b.charge_period(0, 30).unwrap();
        assert_eq!(b.headroom(20), 50);
        assert_eq!(b.headroom(200), 0);
    }
}
