//! A compact bit string with length in bits (leakage-function outputs are
//! measured in *bits*, and the length-shrinking budgets are bit-exact).

/// A bit string (MSB-first within each byte).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bits {
    bytes: Vec<u8>,
    len: usize,
}

impl Bits {
    /// Empty bit string.
    pub fn new() -> Self {
        Self::default()
    }

    /// From a boolean slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut out = Self::new();
        for &b in bools {
            out.push(b);
        }
        out
    }

    /// From raw bytes (length = 8 × bytes).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Self {
            len: bytes.len() * 8,
            bytes: bytes.to_vec(),
        }
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        if byte_idx == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 1 << (7 - self.len % 8);
        }
        self.len += 1;
    }

    /// Append all bits of another string.
    pub fn extend(&mut self, other: &Bits) {
        for i in 0..other.len {
            self.push(other.get(i).expect("in range"));
        }
    }

    /// Bit at position `i`.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        Some((self.bytes[i / 8] >> (7 - i % 8)) & 1 == 1)
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i).expect("in range"))
    }

    /// The underlying bytes (final partial byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut out = Self::new();
        for b in iter {
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let bits = Bits::from_bools(&pattern);
        assert_eq!(bits.len(), 9);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bits.get(i), Some(b));
        }
        assert_eq!(bits.get(9), None);
    }

    #[test]
    fn from_bytes_and_iter() {
        let bits = Bits::from_bytes(&[0b1010_0000]);
        assert_eq!(bits.len(), 8);
        let v: Vec<bool> = bits.iter().collect();
        assert_eq!(&v[..4], &[true, false, true, false]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Bits::from_bools(&[true]);
        let b = Bits::from_bools(&[false, true]);
        a.extend(&b);
        assert_eq!(a, Bits::from_bools(&[true, false, true]));
    }

    #[test]
    fn collect_from_iterator() {
        let bits: Bits = (0..5).map(|i| i % 2 == 0).collect();
        assert_eq!(bits.len(), 5);
        assert_eq!(bits.get(0), Some(true));
        assert_eq!(bits.get(1), Some(false));
    }
}
