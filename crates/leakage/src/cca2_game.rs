//! The CCA2-CML game (§3.3): the CPA-CML game plus a decryption oracle.
//!
//! The adversary leaks from the master-share devices for as many periods
//! as it likes (with refreshes in between), may query a decryption oracle
//! throughout — except on the challenge ciphertext — and leakage stops at
//! the challenge (as the paper specifies). Oracle queries are answered by
//! the *real* distributed CCA2 decryption: identity-key generation plus
//! identity decryption protocols between the two devices.

use crate::budget::{BudgetExceeded, LeakageBudget};
use crate::game::{PeriodLeakage, PeriodLeakageOutput, PeriodPublic};
use crate::leakfn::LeakInput;
use dlr_core::cca2::{self, Cca2Ciphertext};
use dlr_core::dibe::{self, DibeParty1, DibeParty2};
use dlr_core::ibe::IbeParams;
use dlr_core::params::SchemeParams;
use dlr_core::CoreError;
use dlr_curve::Pairing;
#[cfg(test)]
use dlr_curve::Group;
use dlr_hash::OneTimeSignature;
use rand::RngCore;

/// When an oracle query batch is issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OraclePhase {
    /// Before the challenge ciphertext is produced.
    PreChallenge,
    /// After the challenge (the classic CCA2 power).
    PostChallenge,
}

/// An adversary in the CCA2-CML game.
pub trait Cca2Adversary<E: Pairing, S: OneTimeSignature> {
    /// Receive the public parameters.
    fn on_params(&mut self, _params: &IbeParams<E>) {}

    /// Choose leakage for period `t` (`None` ends the leakage phase).
    fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage>;

    /// Receive the leakage of period `t`.
    fn on_leakage(&mut self, _t: u64, _out: PeriodLeakageOutput) {}

    /// Ciphertexts to submit to the decryption oracle in `phase`.
    fn oracle_queries(
        &mut self,
        _phase: OraclePhase,
        _rng: &mut dyn RngCore,
    ) -> Vec<Cca2Ciphertext<E, S>> {
        Vec::new()
    }

    /// Receive oracle answers (`Err` for rejected ciphertexts).
    fn on_oracle_answers(&mut self, _phase: OraclePhase, _answers: Vec<Result<E::Gt, String>>) {}

    /// Submit the challenge messages.
    fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (E::Gt, E::Gt);

    /// Receive the challenge ciphertext (before post-challenge oracle
    /// access — the classic CCA2 ordering).
    fn on_challenge(&mut self, _challenge: &Cca2Ciphertext<E, S>) {}

    /// Guess the challenge bit.
    fn guess(&mut self, challenge: &Cca2Ciphertext<E, S>) -> bool;
}

/// Game configuration.
pub struct Cca2GameConfig {
    /// Scheme parameters.
    pub params: SchemeParams,
    /// Identity-hash bits.
    pub n_id: usize,
    /// Leakage bound for `P1`.
    pub b1: u64,
    /// Leakage bound for `P2`.
    pub b2: u64,
    /// Period cap.
    pub max_periods: u64,
}

/// Outcome of a CCA2-CML game.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cca2Outcome {
    /// Adversary guessed the bit.
    AdversaryWins,
    /// Adversary guessed wrong.
    AdversaryLoses,
    /// Budget violation.
    Aborted(BudgetExceeded),
}

fn serve_oracle<E: Pairing, S: OneTimeSignature, R: RngCore>(
    p1: &mut DibeParty1<E>,
    p2: &mut DibeParty2<E>,
    queries: Vec<Cca2Ciphertext<E, S>>,
    forbidden: Option<&[u8]>,
    rng: &mut R,
) -> Vec<Result<E::Gt, String>> {
    queries
        .into_iter()
        .map(|ct| {
            if let Some(challenge_bytes) = forbidden {
                if ct.to_bytes() == challenge_bytes {
                    return Err("oracle refuses the challenge ciphertext".to_string());
                }
            }
            cca2::decrypt_distributed(p1, p2, &ct, rng).map_err(|e: CoreError| e.to_string())
        })
        .collect()
}

/// Run one CCA2-CML game.
pub fn run_cca2_cml<E: Pairing, S: OneTimeSignature, R: RngCore>(
    cfg: &Cca2GameConfig,
    adversary: &mut dyn Cca2Adversary<E, S>,
    rng: &mut R,
) -> Cca2Outcome {
    let (params, ms1, ms2) = dibe::dibe_keygen::<E, _>(cfg.params, cfg.n_id, rng);
    let mut p1 = DibeParty1::new(params.clone(), ms1);
    let mut p2 = DibeParty2::new(params.clone(), ms2);
    adversary.on_params(&params);

    let mut budget1 = LeakageBudget::new(cfg.b1, 0);
    let mut budget2 = LeakageBudget::new(cfg.b2, 0);

    // Leakage phase (with a live pre-challenge oracle).
    let mut t = 0u64;
    while t < cfg.max_periods {
        let Some(mut leak) = adversary.choose_leakage(t) else {
            break;
        };

        // pre-challenge oracle access interleaves with leakage periods
        let queries = adversary.oracle_queries(OraclePhase::PreChallenge, rng);
        let answers = serve_oracle(&mut p1, &mut p2, queries, None, rng);
        adversary.on_oracle_answers(OraclePhase::PreChallenge, answers);

        let view1 = p1.master.device().secret.view();
        let view2 = p2.master.device().secret.view();

        // master refresh (the DLR refresh protocol), snapshotting the
        // staged state
        let m1 = p1.master.ref_start(rng);
        let mut transcript = m1.to_bytes();
        let m2 = p2.master.ref_respond(&m1, rng).expect("honest protocol");
        transcript.extend_from_slice(&m2.to_bytes());
        p1.master.ref_finish(&m2).expect("honest protocol");
        let view1_ref = p1.master.device().secret.view();
        let view2_ref = p2.master.device().secret.view();
        p1.master.ref_complete().expect("staged");
        p2.master.ref_complete().expect("staged");

        let public = PeriodPublic {
            transcript,
            dec_input: Vec::new(),
            dec_output: Vec::new(),
        };
        let pub_flat = public.flatten();

        if let Err(e) = budget1.charge_period(
            leak.h1.output_bits() as u64,
            leak.h1_ref.output_bits() as u64,
        ) {
            return Cca2Outcome::Aborted(e);
        }
        if let Err(e) = budget2.charge_period(
            leak.h2.output_bits() as u64,
            leak.h2_ref.output_bits() as u64,
        ) {
            return Cca2Outcome::Aborted(e);
        }

        let out = PeriodLeakageOutput {
            l1: leak.h1.eval(&LeakInput {
                secret: &view1,
                public: &pub_flat,
            }),
            l1_ref: leak.h1_ref.eval(&LeakInput {
                secret: &view1_ref,
                public: &pub_flat,
            }),
            l2: leak.h2.eval(&LeakInput {
                secret: &view2,
                public: &pub_flat,
            }),
            l2_ref: leak.h2_ref.eval(&LeakInput {
                secret: &view2_ref,
                public: &pub_flat,
            }),
            public,
        };
        adversary.on_leakage(t, out);
        t += 1;
    }

    // Challenge phase — leakage is over (per the paper), oracle remains.
    let (m0, m1) = adversary.challenge_messages(rng);
    let b = rng.next_u32() & 1 == 1;
    let challenge = cca2::encrypt::<E, S, _>(&params, if b { &m1 } else { &m0 }, rng);
    let challenge_bytes = challenge.to_bytes();
    adversary.on_challenge(&challenge);

    let queries = adversary.oracle_queries(OraclePhase::PostChallenge, rng);
    let answers = serve_oracle(&mut p1, &mut p2, queries, Some(&challenge_bytes), rng);
    adversary.on_oracle_answers(OraclePhase::PostChallenge, answers);

    if adversary.guess(&challenge) == b {
        Cca2Outcome::AdversaryWins
    } else {
        Cca2Outcome::AdversaryLoses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakfn::{prefix_bits, LeakageFn};
    use dlr_curve::Toy;
    use dlr_hash::ots::Winternitz;
    use rand::SeedableRng;

    type E = Toy;
    type S = Winternitz<4>;

    fn cfg() -> Cca2GameConfig {
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        Cca2GameConfig {
            params,
            n_id: 12,
            b1: 64,
            b2: 1 << 20,
            max_periods: 8,
        }
    }

    /// Leaks, queries the oracle honestly, tries to maul the challenge.
    struct MaulingAdversary {
        periods: u64,
        params: Option<IbeParams<E>>,
        challenge_seen: Option<Cca2Ciphertext<E, S>>,
        oracle_rejected_maul: bool,
        coin: bool,
    }

    impl Cca2Adversary<E, S> for MaulingAdversary {
        fn on_params(&mut self, params: &IbeParams<E>) {
            self.params = Some(params.clone());
        }
        fn choose_leakage(&mut self, t: u64) -> Option<PeriodLeakage> {
            (t < self.periods).then(|| PeriodLeakage {
                h1: prefix_bits(16),
                h1_ref: LeakageFn::null(),
                h2: prefix_bits(64),
                h2_ref: LeakageFn::null(),
            })
        }
        fn oracle_queries(
            &mut self,
            phase: OraclePhase,
            rng: &mut dyn RngCore,
        ) -> Vec<Cca2Ciphertext<E, S>> {
            let params = self.params.as_ref().unwrap();
            match phase {
                OraclePhase::PreChallenge => {
                    // an honest query: must decrypt correctly
                    let m = <E as Pairing>::Gt::random(rng);
                    vec![cca2::encrypt::<E, S, _>(params, &m, rng)]
                }
                OraclePhase::PostChallenge => {
                    // try the challenge itself, and a mauled copy
                    let ch = self.challenge_seen.clone();
                    match ch {
                        Some(ch) => {
                            let mut mauled = ch.clone();
                            mauled.inner.big_b =
                                mauled.inner.big_b.op(&<E as Pairing>::Gt::generator());
                            vec![ch, mauled]
                        }
                        None => vec![],
                    }
                }
            }
        }
        fn on_oracle_answers(
            &mut self,
            phase: OraclePhase,
            answers: Vec<Result<<E as Pairing>::Gt, String>>,
        ) {
            match phase {
                OraclePhase::PreChallenge => {
                    assert!(answers.iter().all(Result::is_ok), "honest queries must work");
                }
                OraclePhase::PostChallenge => {
                    // both the replayed challenge and the maul must fail
                    self.oracle_rejected_maul = answers.iter().all(Result::is_err);
                }
            }
        }
        fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (
            <E as Pairing>::Gt,
            <E as Pairing>::Gt,
        ) {
            self.coin = rng.next_u32() & 1 == 1;
            (Group::random(rng), Group::random(rng))
        }
        fn on_challenge(&mut self, challenge: &Cca2Ciphertext<E, S>) {
            self.challenge_seen = Some(challenge.clone());
        }
        fn guess(&mut self, _challenge: &Cca2Ciphertext<E, S>) -> bool {
            self.coin
        }
    }

    #[test]
    fn oracle_works_and_rejects_challenge_derivatives() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(401);
        let mut adv = MaulingAdversary {
            periods: 2,
            params: None,
            challenge_seen: None,
            oracle_rejected_maul: false,
            coin: false,
        };
        let out = run_cca2_cml::<E, S, _>(&cfg(), &mut adv, &mut rng);
        assert!(matches!(
            out,
            Cca2Outcome::AdversaryWins | Cca2Outcome::AdversaryLoses
        ));
        assert!(
            adv.oracle_rejected_maul,
            "oracle must reject the challenge and its maulings"
        );
    }

    #[test]
    fn budget_enforced_in_cca2_game() {
        struct Greedy;
        impl Cca2Adversary<E, S> for Greedy {
            fn choose_leakage(&mut self, _t: u64) -> Option<PeriodLeakage> {
                Some(PeriodLeakage {
                    h1: prefix_bits(1_000_000),
                    h1_ref: LeakageFn::null(),
                    h2: LeakageFn::null(),
                    h2_ref: LeakageFn::null(),
                })
            }
            fn challenge_messages(&mut self, rng: &mut dyn RngCore) -> (
                <E as Pairing>::Gt,
                <E as Pairing>::Gt,
            ) {
                (Group::random(rng), Group::random(rng))
            }
            fn guess(&mut self, _c: &Cca2Ciphertext<E, S>) -> bool {
                false
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(402);
        let out = run_cca2_cml::<E, S, _>(&cfg(), &mut Greedy, &mut rng);
        assert!(matches!(out, Cca2Outcome::Aborted(_)));
    }
}
