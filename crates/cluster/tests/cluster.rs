//! End-to-end tests for the dlr-cluster subsystem: routed clients over a
//! key-sharded fleet, NotMine redirects, mid-load replica failover, and
//! shard-local epoch boundaries.

use dlr_cluster::loadgen::{
    run_fleet_ladder, run_fleet_loadgen, FleetFault, FleetKeyMaterial, FleetLadderConfig,
    FleetLadderKey, FleetLoadgenConfig,
};
use dlr_cluster::{EpochCoordinator, Fleet, FleetConfig};
use dlr_core::dlr::{self, Party1, PublicKey, Share1, Share2};
use dlr_core::driver::{self, RetryPolicy, Router, GENERATION_ANY};
use dlr_core::params::SchemeParams;
use dlr_core::CoreError;
use dlr_curve::{Group, Pairing, Toy};
use dlr_protocol::shard_of;
use dlr_protocol::transport::{TcpTransport, Transport};
use dlr_server::ServerConfig;
use rand::SeedableRng;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

type E = Toy;

fn keygen(seed: u64) -> (PublicKey<E>, Share1<E>, Share2<E>) {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
    dlr::keygen::<E, _>(params, &mut r)
}

/// A key id hashing onto `shard` of a `shards`-wide ring.
fn id_on_shard(shard: usize, shards: usize) -> Vec<u8> {
    (0u32..)
        .map(|n| format!("key-{n}").into_bytes())
        .find(|id| shard_of(id, shards) == shard)
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlr-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        max_sessions: 16,
        read_timeout: Duration::from_secs(5),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn connect(addr: &str) -> Result<Box<dyn Transport>, CoreError> {
    let stream = TcpStream::connect(addr).map_err(|e| CoreError::Transport(e.into()))?;
    let t = TcpTransport::new(stream);
    let _ = t.set_nodelay(true);
    let _ = t.set_read_timeout(Some(Duration::from_secs(5)));
    Ok(Box::new(t))
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(100),
        ..RetryPolicy::default()
    }
}

/// Two replicas, a key on each shard: the topology is fetchable from any
/// replica, correctly-routed clients never redirect, and a stale route is
/// healed by exactly one NotMine redirect.
#[test]
fn routed_clients_reach_sharded_keys() {
    let (pk_a, s1_a, s2_a) = keygen(900);
    let (pk_b, s1_b, s2_b) = keygen(901);
    let id_a = id_on_shard(0, 2);
    let id_b = id_on_shard(1, 2);

    let fleet = Fleet::spawn(
        FleetConfig {
            replicas: 2,
            shards: 0,
            data_dir: temp_dir("smoke"),
            base: quick_config(),
            epoch_sweep: None,
        },
        vec![
            (id_a.clone(), pk_a.clone(), s2_a),
            (id_b.clone(), pk_b.clone(), s2_b),
        ],
    )
    .unwrap();
    assert_eq!(fleet.owner_of(&id_a), 0);
    assert_eq!(fleet.owner_of(&id_b), 1);

    // The topology is served by every replica and names the whole fleet.
    for i in 0..2 {
        let mut t = connect(&fleet.addr(i).to_string()).unwrap();
        let topo = driver::p1_fetch_topology(t.as_mut()).unwrap();
        assert_eq!(topo.shards, 2);
        assert_eq!(topo.replicas, fleet.topology().replicas);
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut router = Router::new(fleet.topology().clone(), fast_retry());
    for (id, pk, s1) in [(&id_a, &pk_a, &s1_a), (&id_b, &pk_b, &s1_b)] {
        let message = <E as Pairing>::Gt::random(&mut rng);
        let ct = dlr::encrypt(pk, &message, &mut rng);
        let mut p1 = Party1::new(pk.clone(), s1.clone());
        let got = router
            .decrypt(&mut p1, &ct, id, &mut connect, &mut rng)
            .unwrap();
        assert_eq!(got, message);
    }
    assert_eq!(router.redirects(), 0, "correct routes must not redirect");

    // A stale route (key B pinned to replica 0) heals via one NotMine.
    let mut stale = Router::new(fleet.topology().clone(), fast_retry());
    stale.seed_route(&id_b, &fleet.topology().replicas[0]);
    let message = <E as Pairing>::Gt::random(&mut rng);
    let ct = dlr::encrypt(&pk_b, &message, &mut rng);
    let mut p1 = Party1::new(pk_b.clone(), s1_b.clone());
    let got = stale
        .decrypt(&mut p1, &ct, &id_b, &mut connect, &mut rng)
        .unwrap();
    assert_eq!(got, message);
    assert_eq!(stale.redirects(), 1);

    // The mis-routed hello shows up in replica 0's counters.
    let stats = fleet.stats();
    assert_eq!(stats[0].as_ref().unwrap().not_mine_replies, 1);
    assert_eq!(stats[1].as_ref().unwrap().not_mine_replies, 0);

    fleet.shutdown().unwrap();
}

/// Kill the owning replica mid-load and restart it: every in-flight
/// request completes through the routers' retry envelope with zero
/// mismatches and zero failures, and the failover counters prove the
/// outage was actually hit.
#[test]
fn routed_load_survives_replica_restart() {
    let (pk, s1, s2) = keygen(910);
    let id = id_on_shard(0, 2);

    let mut fleet = Fleet::spawn(
        FleetConfig {
            replicas: 2,
            shards: 0,
            data_dir: temp_dir("failover"),
            base: quick_config(),
            epoch_sweep: None,
        },
        vec![(id.clone(), pk.clone(), s2)],
    )
    .unwrap();
    let owner = fleet.owner_of(&id);
    let topology = fleet.topology().clone();
    let material = vec![FleetKeyMaterial {
        id: id.clone(),
        pk,
        share1: s1,
    }];
    let config = FleetLoadgenConfig {
        clients: 3,
        requests_per_client: 60,
        read_timeout: Some(Duration::from_millis(500)),
        max_reconnects: 64,
        backoff: RetryPolicy {
            max_attempts: 12,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            ..RetryPolicy::default()
        },
        encrypt_ops: 0,
        seed_stale_routes: false,
    };

    let outcome = crossbeam::thread::scope(|s| {
        let loadgen = s.spawn(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(42);
            run_fleet_loadgen::<E, _>(&topology, &material, &config, &mut rng)
        });
        // Pull the owning replica out from under the load, then bring it
        // back on the same address.
        std::thread::sleep(Duration::from_millis(150));
        fleet.kill_replica(owner).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        fleet.restart_replica(owner).unwrap();
        loadgen.join().expect("loadgen thread panicked")
    });

    assert_eq!(outcome.client_panics, 0);
    assert_eq!(outcome.mismatches, 0, "failover must never corrupt plaintexts");
    assert_eq!(outcome.failures, 0, "retry envelope should absorb the outage");
    assert_eq!(outcome.successes, outcome.requests);
    assert!(
        outcome.failovers + outcome.reconnects > 0,
        "the outage window was never observed — kill/restart timing is off"
    );

    // The restarted seat has a fresh incarnation plus a retired one.
    assert!(fleet.is_up(owner));
    assert_eq!(fleet.retired_stats(owner).len(), 1);
    fleet.shutdown().unwrap();
}

/// Epoch boundaries are shard-local: kicking the shard of key A advances
/// only its owning replica's epoch; a live session decrypting key B on
/// the other replica sees no stall, no reconnect, and no epoch movement.
#[test]
fn epoch_refresh_is_shard_local() {
    let (pk_a, _s1_a, s2_a) = keygen(920);
    let (pk_b, s1_b, s2_b) = keygen(921);
    let id_a = id_on_shard(0, 2);
    let id_b = id_on_shard(1, 2);

    let fleet = Fleet::spawn(
        FleetConfig {
            replicas: 2,
            shards: 0,
            data_dir: temp_dir("epoch"),
            base: quick_config(),
            epoch_sweep: None,
        },
        vec![(id_a.clone(), pk_a, s2_a), (id_b.clone(), pk_b.clone(), s2_b)],
    )
    .unwrap();

    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let message = <E as Pairing>::Gt::random(&mut rng);
    let ct = dlr::encrypt(&pk_b, &message, &mut rng);
    let mut p1 = Party1::new(pk_b.clone(), s1_b);

    // Hold one session open to key B on replica 1 across the whole test.
    let mut t = connect(&fleet.addr(1).to_string()).unwrap();
    driver::p1_hello(t.as_mut(), &id_b, GENERATION_ANY).unwrap();
    assert_eq!(driver::p1_decrypt(&mut p1, &ct, t.as_mut(), &mut rng).unwrap(), message);

    let coordinator = EpochCoordinator::new(&fleet);
    let epochs_before = coordinator.epochs();
    let (kicked, epoch_after) = coordinator
        .kick_shard_sync(0, Duration::from_secs(5))
        .unwrap();
    assert_eq!(kicked, 0, "shard 0 is owned by replica 0");
    assert!(epoch_after > epochs_before[0].unwrap());

    // Replica 1 never saw a boundary, and the open session keeps serving
    // decrypts with no re-hello — a fleet-wide pause would break both.
    assert_eq!(coordinator.epoch_of_replica(1), epochs_before[1]);
    for _ in 0..5 {
        assert_eq!(
            driver::p1_decrypt(&mut p1, &ct, t.as_mut(), &mut rng).unwrap(),
            message
        );
    }

    // kick_key resolves through the ring to the same owner.
    let replica = coordinator.kick_key(&id_a).unwrap();
    assert_eq!(replica, 0);

    let _ = driver::p1_shutdown(t.as_mut());
    fleet.shutdown().unwrap();
}

/// The opt-in epoch-sweep timer rolls staggered boundaries across the
/// whole fleet on its own clock: a live session keeps decrypting with
/// bounded latency right through the waves (no fleet-wide pause), killed
/// seats are skipped without stalling the timer, and shutdown stops the
/// sweeper cleanly.
#[test]
fn timed_epoch_sweep_never_blocks_live_decrypts() {
    let (pk_a, _s1_a, s2_a) = keygen(940);
    let (pk_b, s1_b, s2_b) = keygen(941);
    let id_a = id_on_shard(0, 2);
    let id_b = id_on_shard(1, 2);

    let mut fleet = Fleet::spawn(
        FleetConfig {
            replicas: 2,
            shards: 0,
            data_dir: temp_dir("sweep"),
            base: quick_config(),
            epoch_sweep: Some(Duration::from_millis(60)),
        },
        vec![(id_a, pk_a, s2_a), (id_b.clone(), pk_b.clone(), s2_b)],
    )
    .unwrap();
    assert!(fleet.sweeper_running());

    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let message = <E as Pairing>::Gt::random(&mut rng);
    let ct = dlr::encrypt(&pk_b, &message, &mut rng);
    let mut p1 = Party1::new(pk_b.clone(), s1_b);
    let mut t = connect(&fleet.addr(1).to_string()).unwrap();
    driver::p1_hello(t.as_mut(), &id_b, GENERATION_ANY).unwrap();

    // Decrypt continuously until two complete waves have been issued. A
    // sweep kicks BOTH replicas (including the one serving this session),
    // so a bounded per-request latency here proves boundaries are
    // asynchronous and shard-local — mid-sweep decrypts never block.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut max_latency = Duration::ZERO;
    while fleet.epoch_sweeps() < 2 {
        assert!(Instant::now() < deadline, "sweep timer never completed two waves");
        let t0 = Instant::now();
        assert_eq!(
            driver::p1_decrypt(&mut p1, &ct, t.as_mut(), &mut rng).unwrap(),
            message
        );
        max_latency = max_latency.max(t0.elapsed());
    }
    assert!(
        max_latency < Duration::from_secs(2),
        "decrypt stalled for {max_latency:?} during a sweep wave"
    );
    // force_epoch is asynchronous; give each replica's scheduler a bounded
    // moment for the issued boundaries to land, then both must have moved.
    {
        let coordinator = EpochCoordinator::new(&fleet);
        while coordinator.epochs().iter().any(|e| e.unwrap_or(0) < 2) {
            assert!(Instant::now() < deadline, "issued epoch boundaries never landed");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Kill a seat mid-schedule: subsequent waves skip it (no error, no
    // stall) and the surviving replica keeps advancing.
    fleet.kill_replica(0).unwrap();
    let sweeps_at_kill = fleet.epoch_sweeps();
    let epoch_b = fleet.handle(1).unwrap().epoch();
    while fleet.epoch_sweeps() < sweeps_at_kill + 2 {
        assert!(Instant::now() < deadline, "sweeps stopped after a replica was killed");
        assert_eq!(
            driver::p1_decrypt(&mut p1, &ct, t.as_mut(), &mut rng).unwrap(),
            message
        );
    }
    while fleet.handle(1).unwrap().epoch() < epoch_b + 2 {
        assert!(Instant::now() < deadline, "surviving replica stopped sweeping");
        std::thread::sleep(Duration::from_millis(2));
    }
    fleet.restart_replica(0).unwrap();

    let _ = driver::p1_shutdown(t.as_mut());
    // Clean shutdown: the timer is stopped and joined before the replicas
    // go down, so no wave races the teardown.
    let histories = fleet.shutdown().unwrap();
    assert_eq!(histories.len(), 2);
}

/// The replica ladder completes a faulted rung: a mid-rung restart is
/// absorbed (no abort, no panics) and the rung still reports per-shard
/// latencies.
#[test]
fn fleet_ladder_tolerates_faulted_rung() {
    let (pk, s1, s2) = keygen(930);
    let id = id_on_shard(0, 2);
    let keys = vec![FleetLadderKey {
        id,
        pk,
        share1: s1,
        share2: s2,
    }];
    let config = FleetLadderConfig {
        replica_rungs: vec![1, 2],
        shards: 0,
        data_dir: temp_dir("ladder"),
        base_server: quick_config(),
        base: FleetLoadgenConfig {
            clients: 2,
            requests_per_client: 40,
            read_timeout: Some(Duration::from_millis(500)),
            max_reconnects: 64,
            backoff: RetryPolicy {
                max_attempts: 12,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(50),
                ..RetryPolicy::default()
            },
            encrypt_ops: 0,
            seed_stale_routes: true,
        },
        fault: Some(FleetFault {
            replica: 0,
            delay: Duration::from_millis(100),
            downtime: Duration::from_millis(150),
        }),
        epoch_sweep: None,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let rungs = run_fleet_ladder::<E, _>(&config, &keys, &mut rng).unwrap();

    assert_eq!(rungs.len(), 2);
    // Rung 1 (single replica) runs un-faulted.
    assert_eq!(rungs[0].restarted_replica, None);
    assert_eq!(rungs[0].outcome.mismatches, 0);
    assert_eq!(rungs[0].outcome.successes, rungs[0].outcome.requests);
    // Rung 2 absorbs the restart of the key's owner.
    assert_eq!(rungs[1].restarted_replica, Some(0));
    assert_eq!(rungs[1].outcome.client_panics, 0);
    assert_eq!(rungs[1].outcome.mismatches, 0);
    assert_eq!(rungs[1].outcome.failures, 0);
    assert!(!rungs[1].outcome.per_shard.is_empty());
}
