//! Fleet supervisor: spawn, monitor, kill and restart a set of
//! [`dlr_server::Server`] replicas, each owning a slice of the key-id
//! shard ring.
//!
//! ## Ownership model
//!
//! The ring is the same FNV-1a hash the in-process keyring shards by
//! ([`dlr_protocol::shard_of`]): key id → shard → replica
//! `shard % replicas`. Every replica is constructed with
//!
//! * a keyring holding **only** the keys whose shard it owns,
//! * the full fleet [`TopologyMsg`] (served on the `Topology` request),
//! * an [`OwnerHint`] oracle over that topology, so a hello for a key
//!   another replica owns is answered with `NotMine` + the owner's
//!   address instead of `UnknownKey`.
//!
//! ## Durability and restart
//!
//! Every key share is persisted (atomic temp + fsync + rename) into the
//! fleet's `data_dir` before its replica first serves it, and re-persisted
//! by the server on every committed refresh. [`Fleet::restart_replica`]
//! therefore rebuilds a killed replica's keyring **from disk**, picking up
//! whatever generation the share had reached — the supervisor holds no
//! share material of its own beyond spawn time.

use dlr_core::dlr::{PublicKey, Share2};
use dlr_core::driver::{TopologyMsg, WIRE_VERSION};
use dlr_curve::Pairing;
use dlr_protocol::shard_of;
use dlr_server::keyring::persist_atomically;
use dlr_server::{Keyring, OwnerHint, Server, ServerConfig, ServerHandle, StatsSnapshot};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of server replicas to spawn.
    pub replicas: usize,
    /// Shard-ring size. `0` = one shard per replica. A ring larger than
    /// the replica count spreads keys more evenly and keeps shard→key
    /// assignments stable under replica-count changes.
    pub shards: usize,
    /// Directory holding the durable key shares (`<hex(id)>.share`).
    pub data_dir: PathBuf,
    /// Per-replica server template. Its `topology` and `owner_hint`
    /// fields are overwritten per replica by the supervisor.
    pub base: ServerConfig,
    /// Opt-in epoch sweep timer: every `interval`, roll a staggered epoch
    /// boundary across the running replicas (the timer-driven form of
    /// [`EpochCoordinator::sweep_staggered`](crate::EpochCoordinator::sweep_staggered)).
    /// `None` (the default) means epochs advance only when kicked
    /// explicitly. The stagger gap is `interval / (4 · replicas)`, so a
    /// whole wave lands within the first quarter of each window and no two
    /// replicas refresh at the same instant.
    pub epoch_sweep: Option<Duration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            shards: 0,
            data_dir: std::env::temp_dir().join("dlr-fleet"),
            base: ServerConfig::default(),
            epoch_sweep: None,
        }
    }
}

impl FleetConfig {
    /// The ring size after resolving the `0` = per-replica default.
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            self.replicas.max(1)
        }
    }
}

/// One key registered with the fleet: identity, public half, and the
/// durable share location its owning replica loads from.
pub struct FleetKey<E: Pairing> {
    /// Registry id (hello key id).
    pub id: Vec<u8>,
    /// Public key (never changes across refreshes).
    pub pk: PublicKey<E>,
    share_path: PathBuf,
}

/// A live replica incarnation: its control handle plus the thread running
/// [`Server::run`].
struct RunningReplica {
    handle: ServerHandle,
    thread: JoinHandle<io::Result<StatsSnapshot>>,
}

/// One replica seat: a fixed address that is either occupied by a running
/// server or empty (killed, awaiting restart).
struct ReplicaSeat {
    addr: SocketAddr,
    running: Option<RunningReplica>,
    /// Final stats of every previous incarnation, oldest first.
    retired: Vec<StatsSnapshot>,
}

/// The timer thread behind [`FleetConfig::epoch_sweep`]: wakes every
/// interval, snapshots the handle mirror, and kicks a staggered epoch
/// wave across whatever replicas are up at that moment. Kill/restart
/// churn is safe because the sweeper only ever sees the mirror the
/// supervisor maintains — it never touches `Fleet` itself.
struct Sweeper {
    stop: Arc<AtomicBool>,
    sweeps: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl Sweeper {
    /// Sleep granularity: how quickly the timer notices a stop request
    /// (both between sweeps and inside a stagger gap).
    const TICK: Duration = Duration::from_millis(2);

    fn start(interval: Duration, handles: Arc<Mutex<Vec<Option<ServerHandle>>>>) -> io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let sweeps = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let sweeps = Arc::clone(&sweeps);
            std::thread::Builder::new()
                .name("dlr-fleet-epoch-sweep".into())
                .spawn(move || {
                    let mut next = Instant::now() + interval;
                    while !Self::wait_until(&stop, next) {
                        let snapshot: Vec<ServerHandle> = handles
                            .lock()
                            .map(|h| h.iter().flatten().cloned().collect())
                            .unwrap_or_default();
                        let gap = interval / (4 * snapshot.len().max(1) as u32);
                        for (i, handle) in snapshot.iter().enumerate() {
                            if i > 0 && Self::wait_until(&stop, Instant::now() + gap) {
                                return;
                            }
                            handle.force_epoch();
                        }
                        sweeps.fetch_add(1, Ordering::Relaxed);
                        next = Instant::now() + interval;
                    }
                })?
        };
        Ok(Self {
            stop,
            sweeps,
            thread: Some(thread),
        })
    }

    /// Sleep until `deadline` in stop-aware slices; `true` = stop requested.
    fn wait_until(stop: &AtomicBool, deadline: Instant) -> bool {
        loop {
            if stop.load(Ordering::Relaxed) {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            std::thread::sleep(left.min(Self::TICK));
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Sweeper {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A supervised fleet of N `dlr-server` replicas sharing one shard ring.
pub struct Fleet<E: Pairing> {
    config: FleetConfig,
    topology: TopologyMsg,
    keys: Vec<FleetKey<E>>,
    seats: Vec<ReplicaSeat>,
    /// Mirror of each seat's control handle for the sweeper thread,
    /// updated on spawn/kill/restart (`None` = seat down).
    handles: Arc<Mutex<Vec<Option<ServerHandle>>>>,
    sweeper: Option<Sweeper>,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn invalid_data<Err: std::fmt::Display>(e: Err) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl<E: Pairing> Fleet<E> {
    /// Spawn the fleet: bind every replica's listener, persist each key's
    /// share under `data_dir`, and start one server thread per replica
    /// with the keys its ring slice owns.
    pub fn spawn(
        config: FleetConfig,
        keys: Vec<(Vec<u8>, PublicKey<E>, Share2<E>)>,
    ) -> io::Result<Self> {
        let replicas = config.replicas.max(1);
        let shards = config.resolved_shards();
        std::fs::create_dir_all(&config.data_dir)?;

        // Bind all listeners before starting any server, so the topology
        // handed to every replica names the whole fleet's final addresses.
        let listeners: Vec<TcpListener> = (0..replicas)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<io::Result<_>>()?;
        let topology = TopologyMsg {
            version: WIRE_VERSION,
            shards: shards as u32,
            replicas: addrs.iter().map(SocketAddr::to_string).collect(),
        };

        let mut fleet_keys = Vec::with_capacity(keys.len());
        for (id, pk, share) in keys {
            let share_path = config.data_dir.join(format!("{}.share", hex(&id)));
            persist_atomically(&share_path, &share.to_bytes())?;
            fleet_keys.push(FleetKey { id, pk, share_path });
        }

        let mut fleet = Self {
            config,
            topology,
            keys: fleet_keys,
            seats: addrs
                .into_iter()
                .map(|addr| ReplicaSeat {
                    addr,
                    running: None,
                    retired: Vec::new(),
                })
                .collect(),
            handles: Arc::new(Mutex::new(vec![None; replicas])),
            sweeper: None,
        };
        for (index, listener) in listeners.into_iter().enumerate() {
            let running = fleet.start_replica(index, listener)?;
            fleet.mirror_handle(index, Some(running.handle.clone()));
            fleet.seats[index].running = Some(running);
        }
        if let Some(interval) = fleet.config.epoch_sweep {
            fleet.sweeper = Some(Sweeper::start(interval, Arc::clone(&fleet.handles))?);
        }
        Ok(fleet)
    }

    /// Keep the sweeper's view of seat `index` in step with the seat.
    fn mirror_handle(&self, index: usize, handle: Option<ServerHandle>) {
        if let Ok(mut handles) = self.handles.lock() {
            handles[index] = handle;
        }
    }

    /// Build and launch one replica on an already-bound listener.
    fn start_replica(&self, index: usize, listener: TcpListener) -> io::Result<RunningReplica> {
        let shards = self.topology.shards as usize;
        let replicas = self.seats.len().max(1);

        let mut ring = Keyring::new();
        for key in &self.keys {
            if shard_of(&key.id, shards) % replicas != index {
                continue;
            }
            // Load from disk even on first spawn: the restart path and
            // the spawn path must be the same code, or restart rot sets in.
            let bytes = std::fs::read(&key.share_path)?;
            let share = Share2::<E>::from_bytes(&bytes, &key.pk.params).map_err(invalid_data)?;
            ring.insert_persistent(&key.id, key.pk.clone(), share, key.share_path.clone());
        }

        let mut config = self.config.base.clone();
        config.topology = Some(self.topology.clone());
        let topology = self.topology.clone();
        config.owner_hint = Some(OwnerHint(Arc::new(move |id: &[u8]| {
            let owner = shard_of(id, shards) % replicas;
            if owner == index {
                None // ours but unregistered: a true UnknownKey
            } else {
                Some(topology.replicas[owner].clone())
            }
        })));

        listener.set_nonblocking(false)?;
        let server = Server::new(listener, Arc::new(ring), config)?;
        let handle = server.handle();
        let thread = std::thread::Builder::new()
            .name(format!("dlr-fleet-replica-{index}"))
            .spawn(move || server.run())?;
        Ok(RunningReplica { handle, thread })
    }

    /// The fleet topology (shared verbatim with every replica).
    pub fn topology(&self) -> &TopologyMsg {
        &self.topology
    }

    /// Number of replica seats (running or not).
    pub fn replica_count(&self) -> usize {
        self.seats.len()
    }

    /// The fixed address of replica `index`.
    pub fn addr(&self, index: usize) -> SocketAddr {
        self.seats[index].addr
    }

    /// The replica index owning `key_id` on this fleet's ring.
    pub fn owner_of(&self, key_id: &[u8]) -> usize {
        shard_of(key_id, self.topology.shards as usize) % self.seats.len().max(1)
    }

    /// Whether replica `index` currently has a running server.
    pub fn is_up(&self, index: usize) -> bool {
        self.seats[index].running.is_some()
    }

    /// Control handle of replica `index`, if it is running.
    pub fn handle(&self, index: usize) -> Option<&ServerHandle> {
        self.seats[index].running.as_ref().map(|r| &r.handle)
    }

    /// Keys registered with the fleet.
    pub fn keys(&self) -> &[FleetKey<E>] {
        &self.keys
    }

    /// Live stats snapshot per replica (`None` for killed seats).
    pub fn stats(&self) -> Vec<Option<StatsSnapshot>> {
        self.seats
            .iter()
            .map(|seat| seat.running.as_ref().map(|r| r.handle.stats()))
            .collect()
    }

    /// Final stats of replica `index`'s previous incarnations.
    pub fn retired_stats(&self, index: usize) -> &[StatsSnapshot] {
        &self.seats[index].retired
    }

    /// Kill replica `index`: shut its server down (open connections are
    /// closed, shares persisted) and reap the thread. The seat keeps its
    /// address so [`restart_replica`](Self::restart_replica) comes back
    /// exactly where the topology says. No-op if already down.
    pub fn kill_replica(&mut self, index: usize) -> io::Result<Option<StatsSnapshot>> {
        let Some(running) = self.seats[index].running.take() else {
            return Ok(None);
        };
        // Unmirror first so a concurrent sweep never kicks a dying server.
        self.mirror_handle(index, None);
        running.handle.shutdown();
        let stats = running
            .thread
            .join()
            .map_err(|_| io::Error::other("replica thread panicked"))??;
        self.seats[index].retired.push(stats.clone());
        Ok(Some(stats))
    }

    /// Restart a killed replica on its original address, rebuilding its
    /// keyring from the durable shares (whatever generation they reached).
    /// No-op if the replica is already running.
    pub fn restart_replica(&mut self, index: usize) -> io::Result<()> {
        if self.seats[index].running.is_some() {
            return Ok(());
        }
        let listener = TcpListener::bind(self.seats[index].addr)?;
        let running = self.start_replica(index, listener)?;
        self.mirror_handle(index, Some(running.handle.clone()));
        self.seats[index].running = Some(running);
        Ok(())
    }

    /// Number of complete staggered sweep waves the epoch-sweep timer has
    /// finished so far (`0` when [`FleetConfig::epoch_sweep`] is off).
    pub fn epoch_sweeps(&self) -> u64 {
        self.sweeper
            .as_ref()
            .map_or(0, |s| s.sweeps.load(Ordering::Relaxed))
    }

    /// Whether the epoch-sweep timer is running.
    pub fn sweeper_running(&self) -> bool {
        self.sweeper.is_some()
    }

    /// Shut the whole fleet down, returning every replica's stats history
    /// (previous incarnations followed by the final one), indexed by
    /// replica.
    pub fn shutdown(mut self) -> io::Result<Vec<Vec<StatsSnapshot>>> {
        // Stop the sweep timer before tearing replicas down so no epoch
        // kick races the shutdown sequence (Drop would also stop it, but
        // only after the replicas are gone).
        if let Some(mut sweeper) = self.sweeper.take() {
            sweeper.stop_and_join();
        }
        let mut all = Vec::with_capacity(self.seats.len());
        for index in 0..self.seats.len() {
            self.kill_replica(index)?;
            all.push(std::mem::take(&mut self.seats[index].retired));
        }
        Ok(all)
    }
}

/// The durable share path the fleet uses for `id` under `data_dir` —
/// exposed so tests and tools can inspect the spool.
pub fn share_path(data_dir: &Path, id: &[u8]) -> PathBuf {
    data_dir.join(format!("{}.share", hex(id)))
}
