#![warn(missing_docs)]
//! # dlr-cluster — key-sharded multi-replica `P2` fleet
//!
//! Scales the single [`dlr-server`](dlr_server) `P2` service horizontally:
//! a supervised fleet of N replicas partitions the key space over the
//! canonical FNV-1a shard ring ([`dlr_protocol::shard_of`] — the same
//! hash the in-process keyring shards by, so client routing and server
//! placement can never disagree).
//!
//! * [`fleet`] — supervisor: spawn / kill / restart replicas, durable
//!   share spool, per-replica keyrings restricted to owned shards, fleet
//!   [`TopologyMsg`](dlr_core::driver::TopologyMsg) served by every
//!   replica, `NotMine` owner hints for mis-routed hellos;
//! * [`coordinator`] — **per-shard** epoch refresh: a boundary on shard
//!   `s` touches only the replica owning `s` (no fleet-wide pause), plus
//!   a staggered rolling sweep;
//! * [`loadgen`] — routed closed-loop load generator (one
//!   [`Router`](dlr_core::driver::Router) per client) with per-shard
//!   latency percentiles, redirect/failover counters, a replica-count
//!   ladder, and mid-rung fault injection.
//!
//! ## Relation to the paper
//!
//! The PODC'12 scheme is a *two*-device protocol per key: `P1` holds one
//! share, `P2` the other, and refresh (§4.4) rotates one key's shares
//! jointly. Nothing couples different keys — which is exactly what makes
//! the fleet's shard-local epochs sound: a leakage-period boundary for
//! the keys on replica `i` neither waits on nor disturbs decryptions
//! against replica `j`. Def. 3.1's continual-leakage accounting stays
//! per key; the cluster only changes *where* each key's `P2` lives.

pub mod coordinator;
pub mod fleet;
pub mod loadgen;

pub use coordinator::EpochCoordinator;
pub use fleet::{share_path, Fleet, FleetConfig, FleetKey};
pub use loadgen::{
    run_fleet_ladder, run_fleet_loadgen, FleetFault, FleetKeyMaterial, FleetLadderConfig,
    FleetLadderKey, FleetLadderRung, FleetLoadgenConfig, FleetLoadgenOutcome,
};
