//! Closed-loop load generator for a sharded replica fleet.
//!
//! The single-server load generator ([`dlr_server::loadgen`]) points every
//! client at one address. This one hands each client a routed
//! [`Router`] over the fleet [`TopologyMsg`]: the client computes its
//! key's owner on the ring, follows `NotMine` redirects when its routing
//! table is stale, and fails over (cache invalidation + jittered backoff
//! + re-route) when a replica dies mid-session.
//!
//! The report keeps `component = "dlr-loadgen"` and the same span set as
//! the single-server generator, so `tools/bench-compare.sh` pairs a fleet
//! run against a single-server baseline and gates the group-op counts —
//! routing must be *free* at the op-count level (redirects happen at
//! hello time and cost zero group operations).

use crate::fleet::{Fleet, FleetConfig};
use dlr_core::dlr::{self, Ciphertext, Party1, PublicKey, Share1, Share2};
use dlr_core::driver::{self, RetryPolicy, Router, TopologyMsg, GENERATION_ANY};
use dlr_core::CoreError;
use dlr_curve::{Group, Pairing};
use dlr_math::FieldElement;
use dlr_metrics::Report;
use dlr_protocol::shard_of;
use dlr_protocol::transport::{
    new_transcript, RecordingTransport, TcpTransport, Transport, WireStatsHandle,
};
use dlr_protocol::WireStats;
use dlr_server::ServerConfig;
use std::collections::BTreeMap;
use std::io;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Client-side material for one fleet key: the public key plus the `P1`
/// share matching the `P2` share held by the owning replica.
pub struct FleetKeyMaterial<E: Pairing> {
    /// Registry id announced in hellos and hashed onto the ring.
    pub id: Vec<u8>,
    /// Public key.
    pub pk: PublicKey<E>,
    /// `P1` key share.
    pub share1: Share1<E>,
}

// Manual impl: `derive(Clone)` would demand `E: Clone`, which the pairing
// marker types do not (and need not) implement.
impl<E: Pairing> Clone for FleetKeyMaterial<E> {
    fn clone(&self) -> Self {
        Self {
            id: self.id.clone(),
            pk: self.pk.clone(),
            share1: self.share1.clone(),
        }
    }
}

/// Fleet load-generation parameters.
#[derive(Debug, Clone)]
pub struct FleetLoadgenConfig {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Decrypt requests issued per client.
    pub requests_per_client: usize,
    /// Per-read deadline on client sockets.
    pub read_timeout: Option<Duration>,
    /// Reconnect budget per client before a request is failed.
    pub max_reconnects: usize,
    /// Backoff between reconnect attempts (per-client jitter seeds are
    /// derived from the client index, as in the single-server generator).
    pub backoff: RetryPolicy,
    /// Client-side `encrypt` operations timed after the decrypt phase.
    pub encrypt_ops: usize,
    /// Seed every client's route cache with replica `client_idx %
    /// replicas` instead of the computed owner. Clients whose seed is
    /// wrong take exactly one `NotMine` redirect on first hello, making
    /// the redirect counter deterministic — used by the committed bench.
    pub seed_stale_routes: bool,
}

impl Default for FleetLoadgenConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            requests_per_client: 25,
            read_timeout: Some(Duration::from_secs(10)),
            max_reconnects: 8,
            backoff: RetryPolicy {
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(200),
                ..RetryPolicy::default()
            },
            encrypt_ops: 256,
            seed_stale_routes: false,
        }
    }
}

/// Aggregated outcome of a fleet load-generation run.
#[derive(Debug, Clone)]
pub struct FleetLoadgenOutcome {
    /// Clients spawned.
    pub clients: usize,
    /// Total decrypt requests attempted.
    pub requests: usize,
    /// Requests that returned the correct plaintext.
    pub successes: usize,
    /// Requests that failed (after the per-client reconnect budget).
    pub failures: usize,
    /// Client threads that panicked mid-run (requests counted as
    /// failures; the run still completes and reports the survivors).
    pub client_panics: usize,
    /// Responses that decrypted to the wrong plaintext.
    pub mismatches: usize,
    /// `NotMine` redirects followed, summed over all client routers.
    pub redirects: u64,
    /// Route invalidations after a failed attempt (replica death seen by
    /// a routed client), summed over all client routers.
    pub failovers: u64,
    /// Reconnect credits spent across all clients.
    pub reconnects: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Per-request latencies, sorted ascending, all shards merged.
    pub latencies_ns: Vec<u64>,
    /// Per-request latencies keyed by the key's shard, each sorted.
    pub per_shard: BTreeMap<usize, Vec<u64>>,
    /// Wire statistics merged across all client transports.
    pub wire: WireStats,
    /// Client-side `encrypt` operations timed for the throughput figure.
    pub encrypt_ops: usize,
    /// Wall-clock time of the encrypt measurement loop.
    pub encrypt_elapsed: Duration,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl FleetLoadgenOutcome {
    /// Successful requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.successes as f64 / secs
        }
    }

    /// Aggregate latency percentile (nearest-rank; `0` with no samples).
    pub fn latency_percentile_ns(&self, q: f64) -> u64 {
        percentile(&self.latencies_ns, q)
    }

    /// Latency percentile over one shard's samples.
    pub fn shard_percentile_ns(&self, shard: usize, q: f64) -> u64 {
        self.per_shard
            .get(&shard)
            .map_or(0, |samples| percentile(samples, q))
    }

    /// Mean latency over all samples; `0` when none recorded.
    pub fn latency_mean_ns(&self) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let total: u128 = self.latencies_ns.iter().map(|&ns| ns as u128).sum();
        (total / self.latencies_ns.len() as u128) as u64
    }

    /// Client-side `encrypt` operations per second.
    pub fn encrypt_ops_per_s(&self) -> f64 {
        let secs = self.encrypt_elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.encrypt_ops as f64 / secs
        }
    }

    /// Render to a `dlr-metrics` [`Report`].
    ///
    /// Keeps `component = "dlr-loadgen"` and every metadata key the
    /// single-server generator emits, then adds the fleet axis: replica /
    /// shard counts, redirect / failover / reconnect counters, and
    /// per-shard request counts + p50/p95 (`shard<k>_*` keys).
    pub fn to_report(&self, topology: &TopologyMsg) -> Report {
        let mut report = Report::capture()
            .with_meta("component", "dlr-loadgen")
            .with_meta("clients", &self.clients.to_string())
            .with_meta("requests", &self.requests.to_string())
            .with_meta("successes", &self.successes.to_string())
            .with_meta("failures", &self.failures.to_string())
            .with_meta("client_panics", &self.client_panics.to_string())
            .with_meta("mismatches", &self.mismatches.to_string())
            .with_meta("elapsed_ms", &self.elapsed.as_millis().to_string())
            .with_meta("throughput_rps", &format!("{:.2}", self.throughput_rps()))
            .with_meta("latency_p50_ns", &self.latency_percentile_ns(50.0).to_string())
            .with_meta("latency_p95_ns", &self.latency_percentile_ns(95.0).to_string())
            .with_meta("latency_p99_ns", &self.latency_percentile_ns(99.0).to_string())
            .with_meta("latency_mean_ns", &self.latency_mean_ns().to_string())
            .with_meta(
                "latency_max_ns",
                &self.latencies_ns.last().copied().unwrap_or(0).to_string(),
            )
            .with_meta("encrypt_ops", &self.encrypt_ops.to_string())
            .with_meta("encrypt_ops_per_s", &format!("{:.2}", self.encrypt_ops_per_s()))
            .with_meta("fleet_replicas", &topology.replicas.len().to_string())
            .with_meta("fleet_shards", &topology.shards.to_string())
            .with_meta("redirects", &self.redirects.to_string())
            .with_meta("failovers", &self.failovers.to_string())
            .with_meta("reconnects", &self.reconnects.to_string());
        for (shard, samples) in &self.per_shard {
            report = report
                .with_meta(&format!("shard{shard}_requests"), &samples.len().to_string())
                .with_meta(
                    &format!("shard{shard}_p50_ns"),
                    &percentile(samples, 50.0).to_string(),
                )
                .with_meta(
                    &format!("shard{shard}_p95_ns"),
                    &percentile(samples, 95.0).to_string(),
                );
        }
        report.push_wire("loadgen.clients", self.wire.clone());
        report
    }
}

struct ClientOutcome {
    successes: usize,
    failures: usize,
    mismatches: usize,
    redirects: u64,
    failovers: u64,
    reconnects: u64,
    shard: usize,
    latencies_ns: Vec<u64>,
    wire: WireStats,
}

/// Run the routed closed-loop load generator against a fleet.
///
/// Client `i` drives `keys[i % keys.len()]` through its own [`Router`]
/// over `topology`. Each key's message is encrypted once up front, so
/// every response is verifiable. Replica death mid-run costs routed
/// clients reconnects/failovers, not correctness: a request only counts
/// as failed once its client's reconnect budget is spent.
pub fn run_fleet_loadgen<E: Pairing, R: rand::RngCore>(
    topology: &TopologyMsg,
    keys: &[FleetKeyMaterial<E>],
    config: &FleetLoadgenConfig,
    rng: &mut R,
) -> FleetLoadgenOutcome {
    assert!(!keys.is_empty(), "fleet loadgen needs at least one key");
    let workloads: Vec<(FleetKeyMaterial<E>, E::Gt, Ciphertext<E>)> = keys
        .iter()
        .map(|key| {
            let message = E::Gt::random(rng);
            let ct = dlr::encrypt(&key.pk, &message, rng);
            (key.clone(), message, ct)
        })
        .collect();

    let started = Instant::now();
    let (per_client, client_panics): (Vec<ClientOutcome>, usize) =
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..config.clients)
                .map(|idx| {
                    let (key, message, ct) = workloads[idx % workloads.len()].clone();
                    let topology = topology.clone();
                    let config = config.clone();
                    s.spawn(move || client_loop(topology, idx, key, ct, message, &config))
                })
                .collect();
            let mut panics = 0usize;
            let outcomes = handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(outcome) => Some(outcome),
                    Err(_) => {
                        panics += 1;
                        None
                    }
                })
                .collect();
            (outcomes, panics)
        });
    let elapsed = started.elapsed();

    // Same single-threaded client-side encryption figure as the
    // single-server generator, against the first key's (warm) public key.
    let encrypt_elapsed = if config.encrypt_ops > 0 {
        let pk = &keys[0].pk;
        let message = &workloads[0].1;
        let scalars: Vec<E::Scalar> = (0..config.encrypt_ops)
            .map(|_| E::Scalar::random(rng))
            .collect();
        dlr_metrics::span("loadgen.encrypt", || {
            let started = Instant::now();
            for t in &scalars {
                std::hint::black_box(dlr::encrypt_with_randomness(pk, message, t));
            }
            started.elapsed()
        })
    } else {
        Duration::ZERO
    };

    let mut outcome = FleetLoadgenOutcome {
        clients: config.clients,
        requests: config.clients * config.requests_per_client,
        successes: 0,
        failures: client_panics * config.requests_per_client,
        client_panics,
        mismatches: 0,
        redirects: 0,
        failovers: 0,
        reconnects: 0,
        elapsed,
        latencies_ns: Vec::new(),
        per_shard: BTreeMap::new(),
        wire: WireStats::default(),
        encrypt_ops: config.encrypt_ops,
        encrypt_elapsed,
    };
    for client in per_client {
        outcome.successes += client.successes;
        outcome.failures += client.failures;
        outcome.mismatches += client.mismatches;
        outcome.redirects += client.redirects;
        outcome.failovers += client.failovers;
        outcome.reconnects += client.reconnects;
        outcome
            .per_shard
            .entry(client.shard)
            .or_default()
            .extend(client.latencies_ns.iter().copied());
        outcome.latencies_ns.extend(client.latencies_ns);
        outcome.wire.merge(&client.wire);
    }
    outcome.latencies_ns.sort_unstable();
    for samples in outcome.per_shard.values_mut() {
        samples.sort_unstable();
    }
    outcome
}

fn client_loop<E: Pairing>(
    topology: TopologyMsg,
    client_idx: usize,
    key: FleetKeyMaterial<E>,
    ct: Ciphertext<E>,
    message: E::Gt,
    config: &FleetLoadgenConfig,
) -> ClientOutcome {
    let shard = shard_of(&key.id, topology.shards.max(1) as usize);
    let mut out = ClientOutcome {
        successes: 0,
        failures: 0,
        mismatches: 0,
        redirects: 0,
        failovers: 0,
        reconnects: 0,
        shard,
        latencies_ns: Vec::with_capacity(config.requests_per_client),
        wire: WireStats::default(),
    };
    let backoff = RetryPolicy {
        jitter_seed: config
            .backoff
            .jitter_seed
            .wrapping_add(1 + client_idx as u64),
        ..config.backoff.clone()
    };
    let replicas = topology.replicas.len().max(1);
    let seeded = topology.replicas[client_idx % replicas].clone();
    let mut router = Router::new(topology, backoff.clone());
    if config.seed_stale_routes {
        router.seed_route(&key.id, &seeded);
    }

    // Every transport this client opens shares its live stats handle here,
    // so wire bytes survive the `Box<dyn Transport>` type erasure.
    let mut wire_handles: Vec<WireStatsHandle> = Vec::new();
    let read_timeout = config.read_timeout;
    let connect = move |addr: &str| -> Result<(Box<dyn Transport>, WireStatsHandle), CoreError>
    {
        let stream =
            TcpStream::connect(addr).map_err(|e| CoreError::Transport(e.into()))?;
        let tcp = TcpTransport::new(stream);
        let _ = tcp.set_nodelay(true);
        let _ = tcp.set_read_timeout(read_timeout);
        let transport = RecordingTransport::new(tcp, new_transcript());
        let handle = transport.stats_handle();
        Ok((Box::new(transport), handle))
    };

    let mut p1 = Party1::new(key.pk, key.share1);
    p1.warm();
    let mut rng = rand::thread_rng();

    // Open (or reopen) a routed session, following NotMine redirects and
    // retrying per the router's policy.
    let open = |router: &mut Router,
                    wire_handles: &mut Vec<WireStatsHandle>|
     -> Result<Box<dyn Transport>, CoreError> {
        let mut routed = |addr: &str| -> Result<Box<dyn Transport>, CoreError> {
            let (t, handle) = connect(addr)?;
            wire_handles.push(handle);
            Ok(t)
        };
        router
            .open(&key.id, GENERATION_ANY, &mut routed)
            .map(|(t, _generation)| t)
    };

    let mut transport: Option<Box<dyn Transport>> =
        open(&mut router, &mut wire_handles).ok();

    for _ in 0..config.requests_per_client {
        let mut done = false;
        while !done {
            let Some(t) = transport.as_mut() else {
                // (Re)open failed: burn one reconnect credit, fail the
                // request once the budget is gone.
                if out.reconnects as usize >= config.max_reconnects {
                    out.failures += 1;
                    done = true;
                    continue;
                }
                std::thread::sleep(backoff.backoff_delay_jittered(out.reconnects as u32));
                out.reconnects += 1;
                transport = open(&mut router, &mut wire_handles).ok();
                if transport.is_none() {
                    out.failures += 1;
                    done = true;
                }
                continue;
            };
            let started = Instant::now();
            match driver::p1_decrypt(&mut p1, &ct, t.as_mut(), &mut rng) {
                Ok(recovered) => {
                    out.latencies_ns.push(started.elapsed().as_nanos() as u64);
                    if recovered == message {
                        out.successes += 1;
                    } else {
                        out.mismatches += 1;
                    }
                    done = true;
                }
                Err(e)
                    if driver::is_retryable(&e)
                        && (out.reconnects as usize) < config.max_reconnects =>
                {
                    // The session died (replica killed, timeout, busy):
                    // invalidate the route so the reopen re-resolves the
                    // owner, back off, and go around.
                    router.note_failure(&key.id);
                    std::thread::sleep(backoff.backoff_delay_jittered(out.reconnects as u32));
                    out.reconnects += 1;
                    transport = open(&mut router, &mut wire_handles).ok();
                }
                Err(_) => {
                    out.failures += 1;
                    done = true;
                }
            }
        }
    }
    if let Some(mut t) = transport.take() {
        let _ = driver::p1_shutdown(t.as_mut());
    }
    out.redirects = router.redirects();
    out.failovers = router.failovers();
    for handle in &wire_handles {
        out.wire.merge(&handle.lock().clone());
    }
    out
}

/// Full two-sided key material for a ladder-managed fleet: the ladder
/// spawns servers (needs the `P2` share) and clients (need the `P1`
/// share) for each rung itself.
pub struct FleetLadderKey<E: Pairing> {
    /// Registry id.
    pub id: Vec<u8>,
    /// Public key.
    pub pk: PublicKey<E>,
    /// Client-side share.
    pub share1: Share1<E>,
    /// Server-side share (persisted into each rung's data dir).
    pub share2: Share2<E>,
}

impl<E: Pairing> Clone for FleetLadderKey<E> {
    fn clone(&self) -> Self {
        Self {
            id: self.id.clone(),
            pk: self.pk.clone(),
            share1: self.share1.clone(),
            share2: self.share2.clone(),
        }
    }
}

impl<E: Pairing> FleetLadderKey<E> {
    /// The client-side projection of this key.
    pub fn material(&self) -> FleetKeyMaterial<E> {
        FleetKeyMaterial {
            id: self.id.clone(),
            pk: self.pk.clone(),
            share1: self.share1.clone(),
        }
    }
}

/// Mid-rung fault injection: kill one replica while the load is running,
/// keep it down for `downtime`, then restart it on the same address.
#[derive(Debug, Clone)]
pub struct FleetFault {
    /// Replica index to kill (clamped to the rung's replica count).
    pub replica: usize,
    /// How long into the rung to pull the replica.
    pub delay: Duration,
    /// How long the replica stays down before restarting.
    pub downtime: Duration,
}

/// Configuration for a fleet ladder: the same routed closed-loop workload
/// repeated at a sequence of *replica counts*, each rung on a fresh fleet.
#[derive(Debug, Clone)]
pub struct FleetLadderConfig {
    /// Replica counts to visit, in order (e.g. `[1, 2, 4]`).
    pub replica_rungs: Vec<usize>,
    /// Shard-ring size per rung (`0` = one shard per replica).
    pub shards: usize,
    /// Root directory for per-rung share spools (`<root>/r<N>/`).
    pub data_dir: PathBuf,
    /// Per-replica server template.
    pub base_server: ServerConfig,
    /// Client-side template. `encrypt_ops` is forced to `0` per rung, as
    /// in the single-server ladder (the encryption figure is a
    /// single-threaded measurement, orthogonal to the replica axis).
    pub base: FleetLoadgenConfig,
    /// Optional mid-rung replica restart, applied to every rung with at
    /// least two replicas. Routed clients are expected to fail over;
    /// rungs with a fault report nonzero `failovers`/`reconnects`, never
    /// a panic abort.
    pub fault: Option<FleetFault>,
    /// Per-rung [`FleetConfig::epoch_sweep`] timer: when set, each rung's
    /// fleet rolls staggered epoch boundaries on this interval while the
    /// load runs.
    pub epoch_sweep: Option<Duration>,
}

/// One completed rung of a fleet ladder.
#[derive(Debug, Clone)]
pub struct FleetLadderRung {
    /// Replica count this rung ran at.
    pub replicas: usize,
    /// The rung's fleet topology (for shard attribution in reports).
    pub topology: TopologyMsg,
    /// The routed closed-loop outcome.
    pub outcome: FleetLoadgenOutcome,
    /// Replica killed and restarted mid-rung, when a fault was injected.
    pub restarted_replica: Option<usize>,
}

/// Run the routed load generator once per replica-count rung, spawning a
/// fresh fleet (and share spool) for each. A rung's fault injection runs
/// on a side thread against the supervisor while the clients drive load;
/// client panics are tolerated and reported, never an abort.
pub fn run_fleet_ladder<E: Pairing, R: rand::RngCore>(
    config: &FleetLadderConfig,
    keys: &[FleetLadderKey<E>],
    rng: &mut R,
) -> io::Result<Vec<FleetLadderRung>> {
    let material: Vec<FleetKeyMaterial<E>> = keys.iter().map(FleetLadderKey::material).collect();
    let mut rungs = Vec::with_capacity(config.replica_rungs.len());
    for &replicas in &config.replica_rungs {
        let fleet_config = FleetConfig {
            replicas,
            shards: config.shards,
            data_dir: config.data_dir.join(format!("r{replicas}")),
            base: config.base_server.clone(),
            epoch_sweep: config.epoch_sweep,
        };
        let fleet = Fleet::spawn(
            fleet_config,
            keys.iter()
                .map(|k| (k.id.clone(), k.pk.clone(), k.share2.clone()))
                .collect(),
        )?;
        let topology = fleet.topology().clone();
        let rung_config = FleetLoadgenConfig {
            encrypt_ops: 0,
            ..config.base.clone()
        };

        let fault = config.fault.as_ref().filter(|_| replicas >= 2);
        let fleet = Mutex::new(fleet);
        let mut restarted = None;
        let outcome = crossbeam::thread::scope(|s| {
            let saboteur = fault.map(|fault| {
                let fleet = &fleet;
                let fault = fault.clone();
                s.spawn(move || -> io::Result<usize> {
                    let index = fault.replica.min(replicas - 1);
                    std::thread::sleep(fault.delay);
                    fleet.lock().expect("fleet lock").kill_replica(index)?;
                    std::thread::sleep(fault.downtime);
                    fleet.lock().expect("fleet lock").restart_replica(index)?;
                    Ok(index)
                })
            });
            let outcome = run_fleet_loadgen(&topology, &material, &rung_config, rng);
            if let Some(handle) = saboteur {
                if let Ok(Ok(index)) = handle.join() {
                    restarted = Some(index);
                }
            }
            outcome
        });
        let fleet = fleet.into_inner().expect("fleet lock");
        fleet.shutdown()?;
        rungs.push(FleetLadderRung {
            replicas,
            topology,
            outcome,
            restarted_replica: restarted,
        });
    }
    Ok(rungs)
}
