//! Per-shard epoch coordination.
//!
//! The DLR security model (Def. 3.1) counts leakage per *leakage period*,
//! delimited by share refreshes. A naive fleet would refresh with a
//! fleet-wide pause — stop the world, rotate every key, resume. This
//! coordinator keeps epoch boundaries **shard-local**: kicking shard `s`
//! touches only the replica owning `s`; every other replica keeps serving
//! decrypts with zero coordination. That is exactly the locality the
//! two-device model permits — refresh is a per-key (P1, P2) protocol, so
//! there is nothing to synchronise across keys that live on different
//! replicas.
//!
//! `force_epoch` on a replica is asynchronous (the server's scheduler
//! thread runs the hook); [`EpochCoordinator::kick_shard_sync`] adds a
//! bounded wait for the boundary to actually land, which tests use to
//! assert *other* replicas' epochs never move.

use crate::fleet::Fleet;
use dlr_curve::Pairing;
use std::io;
use std::time::{Duration, Instant};

/// Coordinates shard-local epoch boundaries across a [`Fleet`].
pub struct EpochCoordinator<'a, E: Pairing> {
    fleet: &'a Fleet<E>,
}

impl<'a, E: Pairing> EpochCoordinator<'a, E> {
    /// Wrap a fleet. The coordinator holds no state of its own — epochs
    /// live in each replica's scheduler.
    pub fn new(fleet: &'a Fleet<E>) -> Self {
        Self { fleet }
    }

    /// The replica index owning `shard` on the fleet's ring.
    pub fn replica_for_shard(&self, shard: usize) -> usize {
        shard % self.fleet.replica_count().max(1)
    }

    /// Trigger an epoch boundary on the single replica owning `shard`.
    /// Asynchronous; returns the owning replica index. Errors if that
    /// replica is down.
    pub fn kick_shard(&self, shard: usize) -> io::Result<usize> {
        let replica = self.replica_for_shard(shard);
        let handle = self.fleet.handle(replica).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotConnected,
                format!("replica {replica} (owner of shard {shard}) is down"),
            )
        })?;
        handle.force_epoch();
        Ok(replica)
    }

    /// [`kick_shard`](Self::kick_shard), then wait (bounded by `timeout`)
    /// for the owning replica's epoch counter to advance past its value
    /// at call time. Returns `(replica, epoch_after)`.
    pub fn kick_shard_sync(&self, shard: usize, timeout: Duration) -> io::Result<(usize, u64)> {
        let replica = self.replica_for_shard(shard);
        let before = self
            .epoch_of_replica(replica)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "replica is down"))?;
        self.kick_shard(shard)?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.epoch_of_replica(replica) {
                Some(now) if now > before => return Ok((replica, now)),
                Some(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Some(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "epoch boundary did not land within timeout",
                    ))
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "replica went down while waiting for epoch",
                    ))
                }
            }
        }
    }

    /// Kick the shard owning `key_id` (resolves the ring position first).
    /// Returns the owning replica index.
    pub fn kick_key(&self, key_id: &[u8]) -> io::Result<usize> {
        let replica = self.fleet.owner_of(key_id);
        let shard = dlr_protocol::shard_of(key_id, self.fleet.topology().shards as usize);
        debug_assert_eq!(self.replica_for_shard(shard), replica);
        self.kick_shard(shard)
    }

    /// Current epoch counter of replica `index` (`None` if down).
    pub fn epoch_of_replica(&self, index: usize) -> Option<u64> {
        self.fleet.handle(index).map(|h| h.epoch())
    }

    /// Epoch counters for every replica seat (`None` for killed seats).
    pub fn epochs(&self) -> Vec<Option<u64>> {
        (0..self.fleet.replica_count())
            .map(|i| self.epoch_of_replica(i))
            .collect()
    }

    /// Sweep an epoch boundary across every *running* replica, staggered
    /// by `gap` so no two replicas refresh at the same instant — a rolling
    /// refresh wave rather than a fleet-wide pause. Returns the replicas
    /// kicked, in order.
    pub fn sweep_staggered(&self, gap: Duration) -> Vec<usize> {
        let mut kicked = Vec::new();
        for index in 0..self.fleet.replica_count() {
            let Some(handle) = self.fleet.handle(index) else {
                continue;
            };
            if !kicked.is_empty() {
                std::thread::sleep(gap);
            }
            handle.force_epoch();
            kicked.push(index);
        }
        kicked
    }
}
