//! Property-based tests for the wire codec, transports and the device
//! memory model.

use bytes::Bytes;
use dlr_protocol::transport::{self, Transport};
use dlr_protocol::{Decoder, Encoder, SecretMemory};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip_mixed(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..200),
        seq in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..50), 0..8),
    ) {
        let mut e = Encoder::new();
        e.put_u8(a).put_u32(b).put_u64(c).put_bytes(&blob);
        e.put_bytes_seq(seq.iter().map(Vec::as_slice));
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(d.get_u8().unwrap(), a);
        prop_assert_eq!(d.get_u32().unwrap(), b);
        prop_assert_eq!(d.get_u64().unwrap(), c);
        prop_assert_eq!(d.get_bytes().unwrap(), &blob[..]);
        let got: Vec<Vec<u8>> = d.get_bytes_seq().unwrap().iter().map(|s| s.to_vec()).collect();
        prop_assert_eq!(got, seq);
        d.finish().unwrap();
    }

    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        // no sequence of reads may panic
        let mut d = Decoder::new(&bytes);
        let _ = d.get_u32();
        let _ = d.get_bytes();
        let _ = d.get_bytes_seq();
        let _ = d.get_u64();
        let _ = d.finish();
    }

    #[test]
    fn truncated_input_always_errors(
        blob in proptest::collection::vec(any::<u8>(), 1..100),
        cut in 0usize..100,
    ) {
        let mut e = Encoder::new();
        e.put_bytes(&blob);
        let buf = e.finish();
        let cut = cut.min(buf.len() - 1);
        let mut d = Decoder::new(&buf[..cut]);
        prop_assert!(d.get_bytes().is_err());
    }

    #[test]
    fn duplex_preserves_order(msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..12)) {
        let (mut a, mut b) = transport::duplex();
        for m in &msgs {
            a.send(Bytes::from(m.clone())).unwrap();
        }
        for m in &msgs {
            prop_assert_eq!(b.recv().unwrap(), Bytes::from(m.clone()));
        }
    }

    #[test]
    fn secret_memory_bits_consistent(cells in proptest::collection::vec((any::<u8>(), proptest::collection::vec(any::<u8>(), 0..40)), 0..8)) {
        let mut mem = SecretMemory::new();
        for (name, content) in &cells {
            mem.store(&format!("cell-{name}"), content.clone());
        }
        let view = mem.view();
        prop_assert_eq!(view.total_bits(), view.flatten().len() * 8);
        // bit() agrees with flatten()
        let flat = view.flatten();
        for i in 0..view.total_bits() {
            let expect = (flat[i / 8] >> (7 - i % 8)) & 1 == 1;
            prop_assert_eq!(view.bit(i), Some(expect));
        }
        prop_assert_eq!(view.bit(view.total_bits()), None);
    }

    #[test]
    fn erase_always_clears(cells in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..20), 1..6)) {
        let mut mem = SecretMemory::new();
        for (i, c) in cells.iter().enumerate() {
            mem.store(&format!("c{i}"), c.clone());
        }
        mem.erase_all();
        prop_assert_eq!(mem.total_bits(), 0);
        prop_assert!(mem.view().cells().is_empty());
    }
}
