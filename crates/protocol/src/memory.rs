//! The device memory model of §3.2.
//!
//! Each computing device's memory is split into:
//!
//! * **public memory** — the public key, public randomness, inputs/outputs
//!   of computations: visible to the adversary *in its entirety*;
//! * **secret memory** — the secret key share, secret randomness, and
//!   intermediate computation values: visible only through length-shrinking
//!   leakage functions.
//!
//! Scheme parties in `dlr-core` *mirror* their typed secret state into a
//! [`SecretMemory`] as canonical bytes, cell by cell, so that leakage
//! functions (chosen by the adversary in `dlr-leakage`) operate on the
//! actual in-memory representation — not on a convenient abstraction.
//! Erasing a cell zeroises it volatibly ([`dlr_math::Erase`] semantics),
//! implementing the requirement of Def. 3.1 that refreshed shares are
//! erased.

use dlr_math::erase::erase_bytes;
use std::collections::BTreeMap;

/// A read-only snapshot of a device's secret memory, handed to leakage
/// functions. Cells appear in deterministic (name-sorted) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecretView {
    cells: Vec<(String, Vec<u8>)>,
}

impl SecretView {
    /// The named cells, in deterministic order.
    pub fn cells(&self) -> &[(String, Vec<u8>)] {
        &self.cells
    }

    /// Look up one cell by name.
    pub fn cell(&self, name: &str) -> Option<&[u8]> {
        self.cells
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// All cells concatenated (the "bit string of the secret memory").
    pub fn flatten(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (_, v) in &self.cells {
            out.extend_from_slice(v);
        }
        out
    }

    /// Size of the secret memory in bits.
    pub fn total_bits(&self) -> usize {
        self.cells.iter().map(|(_, v)| v.len() * 8).sum()
    }

    /// Extract bit `i` of the flattened secret memory (MSB-first per byte).
    pub fn bit(&self, i: usize) -> Option<bool> {
        let mut idx = i;
        for (_, v) in &self.cells {
            let bits = v.len() * 8;
            if idx < bits {
                return Some((v[idx / 8] >> (7 - idx % 8)) & 1 == 1);
            }
            idx -= bits;
        }
        None
    }
}

/// Secret memory: named byte cells with erasure semantics.
#[derive(Debug, Default)]
pub struct SecretMemory {
    cells: BTreeMap<String, Vec<u8>>,
}

impl SecretMemory {
    /// Empty secret memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store (or replace) a cell. A replaced cell is erased first.
    pub fn store(&mut self, name: &str, bytes: Vec<u8>) {
        if let Some(old) = self.cells.get_mut(name) {
            erase_bytes(old);
        }
        self.cells.insert(name.to_string(), bytes);
    }

    /// Erase and remove a cell. Removing a missing cell is a no-op.
    pub fn erase(&mut self, name: &str) {
        if let Some(mut old) = self.cells.remove(name) {
            erase_bytes(&mut old);
        }
    }

    /// Erase and remove every cell whose name starts with `prefix`.
    pub fn erase_prefix(&mut self, prefix: &str) {
        let names: Vec<String> = self
            .cells
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        for n in names {
            self.erase(&n);
        }
    }

    /// Erase everything.
    pub fn erase_all(&mut self) {
        let names: Vec<String> = self.cells.keys().cloned().collect();
        for n in names {
            self.erase(&n);
        }
    }

    /// Snapshot for leakage-function evaluation.
    pub fn view(&self) -> SecretView {
        SecretView {
            cells: self
                .cells
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Size in bits.
    pub fn total_bits(&self) -> usize {
        self.cells.values().map(|v| v.len() * 8).sum()
    }

    /// Cell names currently present.
    pub fn cell_names(&self) -> Vec<&str> {
        self.cells.keys().map(String::as_str).collect()
    }

    /// True if a cell exists.
    pub fn contains(&self, name: &str) -> bool {
        self.cells.contains_key(name)
    }
}

impl Drop for SecretMemory {
    fn drop(&mut self) {
        for v in self.cells.values_mut() {
            erase_bytes(v);
        }
    }
}

/// Public memory: named byte cells, fully adversary-visible. No erasure
/// semantics needed.
#[derive(Debug, Default, Clone)]
pub struct PublicMemory {
    cells: BTreeMap<String, Vec<u8>>,
}

impl PublicMemory {
    /// Empty public memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store (or replace) a cell.
    pub fn store(&mut self, name: &str, bytes: Vec<u8>) {
        self.cells.insert(name.to_string(), bytes);
    }

    /// Read a cell.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.cells.get(name).map(Vec::as_slice)
    }

    /// Remove a cell.
    pub fn remove(&mut self, name: &str) {
        self.cells.remove(name);
    }

    /// All content flattened (adversary view).
    pub fn flatten(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (k, v) in &self.cells {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(v);
        }
        out
    }

    /// Size in bits.
    pub fn total_bits(&self) -> usize {
        self.cells.values().map(|v| v.len() * 8).sum()
    }
}

/// A computing device: public + secret memory under one name.
#[derive(Debug)]
pub struct Device {
    name: String,
    /// Secret memory (leakage-function input).
    pub secret: SecretMemory,
    /// Public memory (fully adversary-visible).
    pub public: PublicMemory,
}

impl Device {
    /// Fresh device with empty memories.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            secret: SecretMemory::new(),
            public: PublicMemory::new(),
        }
    }

    /// The device name (`"P1"`, `"P2"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_view_flatten() {
        let mut m = SecretMemory::new();
        m.store("b-share", vec![2, 2]);
        m.store("a-rand", vec![1]);
        let v = m.view();
        // name-sorted order
        assert_eq!(v.cells()[0].0, "a-rand");
        assert_eq!(v.flatten(), vec![1, 2, 2]);
        assert_eq!(v.total_bits(), 24);
        assert_eq!(v.cell("b-share"), Some(&[2u8, 2][..]));
        assert_eq!(v.cell("nope"), None);
    }

    #[test]
    fn bit_extraction() {
        let mut m = SecretMemory::new();
        m.store("x", vec![0b1000_0000, 0b0000_0001]);
        let v = m.view();
        assert_eq!(v.bit(0), Some(true));
        assert_eq!(v.bit(1), Some(false));
        assert_eq!(v.bit(15), Some(true));
        assert_eq!(v.bit(16), None);
    }

    #[test]
    fn erase_removes_and_zeroes() {
        let mut m = SecretMemory::new();
        m.store("k", vec![9; 8]);
        assert!(m.contains("k"));
        m.erase("k");
        assert!(!m.contains("k"));
        assert_eq!(m.total_bits(), 0);
        m.erase("k"); // idempotent
    }

    #[test]
    fn erase_prefix_scopes() {
        let mut m = SecretMemory::new();
        m.store("sk.0", vec![1]);
        m.store("sk.1", vec![2]);
        m.store("rand", vec![3]);
        m.erase_prefix("sk.");
        assert_eq!(m.cell_names(), vec!["rand"]);
    }

    #[test]
    fn replacing_cell_erases_old() {
        let mut m = SecretMemory::new();
        m.store("k", vec![1, 2, 3]);
        m.store("k", vec![4]);
        assert_eq!(m.view().cell("k"), Some(&[4u8][..]));
    }

    #[test]
    fn device_holds_both_memories() {
        let mut d = Device::new("P1");
        d.secret.store("share", vec![1]);
        d.public.store("pk", vec![2]);
        assert_eq!(d.name(), "P1");
        assert_eq!(d.secret.total_bits(), 8);
        assert!(d.public.flatten().ends_with(&[2]));
        assert_eq!(d.public.get("pk"), Some(&[2u8][..]));
        d.public.remove("pk");
        assert_eq!(d.public.get("pk"), None);
    }
}
