//! Hand-rolled wire codec.
//!
//! The leakage model needs byte-exact reasoning about what crosses the
//! public channel (the transcript is part of `pub^t`, the leakage-function
//! input), so the wire format is explicit rather than delegated to a serde
//! backend:
//!
//! * integers are big-endian;
//! * variable-length byte strings are `u32`-length-prefixed;
//! * sequences are a `u32` count followed by the elements.

use core::fmt;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the announced length.
    Truncated,
    /// A length prefix exceeded the sanity limit.
    LengthOverflow,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
    /// A field failed semantic validation (bad tag, off-curve point, …).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::LengthOverflow => write!(f, "length prefix exceeds limit"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after message"),
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum length accepted for a single length-prefixed field (16 MiB) —
/// protects decoders from hostile length prefixes.
pub const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

/// Append-only message encoder.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append raw bytes with **no** length prefix — for fixed-length
    /// fields whose size both sides already know (group elements,
    /// scalars). One bulk copy instead of a per-byte loop.
    pub fn put_slice(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        debug_assert!(v.len() <= MAX_FIELD_LEN);
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a sequence of length-prefixed byte strings.
    pub fn put_bytes_seq<'a>(&mut self, items: impl ExactSizeIterator<Item = &'a [u8]>) -> &mut Self {
        self.put_u32(items.len() as u32);
        for item in items {
            self.put_bytes(item);
        }
        self
    }

    /// Finish, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Streaming message decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.data.len() {
            return Err(CodecError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a big-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read exactly `n` raw bytes (no length prefix) — the bulk
    /// counterpart of [`Encoder::put_slice`] for fixed-length fields.
    pub fn get_slice(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(CodecError::LengthOverflow);
        }
        self.take(len)
    }

    /// Read a sequence of length-prefixed byte strings.
    pub fn get_bytes_seq(&mut self) -> Result<Vec<&'a [u8]>, CodecError> {
        let count = self.get_u32()? as usize;
        if count > MAX_FIELD_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let mut out = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            out.push(self.get_bytes()?);
        }
        Ok(out)
    }

    /// Assert the input is fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut e = Encoder::new();
        e.put_u8(7)
            .put_u32(0xdead_beef)
            .put_u64(0x0123_4567_89ab_cdef)
            .put_bytes(b"hello")
            .put_bytes_seq([&b"a"[..], b"bb", b""].into_iter());
        let buf = e.finish();

        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(d.get_bytes().unwrap(), b"hello");
        let seq = d.get_bytes_seq().unwrap();
        assert_eq!(seq, vec![&b"a"[..], b"bb", b""]);
        d.finish().unwrap();
    }

    #[test]
    fn raw_slice_roundtrip() {
        let mut e = Encoder::new();
        e.put_slice(b"fixed").put_u8(7);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_slice(5).unwrap(), b"fixed");
        assert_eq!(d.get_u8().unwrap(), 7);
        d.finish().unwrap();
        // over-read is a clean truncation error
        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_slice(buf.len() + 1), Err(CodecError::Truncated));
    }

    #[test]
    fn truncation_detected() {
        let mut e = Encoder::new();
        e.put_bytes(b"hello");
        let buf = e.finish();
        let mut d = Decoder::new(&buf[..buf.len() - 1]);
        assert_eq!(d.get_bytes(), Err(CodecError::Truncated));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_bytes(), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.put_u8(1);
        let mut buf = e.finish();
        buf.push(9);
        let mut d = Decoder::new(&buf);
        d.get_u8().unwrap();
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn empty_decoder() {
        let mut d = Decoder::new(&[]);
        assert_eq!(d.get_u8(), Err(CodecError::Truncated));
        assert_eq!(d.remaining(), 0);
        d.finish().unwrap();
    }
}
