//! # dlr-protocol — two-party protocol runtime with an explicit memory model
//!
//! The "distributed" substrate of the DLR workspace:
//!
//! * [`wire`] — hand-rolled, byte-exact message codec (the transcript is
//!   adversary-visible, so its format is explicit);
//! * [`transport`] — in-memory and TCP duplex channels, plus transcript
//!   recording (`comm^t` of the security game);
//! * [`memory`] — the §3.2 device model: public memory (fully visible) vs
//!   secret memory (visible only through shrinking leakage functions), with
//!   volatile erasure semantics;
//! * [`runtime`] — drives both protocol roles over real transports.
//!
//! ## Trust model
//!
//! Per the paper (§3.1), the two devices **trust each other** to follow the
//! protocols honestly; the adversary's power is continual memory leakage
//! plus full view of the public channel — not malicious parties. Decoders
//! therefore validate well-formedness (so a corrupted channel cannot cause
//! memory-unsafety or panics) but protocol logic does not defend against a
//! Byzantine peer.

pub mod memory;
pub mod runtime;
pub mod transport;
pub mod wire;

pub use memory::{Device, PublicMemory, SecretMemory, SecretView};
pub use runtime::{run_pair, RunOutput};
pub use transport::{duplex, FrameReader, FrameWriter, Transport, TransportError, WireStats};
pub use wire::{CodecError, Decoder, Encoder};
