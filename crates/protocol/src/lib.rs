//! # dlr-protocol — two-party protocol runtime with an explicit memory model
//!
//! The "distributed" substrate of the DLR workspace:
//!
//! * [`wire`] — hand-rolled, byte-exact message codec (the transcript is
//!   adversary-visible, so its format is explicit);
//! * [`transport`] — in-memory and TCP duplex channels, plus transcript
//!   recording (`comm^t` of the security game);
//! * [`memory`] — the §3.2 device model: public memory (fully visible) vs
//!   secret memory (visible only through shrinking leakage functions), with
//!   volatile erasure semantics;
//! * [`runtime`] — drives both protocol roles over real transports.
//!
//! ## Trust model
//!
//! Per the paper (§3.1), the two devices **trust each other** to follow the
//! protocols honestly; the adversary's power is continual memory leakage
//! plus full view of the public channel — not malicious parties. Decoders
//! therefore validate well-formedness (so a corrupted channel cannot cause
//! memory-unsafety or panics) but protocol logic does not defend against a
//! Byzantine peer.
//!
//! ## Reply status bytes and the error-code space
//!
//! Every reply frame of the request/reply protocol built on this codec
//! (`dlr_core::driver`) opens with one status byte: `0x00` (`REPLY_OK`,
//! success body follows) or `0xFF` (`REPLY_ERR`, a structured error frame
//! follows). An error frame is `code: u8` + length-prefixed UTF-8 detail.
//! The code space is closed and versioned with the wire protocol:
//!
//! | byte | code | retryable? |
//! |------|------|------------|
//! | 1 | `BadRequest` — body failed to decode/validate | no |
//! | 2 | `UnknownTag` — request tag byte unassigned | no |
//! | 3 | `UnknownKey` — key id held by no replica | no |
//! | 4 | `StaleGeneration` — session outdated by a refresh | after re-hello |
//! | 5 | `Busy` — server at its session limit | after jittered backoff |
//! | 6 | `Internal` — server-side failure | at most once |
//! | 7 | `NotMine` — key owned by another replica; detail carries the owner address hint | re-route, then retry |
//!
//! The enum itself (`dlr_core::driver::ErrorCode`) carries an `ALL` table
//! and an exhaustive round-trip test, so a code added without updating the
//! table fails the build, not just the docs.

pub mod memory;
pub mod runtime;
pub mod transport;
pub mod wire;

pub use memory::{Device, PublicMemory, SecretMemory, SecretView};
pub use runtime::{run_pair, RunOutput};
pub use transport::{duplex, FrameReader, FrameWriter, Transport, TransportError, WireStats};
pub use wire::{CodecError, Decoder, Encoder};

/// Which shard a key id belongs to, out of `shards` total.
///
/// FNV-1a over the id bytes, reduced modulo the shard count — stable
/// across runs and platforms, so tests and operators can predict key
/// placement, and shared between the server keyring and the client-side
/// cluster router (both sides of the wire must agree on the ring).
/// `shards == 0` is treated as a single shard.
pub fn shard_of(id: &[u8], shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}
