//! Transports for the two-party protocols.
//!
//! The paper's devices communicate over a **public channel**; anything sent
//! here is, by definition, visible to the adversary. The
//! [`RecordingTransport`] wrapper captures the transcript (`comm^t`) so the
//! security game can hand it to leakage functions as part of `pub^t`.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Transport failure.
#[derive(Debug)]
pub enum TransportError {
    /// The peer hung up.
    Disconnected,
    /// A read or write deadline expired before the peer produced data.
    /// Distinct from [`TransportError::Disconnected`]: the connection is
    /// still open, the peer is merely stalled — callers may retry or give
    /// up without treating the stream as dead.
    TimedOut,
    /// Underlying I/O failure (TCP transport).
    Io(std::io::Error),
    /// Frame exceeded the sanity limit.
    FrameTooLarge(usize),
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::TimedOut => write!(f, "transport deadline expired"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            // Both kinds occur for expired socket deadlines depending on
            // platform: unix reports `WouldBlock`, windows `TimedOut`.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::TimedOut
            }
            // `read_exact` on a cleanly closed stream.
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => TransportError::Disconnected,
            _ => TransportError::Io(e),
        }
    }
}

/// Maximum frame size (64 MiB).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// A bidirectional, message-oriented channel endpoint.
pub trait Transport: Send {
    /// Send one message.
    fn send(&mut self, msg: Bytes) -> Result<(), TransportError>;
    /// Receive one message (blocking).
    fn recv(&mut self) -> Result<Bytes, TransportError>;
}

/// In-memory duplex endpoint backed by crossbeam channels.
#[derive(Debug)]
pub struct InMemoryTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Create a connected pair of in-memory endpoints.
pub fn duplex() -> (InMemoryTransport, InMemoryTransport) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (
        InMemoryTransport { tx: a_tx, rx: a_rx },
        InMemoryTransport { tx: b_tx, rx: b_rx },
    )
}

impl Transport for InMemoryTransport {
    fn send(&mut self, msg: Bytes) -> Result<(), TransportError> {
        self.tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<Bytes, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }
}

/// Incremental decoder for `u32`-length-prefixed frames over any byte
/// stream, usable with nonblocking sockets.
///
/// [`FrameReader::poll_frame`] pulls bytes from the source until either a
/// complete frame is assembled (`Ok(Some(frame))`) or the source has no
/// more bytes right now (`Ok(None)` on `WouldBlock`/`TimedOut`), keeping
/// partial progress buffered across calls so the stream never desyncs.
/// Reads never pull past the end of the frame currently being assembled,
/// so with a level-triggered readiness poller any following frame stays in
/// the kernel buffer and keeps the socket reporting readable.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Bytes of the in-progress frame (length prefix + body) accumulated
    /// across `poll_frame` calls.
    partial: Vec<u8>,
}

impl FrameReader {
    /// A reader with no buffered partial frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when a frame has been started but not yet completed — useful
    /// for distinguishing an idle connection from one stalled mid-frame.
    pub fn is_mid_frame(&self) -> bool {
        !self.partial.is_empty()
    }

    /// Fill `self.partial` up to `target` bytes. `Ok(true)` when the
    /// target is reached, `Ok(false)` when the source would block first.
    fn fill_to(&mut self, src: &mut impl Read, target: usize) -> Result<bool, TransportError> {
        let mut scratch = [0u8; 8192];
        while self.partial.len() < target {
            let want = (target - self.partial.len()).min(scratch.len());
            let n = match src.read(&mut scratch[..want]) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e.into()),
            };
            self.partial.extend_from_slice(&scratch[..n]);
        }
        Ok(true)
    }

    /// Advance frame assembly as far as the source allows. Returns the
    /// completed frame, or `None` if the source ran dry mid-frame (retry
    /// when the source is readable again).
    pub fn poll_frame(&mut self, src: &mut impl Read) -> Result<Option<Bytes>, TransportError> {
        if !self.fill_to(src, 4)? {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.partial[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::FrameTooLarge(len));
        }
        if !self.fill_to(src, 4 + len)? {
            return Ok(None);
        }
        let body = self.partial.split_off(4);
        self.partial.clear();
        Ok(Some(Bytes::from(body)))
    }
}

/// Incremental encoder for `u32`-length-prefixed frames over any byte
/// stream, usable with nonblocking sockets.
///
/// Frames are staged with [`FrameWriter::enqueue`] and drained with
/// [`FrameWriter::poll_flush`], which writes as much as the sink accepts
/// and reports whether the queue is empty — the nonblocking mirror of
/// `TcpTransport::send`'s `write_all`.
#[derive(Debug, Default)]
pub struct FrameWriter {
    /// Encoded-but-unwritten bytes; `pos` marks how far the sink got.
    buf: Vec<u8>,
    pos: usize,
}

impl FrameWriter {
    /// A writer with nothing queued.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage one frame (length prefix + body) for writing.
    pub fn enqueue(&mut self, msg: &Bytes) -> Result<(), TransportError> {
        if msg.len() > MAX_FRAME {
            return Err(TransportError::FrameTooLarge(msg.len()));
        }
        self.buf.extend_from_slice(&(msg.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(msg);
        Ok(())
    }

    /// True while staged bytes remain unwritten.
    pub fn has_pending(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Bytes staged but not yet accepted by the sink.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Write staged bytes until the queue drains (`Ok(true)`) or the sink
    /// would block (`Ok(false)`; retry when the sink is writable again).
    pub fn poll_flush(&mut self, dst: &mut impl Write) -> Result<bool, TransportError> {
        while self.pos < self.buf.len() {
            match dst.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// TCP endpoint with `u32`-length-prefixed frames.
///
/// Supports read deadlines ([`TcpTransport::set_read_timeout`]): a stalled
/// peer surfaces as [`TransportError::TimedOut`] instead of wedging the
/// caller forever. Partial frames are buffered internally (via
/// [`FrameReader`]), so a timed-out [`Transport::recv`] can safely be
/// retried — the stream never desyncs.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    reader: FrameReader,
}

impl TcpTransport {
    /// Wrap an established stream.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            reader: FrameReader::new(),
        }
    }

    /// Set (or clear) the read deadline on the underlying socket. While a
    /// deadline is set, [`Transport::recv`] returns
    /// [`TransportError::TimedOut`] when no complete frame arrives in time;
    /// the call may be retried without losing stream position.
    pub fn set_read_timeout(
        &self,
        timeout: Option<std::time::Duration>,
    ) -> Result<(), TransportError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Enable/disable Nagle's algorithm. The protocols here are strict
    /// request/response ping-pong, so coalescing delays (40ms+ on some
    /// stacks) dominate round latency — servers and latency-sensitive
    /// clients should disable it.
    pub fn set_nodelay(&self, nodelay: bool) -> Result<(), TransportError> {
        self.stream.set_nodelay(nodelay)?;
        Ok(())
    }

    /// The peer's socket address.
    pub fn peer_addr(&self) -> Result<std::net::SocketAddr, TransportError> {
        Ok(self.stream.peer_addr()?)
    }

}

impl Transport for TcpTransport {
    fn send(&mut self, msg: Bytes) -> Result<(), TransportError> {
        if msg.len() > MAX_FRAME {
            return Err(TransportError::FrameTooLarge(msg.len()));
        }
        self.stream.write_all(&(msg.len() as u32).to_be_bytes())?;
        self.stream.write_all(&msg)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Bytes, TransportError> {
        // On a blocking socket `poll_frame` returning `None` means the
        // read deadline expired mid-frame; progress is preserved for a
        // retry, matching the historical resumable-timeout contract.
        match self.reader.poll_frame(&mut self.stream)? {
            Some(frame) => Ok(frame),
            None => Err(TransportError::TimedOut),
        }
    }
}

/// Direction of a recorded transcript entry, from the wrapped endpoint's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Message sent by this endpoint.
    Sent,
    /// Message received by this endpoint.
    Received,
}

/// A shared, append-only record of everything that crossed the channel.
pub type Transcript = Arc<Mutex<Vec<(Direction, Bytes)>>>;

/// Create an empty shared transcript.
pub fn new_transcript() -> Transcript {
    Arc::new(Mutex::new(Vec::new()))
}

/// Total bytes currently recorded in a transcript.
pub fn transcript_bytes(t: &Transcript) -> usize {
    t.lock().iter().map(|(_, b)| b.len()).sum()
}

/// Flatten a transcript into a single byte string (leakage-function input).
pub fn transcript_flatten(t: &Transcript) -> Vec<u8> {
    let guard = t.lock();
    let mut out = Vec::new();
    for (dir, bytes) in guard.iter() {
        out.push(match dir {
            Direction::Sent => 0x01,
            Direction::Received => 0x02,
        });
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Wire-level statistics observed at one endpoint of a protocol run.
///
/// Collected by [`RecordingTransport`] alongside the transcript and
/// surfaced through `RunOutput::wire` so benchmarks can report
/// communication cost without re-parsing the transcript.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Messages sent by this endpoint.
    pub frames_sent: u64,
    /// Messages received by this endpoint.
    pub frames_received: u64,
    /// Payload bytes sent (framing overhead excluded).
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Wall-clock latency of each send→receive round, in nanoseconds: the
    /// time from this endpoint's first send of a round until the reply
    /// that ends it arrives.
    pub round_latency_ns: Vec<u64>,
}

impl WireStats {
    /// Number of completed send→receive rounds.
    pub fn rounds(&self) -> u64 {
        self.round_latency_ns.len() as u64
    }

    /// Total payload bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Sum of all per-round latencies, in nanoseconds.
    pub fn total_latency_ns(&self) -> u64 {
        self.round_latency_ns.iter().sum()
    }

    /// Fold another endpoint-run's statistics into this one.
    pub fn merge(&mut self, other: &WireStats) {
        self.frames_sent += other.frames_sent;
        self.frames_received += other.frames_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.round_latency_ns
            .extend_from_slice(&other.round_latency_ns);
    }
}

/// Shared handle to live wire statistics (one writer, any readers).
pub type WireStatsHandle = Arc<Mutex<WireStats>>;

/// Transport wrapper that appends every message to a [`Transcript`] and
/// accumulates [`WireStats`].
pub struct RecordingTransport<T: Transport> {
    inner: T,
    transcript: Transcript,
    stats: WireStatsHandle,
    /// Start of the current send→receive round (set on the first send
    /// after a receive, consumed by the next receive).
    round_start: Option<std::time::Instant>,
}

impl<T: Transport> RecordingTransport<T> {
    /// Wrap `inner`, recording into `transcript`.
    pub fn new(inner: T, transcript: Transcript) -> Self {
        Self {
            inner,
            transcript,
            stats: Arc::new(Mutex::new(WireStats::default())),
            round_start: None,
        }
    }

    /// The shared transcript handle.
    pub fn transcript(&self) -> Transcript {
        Arc::clone(&self.transcript)
    }

    /// Shared handle to the statistics collected so far (updates live as
    /// the wrapped transport is used).
    pub fn stats_handle(&self) -> WireStatsHandle {
        Arc::clone(&self.stats)
    }

    /// Snapshot of the statistics collected so far.
    pub fn wire_stats(&self) -> WireStats {
        self.stats.lock().clone()
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn send(&mut self, msg: Bytes) -> Result<(), TransportError> {
        self.transcript
            .lock()
            .push((Direction::Sent, msg.clone()));
        {
            let mut s = self.stats.lock();
            s.frames_sent += 1;
            s.bytes_sent += msg.len() as u64;
        }
        if self.round_start.is_none() {
            self.round_start = Some(std::time::Instant::now());
        }
        self.inner.send(msg)
    }

    fn recv(&mut self) -> Result<Bytes, TransportError> {
        let msg = self.inner.recv()?;
        self.transcript
            .lock()
            .push((Direction::Received, msg.clone()));
        let mut s = self.stats.lock();
        s.frames_received += 1;
        s.bytes_received += msg.len() as u64;
        if let Some(t0) = self.round_start.take() {
            s.round_latency_ns
                .push(t0.elapsed().as_nanos() as u64);
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn in_memory_duplex_roundtrip() {
        let (mut a, mut b) = duplex();
        a.send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"ping"));
        b.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(a.recv().unwrap(), Bytes::from_static(b"pong"));
    }

    #[test]
    fn disconnected_peer_errors() {
        let (mut a, b) = duplex();
        drop(b);
        assert!(matches!(
            a.send(Bytes::from_static(b"x")),
            Err(TransportError::Disconnected)
        ));
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap());
            t.send(Bytes::from_static(b"hello over tcp")).unwrap();
            t.recv().unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream);
        let got = server.recv().unwrap();
        assert_eq!(got, Bytes::from_static(b"hello over tcp"));
        server.send(Bytes::from_static(b"ack")).unwrap();
        assert_eq!(client.join().unwrap(), Bytes::from_static(b"ack"));
    }

    #[test]
    fn tcp_read_timeout_surfaces_and_is_resumable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            // Send the length prefix and half the body, stall, then finish.
            stream
                .set_nodelay(true)
                .unwrap();
            let mut s = &stream;
            use std::io::Write as _;
            s.write_all(&6u32.to_be_bytes()).unwrap();
            s.write_all(b"abc").unwrap();
            s.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(120));
            s.write_all(b"def").unwrap();
            s.flush().unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream);
        server
            .set_read_timeout(Some(std::time::Duration::from_millis(30)))
            .unwrap();
        // The stalled peer times out at least once (TimedOut, not
        // Disconnected), then the retried recv completes the same frame.
        let mut timeouts = 0;
        let got = loop {
            match server.recv() {
                Ok(frame) => break frame,
                Err(TransportError::TimedOut) => timeouts += 1,
                Err(e) => panic!("unexpected transport error: {e}"),
            }
            assert!(timeouts < 50, "frame never completed");
        };
        assert!(timeouts >= 1, "expected at least one timeout");
        assert_eq!(got, Bytes::from_static(b"abcdef"));
        client.join().unwrap();
    }

    #[test]
    fn tcp_clean_close_is_disconnected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let _ = TcpStream::connect(addr).unwrap();
            // Drop immediately: server should see a clean disconnect.
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream);
        assert!(matches!(
            server.recv(),
            Err(TransportError::Disconnected)
        ));
        client.join().unwrap();
    }

    /// A `Read`/`Write` stub that yields its scripted chunks one at a
    /// time, interleaving `WouldBlock` between them like a nonblocking
    /// socket whose peer dribbles bytes.
    struct Dribble {
        chunks: std::collections::VecDeque<Vec<u8>>,
        ready: bool,
        written: Vec<u8>,
        /// Max bytes each `write` accepts before blocking (0 = always block).
        write_budget: usize,
    }

    impl Dribble {
        fn new(chunks: Vec<Vec<u8>>) -> Self {
            Self {
                chunks: chunks.into(),
                ready: false,
                written: Vec::new(),
                write_budget: usize::MAX,
            }
        }
    }

    impl std::io::Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.ready = false;
            match self.chunks.front_mut() {
                None => Ok(0),
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.pop_front();
                    }
                    Ok(n)
                }
            }
        }
    }

    impl std::io::Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.write_budget);
            if n == 0 {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_reader_resumes_across_would_block() {
        let mut frame = 6u32.to_be_bytes().to_vec();
        frame.extend_from_slice(b"abcdef");
        // Split the frame awkwardly: mid-prefix and mid-body.
        let mut src = Dribble::new(vec![
            frame[..2].to_vec(),
            frame[2..7].to_vec(),
            frame[7..].to_vec(),
        ]);
        let mut reader = FrameReader::new();
        let mut polls = 0;
        let got = loop {
            polls += 1;
            assert!(polls < 32, "frame never completed");
            match reader.poll_frame(&mut src).unwrap() {
                Some(f) => break f,
                None => continue,
            }
        };
        assert_eq!(got, Bytes::from_static(b"abcdef"));
        assert!(!reader.is_mid_frame());
        assert!(polls > 3, "expected interleaved WouldBlock returns");
    }

    #[test]
    fn frame_reader_rejects_oversized_and_reports_eof() {
        let mut reader = FrameReader::new();
        let mut huge = Dribble::new(vec![u32::MAX.to_be_bytes().to_vec()]);
        let err = loop {
            match reader.poll_frame(&mut huge) {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("oversized frame accepted"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TransportError::FrameTooLarge(_)));

        let mut reader = FrameReader::new();
        let mut eof = Dribble::new(vec![3u32.to_be_bytes().to_vec()]);
        let err = loop {
            match reader.poll_frame(&mut eof) {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("truncated frame accepted"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TransportError::Disconnected));
    }

    #[test]
    fn frame_writer_drains_across_partial_writes() {
        let mut writer = FrameWriter::new();
        writer.enqueue(&Bytes::from_static(b"hello")).unwrap();
        writer.enqueue(&Bytes::from_static(b"world!")).unwrap();
        assert!(writer.has_pending());
        assert_eq!(writer.pending_bytes(), 4 + 5 + 4 + 6);

        let mut sink = Dribble::new(vec![]);
        sink.write_budget = 3; // force many partial writes
        let mut flushes = 0;
        while !writer.poll_flush(&mut sink).unwrap() {
            flushes += 1;
            assert!(flushes < 100, "writer never drained");
        }
        assert!(!writer.has_pending());

        let mut expect = 5u32.to_be_bytes().to_vec();
        expect.extend_from_slice(b"hello");
        expect.extend_from_slice(&6u32.to_be_bytes());
        expect.extend_from_slice(b"world!");
        assert_eq!(sink.written, expect);

        // A decoder sees the two frames intact.
        let mut reader = FrameReader::new();
        let mut replay = Dribble::new(vec![sink.written.clone()]);
        let mut frames = Vec::new();
        while frames.len() < 2 {
            if let Some(f) = reader.poll_frame(&mut replay).unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames[0], Bytes::from_static(b"hello"));
        assert_eq!(frames[1], Bytes::from_static(b"world!"));
    }

    #[test]
    fn frame_writer_blocked_sink_reports_pending() {
        let mut writer = FrameWriter::new();
        writer.enqueue(&Bytes::from_static(b"x")).unwrap();
        let mut sink = Dribble::new(vec![]);
        sink.write_budget = 0; // sink accepts nothing
        assert!(!writer.poll_flush(&mut sink).unwrap());
        assert!(writer.has_pending());
        assert_eq!(writer.pending_bytes(), 5);
        // Oversized frames are rejected before anything is staged.
        let huge = Bytes::from(vec![0u8; MAX_FRAME + 1]);
        assert!(matches!(
            writer.enqueue(&huge),
            Err(TransportError::FrameTooLarge(_))
        ));
        assert_eq!(writer.pending_bytes(), 5);
    }

    #[test]
    fn recording_captures_both_directions() {
        let (a, mut b) = duplex();
        let transcript = new_transcript();
        let mut rec = RecordingTransport::new(a, Arc::clone(&transcript));
        rec.send(Bytes::from_static(b"one")).unwrap();
        b.send(Bytes::from_static(b"two")).unwrap();
        let _ = rec.recv().unwrap();
        let log = transcript.lock();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, Direction::Sent);
        assert_eq!(log[1].0, Direction::Received);
        drop(log);
        assert_eq!(transcript_bytes(&transcript), 6);
        let flat = transcript_flatten(&transcript);
        assert!(flat.windows(3).any(|w| w == b"one"));
        assert!(flat.windows(3).any(|w| w == b"two"));
    }
}
