//! Transports for the two-party protocols.
//!
//! The paper's devices communicate over a **public channel**; anything sent
//! here is, by definition, visible to the adversary. The
//! [`RecordingTransport`] wrapper captures the transcript (`comm^t`) so the
//! security game can hand it to leakage functions as part of `pub^t`.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Transport failure.
#[derive(Debug)]
pub enum TransportError {
    /// The peer hung up.
    Disconnected,
    /// Underlying I/O failure (TCP transport).
    Io(std::io::Error),
    /// Frame exceeded the sanity limit.
    FrameTooLarge(usize),
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Maximum frame size (64 MiB).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// A bidirectional, message-oriented channel endpoint.
pub trait Transport: Send {
    /// Send one message.
    fn send(&mut self, msg: Bytes) -> Result<(), TransportError>;
    /// Receive one message (blocking).
    fn recv(&mut self) -> Result<Bytes, TransportError>;
}

/// In-memory duplex endpoint backed by crossbeam channels.
#[derive(Debug)]
pub struct InMemoryTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Create a connected pair of in-memory endpoints.
pub fn duplex() -> (InMemoryTransport, InMemoryTransport) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (
        InMemoryTransport { tx: a_tx, rx: a_rx },
        InMemoryTransport { tx: b_tx, rx: b_rx },
    )
}

impl Transport for InMemoryTransport {
    fn send(&mut self, msg: Bytes) -> Result<(), TransportError> {
        self.tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<Bytes, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }
}

/// TCP endpoint with `u32`-length-prefixed frames.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap an established stream.
    pub fn new(stream: TcpStream) -> Self {
        Self { stream }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: Bytes) -> Result<(), TransportError> {
        if msg.len() > MAX_FRAME {
            return Err(TransportError::FrameTooLarge(msg.len()));
        }
        self.stream.write_all(&(msg.len() as u32).to_be_bytes())?;
        self.stream.write_all(&msg)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Bytes, TransportError> {
        let mut len_bytes = [0u8; 4];
        self.stream.read_exact(&mut len_bytes)?;
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > MAX_FRAME {
            return Err(TransportError::FrameTooLarge(len));
        }
        let mut buf = vec![0u8; len];
        self.stream.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }
}

/// Direction of a recorded transcript entry, from the wrapped endpoint's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Message sent by this endpoint.
    Sent,
    /// Message received by this endpoint.
    Received,
}

/// A shared, append-only record of everything that crossed the channel.
pub type Transcript = Arc<Mutex<Vec<(Direction, Bytes)>>>;

/// Create an empty shared transcript.
pub fn new_transcript() -> Transcript {
    Arc::new(Mutex::new(Vec::new()))
}

/// Total bytes currently recorded in a transcript.
pub fn transcript_bytes(t: &Transcript) -> usize {
    t.lock().iter().map(|(_, b)| b.len()).sum()
}

/// Flatten a transcript into a single byte string (leakage-function input).
pub fn transcript_flatten(t: &Transcript) -> Vec<u8> {
    let guard = t.lock();
    let mut out = Vec::new();
    for (dir, bytes) in guard.iter() {
        out.push(match dir {
            Direction::Sent => 0x01,
            Direction::Received => 0x02,
        });
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Transport wrapper that appends every message to a [`Transcript`].
pub struct RecordingTransport<T: Transport> {
    inner: T,
    transcript: Transcript,
}

impl<T: Transport> RecordingTransport<T> {
    /// Wrap `inner`, recording into `transcript`.
    pub fn new(inner: T, transcript: Transcript) -> Self {
        Self { inner, transcript }
    }

    /// The shared transcript handle.
    pub fn transcript(&self) -> Transcript {
        Arc::clone(&self.transcript)
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn send(&mut self, msg: Bytes) -> Result<(), TransportError> {
        self.transcript
            .lock()
            .push((Direction::Sent, msg.clone()));
        self.inner.send(msg)
    }

    fn recv(&mut self) -> Result<Bytes, TransportError> {
        let msg = self.inner.recv()?;
        self.transcript
            .lock()
            .push((Direction::Received, msg.clone()));
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn in_memory_duplex_roundtrip() {
        let (mut a, mut b) = duplex();
        a.send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(b.recv().unwrap(), Bytes::from_static(b"ping"));
        b.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(a.recv().unwrap(), Bytes::from_static(b"pong"));
    }

    #[test]
    fn disconnected_peer_errors() {
        let (mut a, b) = duplex();
        drop(b);
        assert!(matches!(
            a.send(Bytes::from_static(b"x")),
            Err(TransportError::Disconnected)
        ));
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn tcp_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut t = TcpTransport::new(TcpStream::connect(addr).unwrap());
            t.send(Bytes::from_static(b"hello over tcp")).unwrap();
            t.recv().unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::new(stream);
        let got = server.recv().unwrap();
        assert_eq!(got, Bytes::from_static(b"hello over tcp"));
        server.send(Bytes::from_static(b"ack")).unwrap();
        assert_eq!(client.join().unwrap(), Bytes::from_static(b"ack"));
    }

    #[test]
    fn recording_captures_both_directions() {
        let (a, mut b) = duplex();
        let transcript = new_transcript();
        let mut rec = RecordingTransport::new(a, Arc::clone(&transcript));
        rec.send(Bytes::from_static(b"one")).unwrap();
        b.send(Bytes::from_static(b"two")).unwrap();
        let _ = rec.recv().unwrap();
        let log = transcript.lock();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].0, Direction::Sent);
        assert_eq!(log[1].0, Direction::Received);
        drop(log);
        assert_eq!(transcript_bytes(&transcript), 6);
        let flat = transcript_flatten(&transcript);
        assert!(flat.windows(3).any(|w| w == b"one"));
        assert!(flat.windows(3).any(|w| w == b"two"));
    }
}
