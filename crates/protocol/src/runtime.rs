//! Two-party protocol runner.
//!
//! Scheme protocols in `dlr-core` are written as explicit state machines
//! (`P1` produces a message, `P2` responds, `P1` finishes) so tests can
//! drive them deterministically. This module provides the glue to run both
//! roles over real [`Transport`]s in separate threads — exercising the wire
//! codec end to end and recording the public transcript.

use crate::transport::{
    duplex, new_transcript, RecordingTransport, Transcript, Transport, TransportError, WireStats,
};
use bytes::Bytes;

/// Outcome of a two-party run.
#[derive(Debug)]
pub struct RunOutput<A, B> {
    /// Value returned by the first party's closure.
    pub p1: A,
    /// Value returned by the second party's closure.
    pub p2: B,
    /// Transcript recorded at `P1`'s endpoint (sent/received from P1's
    /// perspective; the channel is public, so this *is* the full
    /// communication `comm^t`).
    pub transcript: Transcript,
    /// Wire-level statistics (frames, bytes, per-round latency) observed
    /// at `P1`'s endpoint.
    pub wire: WireStats,
}

/// Run two party closures concurrently over an in-memory duplex channel,
/// recording the transcript.
///
/// # Panics
///
/// Propagates panics from either party thread.
pub fn run_pair<A, B>(
    p1: impl FnOnce(&mut dyn Transport) -> A + Send,
    p2: impl FnOnce(&mut dyn Transport) -> B + Send,
) -> RunOutput<A, B>
where
    A: Send,
    B: Send,
{
    let (t1, mut t2) = duplex();
    let transcript = new_transcript();
    let mut rec1 = RecordingTransport::new(t1, transcript.clone());
    let stats = rec1.stats_handle();

    let (out1, out2) = std::thread::scope(|scope| {
        let h2 = scope.spawn(move || p2(&mut t2));
        let out1 = p1(&mut rec1);
        let out2 = h2.join().expect("party 2 panicked");
        (out1, out2)
    });

    let wire = stats.lock().clone();
    RunOutput {
        p1: out1,
        p2: out2,
        transcript,
        wire,
    }
}

/// A simple request/response helper: send `msg`, then block for the reply.
pub fn call(t: &mut dyn Transport, msg: Bytes) -> Result<Bytes, TransportError> {
    t.send(msg)?;
    t.recv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::transcript_bytes;

    #[test]
    fn run_pair_exchanges_messages() {
        let out = run_pair(
            |t| {
                let reply = call(t, Bytes::from_static(b"2+2?")).unwrap();
                reply.to_vec()
            },
            |t| {
                let q = t.recv().unwrap();
                assert_eq!(q, Bytes::from_static(b"2+2?"));
                t.send(Bytes::from_static(b"4")).unwrap();
                "served"
            },
        );
        assert_eq!(out.p1, b"4".to_vec());
        assert_eq!(out.p2, "served");
        assert_eq!(transcript_bytes(&out.transcript), 5);
    }

    #[test]
    fn multi_round_protocol() {
        let out = run_pair(
            |t| {
                let mut acc = Vec::new();
                for i in 0..3u8 {
                    let r = call(t, Bytes::from(vec![i])).unwrap();
                    acc.push(r[0]);
                }
                acc
            },
            |t| {
                for _ in 0..3 {
                    let q = t.recv().unwrap();
                    t.send(Bytes::from(vec![q[0] * 10])).unwrap();
                }
            },
        );
        assert_eq!(out.p1, vec![0, 10, 20]);
    }
}
