//! DLR — the distributed public key encryption scheme of Construction 5.3,
//! CPA-secure against continual memory leakage.
//!
//! * **Public key** `pk = (p, g, e, e(g_1, g_2))` — the group parameters
//!   plus the single `GT` element `z = e(g_1, g_2)`; `g_1 = g^α` and `g_2`
//!   themselves are *not* published.
//! * **Key shares**: `sk_1 = (a_1, …, a_ℓ, Φ = g_2^α · ∏ a_i^{s_i})` on
//!   device `P1` and `sk_2 = (s_1, …, s_ℓ)` on device `P2` — a Πss
//!   encryption of the Boneh–Boyen master key `g_2^α` and the Πss key.
//! * **Encryption** `Enc_pk(m) = (g^t, m · z^t)` for `m ∈ GT` — two group
//!   elements, one `G`-exponentiation and one `GT`-exponentiation (the
//!   efficiency headline of §1.2.1).
//! * **Decryption** and **refresh** are the 2-party protocols of
//!   Construction 5.3, with all `P1 → P2` traffic encrypted under the
//!   HPSKE `Π_comm`.
//!
//! Parties are explicit state machines ([`Party1`], [`Party2`]) so the
//! security game can snapshot their device memories at the moments the
//! model defines; [`decrypt_local`] / [`refresh_local`] and the
//! transport-driving functions in [`crate::driver`] provide the convenient
//! APIs on top.

use crate::codec::{get_group, get_hpske, groups_to_cell, put_group, put_hpske, scalars_to_cell};
use crate::error::CoreError;
use crate::hpske::{self, HpskeCiphertext, HpskeKey};
use crate::params::SchemeParams;
use crate::pss;
use dlr_curve::{Group, LazyFixedBase, LazyPreparedBatch, Pairing};
use dlr_math::FieldElement;
use dlr_protocol::{Decoder, Device, Encoder};
use rand::RngCore;

/// How `P1` produces the HPSKE ciphertexts of each time period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommMode {
    /// §5.2 remark: compute `f_i = Enc'(a_i)` over `G` first, derive the
    /// decryption-protocol `d_i` by pairing the same ciphertexts with `A`,
    /// and reuse one `sk_comm` for the whole period. Paper-faithful.
    #[default]
    Reuse,
    /// Independent fresh ciphertexts for decryption and refresh (ablation
    /// baseline; `bench_a1_reuse` compares the two).
    Fresh,
}

/// DLR public key.
#[derive(Debug, PartialEq, Eq)]
pub struct PublicKey<E: Pairing> {
    /// Derived scheme parameters (`κ`, `ℓ`, …).
    pub params: SchemeParams,
    /// `z = e(g_1, g_2)` — the only key material needed to encrypt.
    pub z: E::Gt,
    /// Lazily-built fixed-base tables for `z^t`, shared across clones.
    /// Never serialized; ignored by `PartialEq`/`Eq`.
    z_table: LazyFixedBase<E::Gt>,
}

impl<E: Pairing> PublicKey<E> {
    /// Construct from the derived parameters and `z = e(g_1, g_2)`.
    pub fn new(params: SchemeParams, z: E::Gt) -> Self {
        Self {
            params,
            z,
            z_table: LazyFixedBase::new(),
        }
    }

    /// `z^t` through the lazily-built fixed-base tables: the same group
    /// element and the same single `GT`-pow counter bump as
    /// `self.z.pow(t)`, with the doubling chain amortized across every
    /// encryption under this key.
    pub fn pow_z(&self, t: &E::Scalar) -> E::Gt {
        self.z_table.pow(&self.z, t)
    }

    /// Build all fixed-base tables this key's encrypt path uses — the
    /// `z` tables and the process-wide generator tables — now rather than
    /// on first use. Server keyrings call this outside their generation
    /// locks so sessions never pay precompute.
    pub fn warm(&self) {
        self.z_table.warm(&self.z);
        E::G1::warm_generator_tables();
        E::Gt::warm_generator_tables();
    }

    /// Whether the `z` fixed-base tables have been built (by [`warm`](Self::warm)
    /// or a first [`pow_z`](Self::pow_z)). Clones share the
    /// tables, so a warm clone means a warm original.
    pub fn tables_warm(&self) -> bool {
        self.z_table.is_warm()
    }
}

/// `P1`'s secret key share `sk_1 = (a_1, …, a_ℓ, Φ)`.
#[derive(Debug, PartialEq, Eq)]
pub struct Share1<E: Pairing> {
    /// Random group elements `a_i` (coins of the Πss encryption of
    /// `g_2^α`; discrete logs unknown to everyone).
    pub a: Vec<E::G2>,
    /// `Φ = g_2^α · ∏ a_i^{s_i}` — the masked master key.
    pub phi: E::G2,
}

/// `P2`'s secret key share `sk_2 = (s_1, …, s_ℓ)`.
#[derive(Debug, PartialEq, Eq)]
pub struct Share2<E: Pairing> {
    /// The Πss exponent vector.
    pub s: Vec<E::Scalar>,
}

/// A DLR ciphertext `(A, B) = (g^t, m · z^t)`.
#[derive(Debug, PartialEq, Eq)]
pub struct Ciphertext<E: Pairing> {
    /// `A = g^t`.
    pub big_a: E::G1,
    /// `B = m · z^t`.
    pub big_b: E::Gt,
}

impl<E: Pairing> Ciphertext<E> {
    /// Serialize (fixed length: one `G` plus one `GT` element).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        put_group(&mut enc, &self.big_a);
        put_group(&mut enc, &self.big_b);
        enc.finish()
    }

    /// Parse a serialized ciphertext.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        let big_a = get_group::<E::G1>(&mut dec)?;
        let big_b = get_group::<E::Gt>(&mut dec)?;
        dec.finish()?;
        Ok(Self { big_a, big_b })
    }

    /// Serialized length in bytes.
    pub fn byte_len() -> usize {
        E::G1::byte_len() + E::Gt::byte_len()
    }
}

/// `Gen(1^n)`: generate the public key and both secret key shares.
///
/// The secret randomness of this phase (`α`, the `s_i`) exists only inside
/// this function — the paper assumes (near-)leakage-freeness of key
/// generation, and `b_0 = Ω(log n)` leaked bits are tolerated (Thm 4.1).
pub fn keygen<E: Pairing, R: RngCore + ?Sized>(
    params: SchemeParams,
    rng: &mut R,
) -> (PublicKey<E>, Share1<E>, Share2<E>) {
    dlr_metrics::span("gen", || keygen_inner::<E, R>(params, rng))
}

fn keygen_inner<E: Pairing, R: RngCore + ?Sized>(
    params: SchemeParams,
    rng: &mut R,
) -> (PublicKey<E>, Share1<E>, Share2<E>) {
    let alpha = E::Scalar::random(rng);
    let g1 = E::G1::generator_pow(&alpha);
    let g2 = E::G2::random(rng);
    let z = E::pair(&g1, &g2);

    // master secret key of the underlying BB scheme
    let msk = g2.pow(&alpha);

    // Πss-share it: P2 gets the key, P1 gets the ciphertext.
    let pss_key = pss::generate::<E::G2, _>(params.ell, rng);
    let ct = pss::encrypt(&pss_key, &msk, rng);

    (
        PublicKey::new(params, z),
        Share1 {
            a: ct.a,
            phi: ct.c0,
        },
        Share2 { s: pss_key.s },
    )
}

/// `Enc_pk(m)`: encrypt `m ∈ GT` as `(g^t, m · z^t)`.
pub fn encrypt<E: Pairing, R: RngCore + ?Sized>(
    pk: &PublicKey<E>,
    m: &E::Gt,
    rng: &mut R,
) -> Ciphertext<E> {
    dlr_metrics::span("enc", || {
        let t = E::Scalar::random(rng);
        encrypt_with_randomness(pk, m, &t)
    })
}

/// `Enc_pk(m; t)`: encryption with explicit randomness (needed by the
/// security-game reductions and re-randomization in the storage system).
pub fn encrypt_with_randomness<E: Pairing>(
    pk: &PublicKey<E>,
    m: &E::Gt,
    t: &E::Scalar,
) -> Ciphertext<E> {
    Ciphertext {
        big_a: E::G1::generator_pow(t),
        big_b: m.op(&pk.pow_z(t)),
    }
}

/// Re-randomize a ciphertext: `(A·g^t', B·z^t')` encrypts the same message
/// under fresh randomness (used by the §4.4 storage system's refresh).
pub fn rerandomize<E: Pairing, R: RngCore + ?Sized>(
    pk: &PublicKey<E>,
    ct: &Ciphertext<E>,
    rng: &mut R,
) -> Ciphertext<E> {
    let t = E::Scalar::random(rng);
    Ciphertext {
        big_a: ct.big_a.op(&E::G1::generator_pow(&t)),
        big_b: ct.big_b.op(&pk.pow_z(&t)),
    }
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// `P1 → P2` decryption message: `Enc'(e(A,a_1)), …, Enc'(e(A,a_ℓ)),
/// Enc'(e(A,Φ)), Enc'(B)`.
#[derive(Debug, PartialEq, Eq)]
pub struct DecMsg1<E: Pairing> {
    /// `d_i = Enc'(e(A, a_i))`.
    pub d: Vec<HpskeCiphertext<E::Gt>>,
    /// `d_Φ = Enc'(e(A, Φ))`.
    pub d_phi: HpskeCiphertext<E::Gt>,
    /// `d_B = Enc'(B)`.
    pub d_b: HpskeCiphertext<E::Gt>,
}

/// `P2 → P1` decryption response: `c' = d_B · ∏ d_i^{s_i} / d_Φ`.
#[derive(Debug, PartialEq, Eq)]
pub struct DecMsg2<E: Pairing> {
    /// The combined ciphertext decrypting to the plaintext.
    pub c_prime: HpskeCiphertext<E::Gt>,
}

/// `P1 → P2` refresh message: `(Enc'(a_i), Enc'(a'_i))_{i∈[ℓ]}, Enc'(Φ)`.
#[derive(Debug, PartialEq, Eq)]
pub struct RefMsg1<E: Pairing> {
    /// `f_i = Enc'(a_i)`.
    pub f: Vec<HpskeCiphertext<E::G2>>,
    /// `f'_i = Enc'(a'_i)`.
    pub f_prime: Vec<HpskeCiphertext<E::G2>>,
    /// `f_Φ = Enc'(Φ)`.
    pub f_phi: HpskeCiphertext<E::G2>,
}

/// `P2 → P1` refresh response: `f = ∏ f'^{s'_i}_i / f^{s_i}_i · f_Φ`.
#[derive(Debug, PartialEq, Eq)]
pub struct RefMsg2<E: Pairing> {
    /// Combined ciphertext decrypting to the next `Φ'`.
    pub f: HpskeCiphertext<E::G2>,
}

macro_rules! impl_msg_codec {
    ($msg:ident, $grp:ident, { $($vecfield:ident),* } , { $($field:ident),* }) => {
        impl<E: Pairing> $msg<E> {
            /// Serialize for the wire.
            pub fn to_bytes(&self) -> Vec<u8> {
                let mut enc = Encoder::new();
                $(
                    enc.put_u32(self.$vecfield.len() as u32);
                    for ct in &self.$vecfield {
                        put_hpske(&mut enc, ct);
                    }
                )*
                $(
                    put_hpske(&mut enc, &self.$field);
                )*
                enc.finish()
            }

            /// Parse from the wire, enforcing the instance parameters.
            pub fn from_bytes(bytes: &[u8], params: &SchemeParams) -> Result<Self, CoreError> {
                let mut dec = Decoder::new(bytes);
                $(
                    let count = dec.get_u32()? as usize;
                    if count != params.ell {
                        return Err(CoreError::Protocol("unexpected vector length"));
                    }
                    let mut $vecfield = Vec::with_capacity(count);
                    for _ in 0..count {
                        $vecfield.push(get_hpske::<E::$grp>(&mut dec, params.kappa)?);
                    }
                )*
                $(
                    let $field = get_hpske::<E::$grp>(&mut dec, params.kappa)?;
                )*
                dec.finish()?;
                Ok(Self { $($vecfield,)* $($field,)* })
            }
        }
    };
}

impl_msg_codec!(DecMsg1, Gt, { d }, { d_phi, d_b });
impl_msg_codec!(DecMsg2, Gt, {}, { c_prime });
impl_msg_codec!(RefMsg1, G2, { f, f_prime }, { f_phi });
impl_msg_codec!(RefMsg2, G2, {}, { f });

// ---------------------------------------------------------------------------
// Party 1 (main device)
// ---------------------------------------------------------------------------

/// Device `P1`: holds `sk_1` (and, per period, the HPSKE key `sk_comm` and
/// its protocol randomness).
pub struct Party1<E: Pairing> {
    pk: PublicKey<E>,
    share: Share1<E>,
    device: Device,
    mode: CommMode,
    skcomm: Option<HpskeKey<E::Scalar>>,
    cached_f: Option<Vec<HpskeCiphertext<E::G2>>>,
    pending_a_prime: Option<Vec<E::G2>>,
    next_share: Option<Share1<E>>,
    /// Prepared Miller chains for `[a_1, …, a_ℓ, Φ]` — the fixed per-key
    /// second-slot pairing arguments of this period. Built at most once
    /// (warm at key load via [`Self::warm`], or lazily on the first
    /// `Fresh`-mode decrypt) and replaced wholesale when the share rolls
    /// over in [`Self::ref_complete`].
    prep_share: LazyPreparedBatch<E>,
}

impl<E: Pairing> core::fmt::Debug for Party1<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Party1(<{} share elements>)", self.share.a.len())
    }
}

impl<E: Pairing> Party1<E> {
    /// Construct `P1` from its key share, mirroring it into device memory.
    pub fn new(pk: PublicKey<E>, share: Share1<E>) -> Self {
        Self::with_mode(pk, share, CommMode::default())
    }

    /// Construct with an explicit [`CommMode`].
    pub fn with_mode(pk: PublicKey<E>, share: Share1<E>, mode: CommMode) -> Self {
        let mut device = Device::new("P1");
        device
            .secret
            .store("share.a", groups_to_cell(&share.a));
        device
            .secret
            .store("share.phi", share.phi.to_bytes());
        Self {
            pk,
            share,
            device,
            mode,
            skcomm: None,
            cached_f: None,
            pending_a_prime: None,
            next_share: None,
            prep_share: LazyPreparedBatch::new(),
        }
    }

    /// The prepared second-slot chains for this share, `[a_1, …, a_ℓ, Φ]`
    /// in order. Built at most once per key period; preparation bumps no
    /// pairing counter.
    fn share_preps(&self) -> &[E::PreparedQ] {
        if !self.prep_share.is_warm() {
            let mut pts = self.share.a.clone();
            pts.push(self.share.phi);
            self.prep_share.warm(&pts);
        }
        self.prep_share.get(&[])
    }

    /// Build the per-key pairing caches eagerly (the prepared share chains
    /// consumed by [`CommMode::Fresh`] decryption) so the steady-state
    /// `dec_start` pays zero Miller-chain precomputation. Idempotent, and
    /// bumps no operation counter; call at key load and again after
    /// [`Self::ref_complete`] rolls the share over.
    pub fn warm(&self) {
        let _ = self.share_preps();
    }

    /// The public key.
    pub fn public_key(&self) -> &PublicKey<E> {
        &self.pk
    }

    /// The current key share (research API: exposed for experiments and
    /// tests; a production deployment would not surface this).
    pub fn share(&self) -> &Share1<E> {
        &self.share
    }

    /// Device memory (leakage functions read `device().secret`).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable device access — used by extension layers (e.g. the DIBE
    /// identity-key-generation protocol) to mirror their own secret
    /// randomness into this device's memory.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Obtain (generating if needed) this period's `sk_comm`.
    fn period_skcomm<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> HpskeKey<E::Scalar> {
        if self.skcomm.is_none() || self.mode == CommMode::Fresh {
            let key = HpskeKey::generate(self.pk.params.kappa, rng);
            self.device
                .secret
                .store("rand.skcomm", scalars_to_cell(&key.sigma));
            self.skcomm = Some(key);
        }
        self.skcomm.clone().expect("skcomm present")
    }

    /// Decryption protocol, step 1: produce [`DecMsg1`] for ciphertext
    /// `c = (A, B)`.
    pub fn dec_start<R: RngCore + ?Sized>(
        &mut self,
        ct: &Ciphertext<E>,
        rng: &mut R,
    ) -> DecMsg1<E> {
        dlr_metrics::span("dec.p1.start", || self.dec_start_inner(ct, rng))
    }

    fn dec_start_inner<R: RngCore + ?Sized>(
        &mut self,
        ct: &Ciphertext<E>,
        rng: &mut R,
    ) -> DecMsg1<E> {
        let key = self.period_skcomm(rng);
        let (d, e_phi): (Vec<HpskeCiphertext<E::Gt>>, E::Gt) = match self.mode {
            CommMode::Reuse => {
                // Every pairing in this mode has A as its first slot: walk
                // A's Miller chain once and replay it (ℓ·(κ+1) + 1
                // evaluations). f_i = Enc'(a_i) over G with fresh
                // direct-sampled coins; d_i = coordinate-wise pairing of
                // f_i with A.
                let prep_a = E::prepare(&ct.big_a);
                let f: Vec<HpskeCiphertext<E::G2>> = self
                    .share
                    .a
                    .iter()
                    .map(|ai| hpske::encrypt(&key, ai, rng))
                    .collect();
                let mut coin_cell = Vec::new();
                for fi in &f {
                    coin_cell.extend_from_slice(&groups_to_cell(&fi.b));
                }
                self.device.secret.store("rand.dec.fcoins", coin_cell);
                let d = f
                    .iter()
                    .map(|fi| hpske::pair_ciphertext_prepared::<E>(&prep_a, fi))
                    .collect();
                let e_phi = E::pair_prepared(&prep_a, &self.share.phi);
                self.cached_f = Some(f);
                (d, e_phi)
            }
            CommMode::Fresh => {
                // Here the fixed slots are the share elements, not A: every
                // pairing reuses the per-key prepared chains (warm after
                // key load / refresh), so the steady state walks no Miller
                // chain at all — A rides in the cheap evaluation slot.
                let preps = self.share_preps();
                let ell = preps.len() - 1;
                let d = E::multi_pair_prepared_q(&ct.big_a, &preps[..ell])
                    .iter()
                    .map(|ei| hpske::encrypt(&key, ei, rng))
                    .collect();
                let e_phi = E::pair_prepared_q(&ct.big_a, &preps[ell]);
                (d, e_phi)
            }
        };
        let d_phi = hpske::encrypt(&key, &e_phi, rng);
        let d_b = hpske::encrypt(&key, &ct.big_b, rng);

        // Mirror the GT coins (secret randomness of this period).
        let mut gt_coins = Vec::new();
        if self.mode == CommMode::Fresh {
            for di in &d {
                gt_coins.extend_from_slice(&groups_to_cell(&di.b));
            }
        }
        gt_coins.extend_from_slice(&groups_to_cell(&d_phi.b));
        gt_coins.extend_from_slice(&groups_to_cell(&d_b.b));
        self.device.secret.store("rand.dec.gtcoins", gt_coins);

        // Ciphertext and (later) output are public memory.
        self.device.public.store("dec.input", ct.to_bytes());

        DecMsg1 { d, d_phi, d_b }
    }

    /// Decryption protocol, step 3: decrypt `P2`'s response to the
    /// plaintext.
    pub fn dec_finish(&mut self, msg: &DecMsg2<E>) -> Result<E::Gt, CoreError> {
        dlr_metrics::span("dec.p1.finish", || {
            let key = self
                .skcomm
                .as_ref()
                .ok_or(CoreError::Protocol("dec_finish before dec_start"))?;
            let m = hpske::decrypt(key, &msg.c_prime)
                .ok_or(CoreError::Protocol("response kappa mismatch"))?;
            self.device.public.store("dec.output", m.to_bytes());
            Ok(m)
        })
    }

    /// Refresh protocol, step 1: pick next-period coins `a'_i` and produce
    /// [`RefMsg1`].
    pub fn ref_start<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RefMsg1<E> {
        dlr_metrics::span("refresh.p1.start", || self.ref_start_inner(rng))
    }

    fn ref_start_inner<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RefMsg1<E> {
        let key = self.period_skcomm(rng);
        let a_prime: Vec<E::G2> = (0..self.pk.params.ell).map(|_| E::G2::random(rng)).collect();

        let f: Vec<HpskeCiphertext<E::G2>> = match (&self.mode, self.cached_f.take()) {
            (CommMode::Reuse, Some(cached)) => cached,
            _ => self
                .share
                .a
                .iter()
                .map(|ai| hpske::encrypt(&key, ai, rng))
                .collect(),
        };
        let f_prime: Vec<HpskeCiphertext<E::G2>> = a_prime
            .iter()
            .map(|ai| hpske::encrypt(&key, ai, rng))
            .collect();
        let f_phi = hpske::encrypt(&key, &self.share.phi, rng);

        // Mirror refresh randomness: a' and all fresh G coins.
        self.device
            .secret
            .store("rand.ref.aprime", groups_to_cell(&a_prime));
        let mut coin_cell = Vec::new();
        for ct in f.iter().chain(f_prime.iter()).chain([&f_phi]) {
            coin_cell.extend_from_slice(&groups_to_cell(&ct.b));
        }
        self.device.secret.store("rand.ref.gcoins", coin_cell);

        self.pending_a_prime = Some(a_prime);
        RefMsg1 { f, f_prime, f_phi }
    }

    /// Refresh protocol, step 3: decrypt `Φ'` and stage the next share.
    /// Call [`Self::ref_complete`] afterwards to erase the old share (the
    /// security game snapshots the device *between* these calls — that is
    /// the moment the secret memory holds both shares).
    pub fn ref_finish(&mut self, msg: &RefMsg2<E>) -> Result<(), CoreError> {
        dlr_metrics::span("refresh.p1.finish", || {
            let key = self
                .skcomm
                .as_ref()
                .ok_or(CoreError::Protocol("ref_finish before ref_start"))?;
            let a_prime = self
                .pending_a_prime
                .take()
                .ok_or(CoreError::Protocol("ref_finish before ref_start"))?;
            let phi_prime = hpske::decrypt(key, &msg.f)
                .ok_or(CoreError::Protocol("response kappa mismatch"))?;
            let next = Share1::<E> {
                a: a_prime,
                phi: phi_prime,
            };
            self.device
                .secret
                .store("share.next.a", groups_to_cell(&next.a));
            self.device
                .secret
                .store("share.next.phi", next.phi.to_bytes());
            self.next_share = Some(next);
            Ok(())
        })
    }

    /// Finish the period: promote the new share, erase the old one and all
    /// per-period randomness (Def. 3.1 erasure requirement).
    pub fn ref_complete(&mut self) -> Result<(), CoreError> {
        let next = self
            .next_share
            .take()
            .ok_or(CoreError::Protocol("ref_complete before ref_finish"))?;
        self.share = next;
        self.skcomm = None;
        self.cached_f = None;
        // The prepared chains belong to the outgoing share: swap in a cold
        // cache (clones sharing the old Arc keep their — now stale — view;
        // this party rebuilds lazily or on the next `warm`).
        self.prep_share = LazyPreparedBatch::new();
        self.device.secret.erase_prefix("rand.");
        self.device.secret.erase("share.a");
        self.device.secret.erase("share.phi");
        self.device
            .secret
            .store("share.a", groups_to_cell(&self.share.a));
        self.device
            .secret
            .store("share.phi", self.share.phi.to_bytes());
        self.device.secret.erase("share.next.a");
        self.device.secret.erase("share.next.phi");
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Party 2 (auxiliary device)
// ---------------------------------------------------------------------------

/// Device `P2`: holds `sk_2 = (s_1, …, s_ℓ)`. Its entire computation is
/// products-of-powers of received group elements — it never pairs, never
/// touches the master key, and needs no clock beyond the protocol round.
pub struct Party2<E: Pairing> {
    pk: PublicKey<E>,
    share: Share2<E>,
    device: Device,
    next_share: Option<Share2<E>>,
}

impl<E: Pairing> core::fmt::Debug for Party2<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Party2(<{} share elements>)", self.share.s.len())
    }
}

impl<E: Pairing> Party2<E> {
    /// Construct `P2` from its key share, mirroring it into device memory.
    pub fn new(pk: PublicKey<E>, share: Share2<E>) -> Self {
        let mut device = Device::new("P2");
        device.secret.store("share.s", scalars_to_cell(&share.s));
        Self {
            pk,
            share,
            device,
            next_share: None,
        }
    }

    /// The public key.
    pub fn public_key(&self) -> &PublicKey<E> {
        &self.pk
    }

    /// The current key share (research API).
    pub fn share(&self) -> &Share2<E> {
        &self.share
    }

    /// Device memory.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable device access — used by extension layers (e.g. the DIBE
    /// identity-key-generation protocol) to mirror their own secret
    /// randomness into this device's memory.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Decryption protocol, step 2: `c' = d_B · ∏ d_i^{s_i} / d_Φ`.
    pub fn dec_respond(&mut self, msg: &DecMsg1<E>) -> Result<DecMsg2<E>, CoreError> {
        dlr_metrics::span("dec.p2.respond", || {
            if msg.d.len() != self.share.s.len() {
                return Err(CoreError::Protocol("dec message length mismatch"));
            }
            let prod = HpskeCiphertext::product_of_powers(&msg.d, &self.share.s);
            let c_prime = msg.d_b.mul(&prod).div(&msg.d_phi);
            Ok(DecMsg2 { c_prime })
        })
    }

    /// Decryption step 2 over a whole batch of concurrent requests for
    /// this key: one [`BatchDecryptCtx`](dlr_curve::BatchDecryptCtx) is
    /// built from the share vector and reused across every request, so the
    /// exponent recoding and multiexp dispatch are paid once per batch
    /// instead of once per coordinate per request.
    ///
    /// Per-request semantics are **identical** to calling
    /// [`Self::dec_respond`] in a loop: each request gets its own
    /// `dec.p2.respond` span with the same operation fingerprint
    /// (`(κ+1)·ℓ` target-group exponentiations + `κ+1` mul + `κ+1` div
    /// ops), a malformed-length request fails alone with the same error,
    /// and the returned elements are bit-identical (canonical
    /// representations, same engine, same window). `bench-compare`
    /// therefore cannot tell a batch of 64 from 64 sequential calls —
    /// which is the point.
    pub fn dec_respond_batch(&mut self, msgs: &[&DecMsg1<E>]) -> Vec<Result<DecMsg2<E>, CoreError>> {
        let ctx = dlr_curve::BatchDecryptCtx::new(&self.share.s);
        msgs.iter()
            .map(|msg| {
                dlr_metrics::span("dec.p2.respond", || {
                    if msg.d.len() != self.share.s.len() {
                        return Err(CoreError::Protocol("dec message length mismatch"));
                    }
                    let prod = HpskeCiphertext::product_of_powers_ctx(&msg.d, &ctx);
                    let c_prime = msg.d_b.mul(&prod).div(&msg.d_phi);
                    Ok(DecMsg2 { c_prime })
                })
            })
            .collect()
    }

    /// Refresh protocol, step 2: choose `s'`, reply with
    /// `f = ∏ f'^{s'_i}_i / f^{s_i}_i · f_Φ`, and stage the new share.
    /// Call [`Self::ref_complete`] to erase the old share.
    pub fn ref_respond<R: RngCore + ?Sized>(
        &mut self,
        msg: &RefMsg1<E>,
        rng: &mut R,
    ) -> Result<RefMsg2<E>, CoreError> {
        dlr_metrics::span("refresh.p2.respond", || self.ref_respond_inner(msg, rng))
    }

    fn ref_respond_inner<R: RngCore + ?Sized>(
        &mut self,
        msg: &RefMsg1<E>,
        rng: &mut R,
    ) -> Result<RefMsg2<E>, CoreError> {
        let ell = self.share.s.len();
        if msg.f.len() != ell || msg.f_prime.len() != ell {
            return Err(CoreError::Protocol("ref message length mismatch"));
        }
        let s_prime: Vec<E::Scalar> = (0..ell).map(|_| E::Scalar::random(rng)).collect();

        // combined multiexp: bases = f' ++ f, exps = s' ++ (−s)
        let mut cts: Vec<HpskeCiphertext<E::G2>> = Vec::with_capacity(2 * ell);
        cts.extend(msg.f_prime.iter().cloned());
        cts.extend(msg.f.iter().cloned());
        let mut exps: Vec<E::Scalar> = Vec::with_capacity(2 * ell);
        exps.extend(s_prime.iter().copied());
        exps.extend(self.share.s.iter().map(|s| -*s));
        let f = HpskeCiphertext::product_of_powers(&cts, &exps).mul(&msg.f_phi);

        self.device
            .secret
            .store("share.next.s", scalars_to_cell(&s_prime));
        self.next_share = Some(Share2 { s: s_prime });
        Ok(RefMsg2 { f })
    }

    /// Finish the period: promote the new share and erase the old one.
    pub fn ref_complete(&mut self) -> Result<(), CoreError> {
        let next = self
            .next_share
            .take()
            .ok_or(CoreError::Protocol("ref_complete before ref_respond"))?;
        self.share = next;
        self.device.secret.erase("share.s");
        self.device.secret.erase("share.next.s");
        self.device
            .secret
            .store("share.s", scalars_to_cell(&self.share.s));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Local (in-process) protocol drivers
// ---------------------------------------------------------------------------

/// Run the full decryption protocol between co-located parties.
pub fn decrypt_local<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    p2: &mut Party2<E>,
    ct: &Ciphertext<E>,
    rng: &mut R,
) -> Result<E::Gt, CoreError> {
    dlr_metrics::span("dec", || {
        let m1 = p1.dec_start(ct, rng);
        let m2 = p2.dec_respond(&m1)?;
        p1.dec_finish(&m2)
    })
}

/// Run the full refresh protocol (including completion/erasure) between
/// co-located parties.
pub fn refresh_local<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    p2: &mut Party2<E>,
    rng: &mut R,
) -> Result<(), CoreError> {
    dlr_metrics::span("refresh", || {
        let m1 = p1.ref_start(rng);
        let m2 = p2.ref_respond(&m1, rng)?;
        p1.ref_finish(&m2)?;
        p1.ref_complete()?;
        p2.ref_complete()
    })
}


impl<E: Pairing> Clone for PublicKey<E> {
    fn clone(&self) -> Self {
        Self {
            params: self.params,
            z: self.z,
            z_table: self.z_table.clone(), // clones share the built tables
        }
    }
}


impl<E: Pairing> Clone for Share1<E> {
    fn clone(&self) -> Self {
        Self {
            a: self.a.clone(),
            phi: self.phi,
        }
    }
}


impl<E: Pairing> Clone for Share2<E> {
    fn clone(&self) -> Self {
        Self {
            s: self.s.clone(),
        }
    }
}


impl<E: Pairing> Clone for Ciphertext<E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E: Pairing> Copy for Ciphertext<E> {}


impl<E: Pairing> Clone for DecMsg1<E> {
    fn clone(&self) -> Self {
        Self {
            d: self.d.clone(),
            d_phi: self.d_phi.clone(),
            d_b: self.d_b.clone(),
        }
    }
}


impl<E: Pairing> Clone for DecMsg2<E> {
    fn clone(&self) -> Self {
        Self {
            c_prime: self.c_prime.clone(),
        }
    }
}


impl<E: Pairing> Clone for RefMsg1<E> {
    fn clone(&self) -> Self {
        Self {
            f: self.f.clone(),
            f_prime: self.f_prime.clone(),
            f_phi: self.f_phi.clone(),
        }
    }
}


impl<E: Pairing> Clone for RefMsg2<E> {
    fn clone(&self) -> Self {
        Self {
            f: self.f.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type E = Toy;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    fn small_params() -> SchemeParams {
        // tiny but honest derivation: n=16, λ=64 over the 63-bit toy order
        SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64)
    }

    fn setup(r: &mut rand::rngs::StdRng) -> (Party1<E>, Party2<E>, PublicKey<E>) {
        let (pk, s1, s2) = keygen::<E, _>(small_params(), r);
        (
            Party1::new(pk.clone(), s1),
            Party2::new(pk.clone(), s2),
            pk,
        )
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        let out = decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap();
        assert_eq!(out, m);
    }

    #[test]
    fn decrypt_after_many_refreshes() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        for t in 0..5 {
            let out = decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap();
            assert_eq!(out, m, "period {t}");
            refresh_local(&mut p1, &mut p2, &mut r).unwrap();
        }
        // shares changed but still decrypt
        let out = decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap();
        assert_eq!(out, m);
    }

    #[test]
    fn refresh_changes_both_shares() {
        let mut r = rng();
        let (mut p1, mut p2, _) = setup(&mut r);
        let a_before = p1.share().a.clone();
        let s_before = p2.share().s.clone();
        refresh_local(&mut p1, &mut p2, &mut r).unwrap();
        assert_ne!(p1.share().a, a_before);
        assert_ne!(p2.share().s, s_before);
    }

    #[test]
    fn fresh_mode_also_correct() {
        let mut r = rng();
        let (pk, s1, s2) = keygen::<E, _>(small_params(), &mut r);
        let mut p1 = Party1::with_mode(pk.clone(), s1, CommMode::Fresh);
        let mut p2 = Party2::new(pk.clone(), s2);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        for _ in 0..3 {
            assert_eq!(decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
            refresh_local(&mut p1, &mut p2, &mut r).unwrap();
        }
    }

    #[test]
    fn rerandomized_ciphertext_same_plaintext() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        let ct2 = rerandomize(&pk, &ct, &mut r);
        assert_ne!(ct.big_a, ct2.big_a);
        assert_eq!(decrypt_local(&mut p1, &mut p2, &ct2, &mut r).unwrap(), m);
    }

    #[test]
    fn ciphertext_serialization() {
        let mut r = rng();
        let (_, _, pk) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        let bytes = ct.to_bytes();
        assert_eq!(bytes.len(), Ciphertext::<E>::byte_len());
        assert_eq!(Ciphertext::<E>::from_bytes(&bytes).unwrap(), ct);
        assert!(Ciphertext::<E>::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn message_serialization_roundtrip() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        let m1 = p1.dec_start(&ct, &mut r);
        let m1b = DecMsg1::<E>::from_bytes(&m1.to_bytes(), &pk.params).unwrap();
        assert_eq!(m1, m1b);
        let m2 = p2.dec_respond(&m1b).unwrap();
        let m2b = DecMsg2::<E>::from_bytes(&m2.to_bytes(), &pk.params).unwrap();
        assert_eq!(p1.dec_finish(&m2b).unwrap(), m);

        let r1 = p1.ref_start(&mut r);
        let r1b = RefMsg1::<E>::from_bytes(&r1.to_bytes(), &pk.params).unwrap();
        assert_eq!(r1, r1b);
        let r2 = p2.ref_respond(&r1b, &mut r).unwrap();
        let r2b = RefMsg2::<E>::from_bytes(&r2.to_bytes(), &pk.params).unwrap();
        p1.ref_finish(&r2b).unwrap();
        p1.ref_complete().unwrap();
        p2.ref_complete().unwrap();
        // still consistent
        assert_eq!(decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
    }

    #[test]
    fn device_memory_lifecycle() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        assert!(p1.device().secret.contains("share.a"));
        assert!(p2.device().secret.contains("share.s"));
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        let _ = decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap();
        assert!(p1.device().secret.contains("rand.skcomm"));

        let bits_normal = p1.device().secret.total_bits();
        let m1 = p1.ref_start(&mut r);
        let m2 = p2.ref_respond(&m1, &mut r).unwrap();
        p1.ref_finish(&m2).unwrap();
        // during refresh the share memory has (at least) doubled
        assert!(p1.device().secret.contains("share.next.a"));
        assert!(p2.device().secret.contains("share.next.s"));
        assert!(p1.device().secret.total_bits() > bits_normal);

        p1.ref_complete().unwrap();
        p2.ref_complete().unwrap();
        assert!(!p1.device().secret.contains("rand.skcomm"));
        assert!(!p1.device().secret.contains("share.next.a"));
        assert!(!p2.device().secret.contains("share.next.s"));
    }

    #[test]
    fn protocol_errors_on_misuse() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        // dec_finish before dec_start
        let empty = DecMsg2::<E> {
            c_prime: HpskeCiphertext {
                b: vec![<E as Pairing>::Gt::identity(); pk.params.kappa],
                c0: <E as Pairing>::Gt::identity(),
            },
        };
        assert!(p1.dec_finish(&empty).is_err());
        // ref_finish before ref_start
        let bad = RefMsg2::<E> {
            f: HpskeCiphertext {
                b: vec![<E as Pairing>::G2::identity(); pk.params.kappa],
                c0: <E as Pairing>::G2::identity(),
            },
        };
        assert!(p1.ref_finish(&bad).is_err());
        assert!(p1.ref_complete().is_err());
        assert!(p2.ref_complete().is_err());
        // wrong-length dec message
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        let mut m1 = p1.dec_start(&ct, &mut r);
        m1.d.pop();
        assert!(p2.dec_respond(&m1).is_err());
    }

    #[test]
    fn batch_respond_matches_sequential_byte_for_byte() {
        // The batching parity contract end-to-end at the protocol layer:
        // `dec_respond_batch` must be indistinguishable from a loop of
        // `dec_respond` calls — identical reply bytes AND identical
        // operation-counter fingerprint per request.
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let msgs: Vec<DecMsg1<E>> = (0..4)
            .map(|_| {
                let m = <E as Pairing>::Gt::random(&mut r);
                let ct = encrypt(&pk, &m, &mut r);
                p1.dec_start(&ct, &mut r)
            })
            .collect();
        let (seq, seq_ops) = dlr_curve::counters::measure(|| {
            msgs.iter()
                .map(|m1| p2.dec_respond(m1).unwrap().to_bytes())
                .collect::<Vec<_>>()
        });
        let refs: Vec<&DecMsg1<E>> = msgs.iter().collect();
        let (bat, bat_ops) = dlr_curve::counters::measure(|| {
            p2.dec_respond_batch(&refs)
                .into_iter()
                .map(|res| res.unwrap().to_bytes())
                .collect::<Vec<_>>()
        });
        assert_eq!(seq, bat, "batch replies must be byte-identical");
        assert_eq!(seq_ops, bat_ops, "batch op fingerprint must match");
    }

    #[test]
    fn batch_respond_malformed_fails_alone() {
        use crate::driver::p2_handle_decrypt_batch;
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let make_body = |p1: &mut Party1<E>, r: &mut rand::rngs::StdRng| {
            let m = <E as Pairing>::Gt::random(r);
            let ct = encrypt(&pk, &m, r);
            p1.dec_start(&ct, r).to_bytes()
        };
        let good_a = make_body(&mut p1, &mut r);
        let good_b = make_body(&mut p1, &mut r);
        // sequential reference replies for the two good requests
        let expect_a = p2
            .dec_respond(&DecMsg1::<E>::from_bytes(&good_a, &pk.params).unwrap())
            .unwrap()
            .to_bytes();
        let expect_b = p2
            .dec_respond(&DecMsg1::<E>::from_bytes(&good_b, &pk.params).unwrap())
            .unwrap()
            .to_bytes();
        // a truncated frame in the middle of the batch fails alone
        let garbage = &good_a[..10];
        let bodies: Vec<&[u8]> = vec![&good_a, garbage, &good_b];
        let results = p2_handle_decrypt_batch(&mut p2, &bodies);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap(), &expect_a);
        assert!(results[1].is_err(), "malformed sibling must fail");
        assert_eq!(results[2].as_ref().unwrap(), &expect_b);
        // a wrong-length (parsed but ℓ-mismatched) request also fails alone
        let mut short = DecMsg1::<E>::from_bytes(&good_a, &pk.params).unwrap();
        short.d.pop();
        let refs: Vec<&DecMsg1<E>> = vec![&short];
        assert!(p2.dec_respond_batch(&refs)[0].is_err());
    }
}
