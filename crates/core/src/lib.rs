//! # dlr-core — distributed public key schemes secure against continual leakage
//!
//! The primary contribution of *Akavia–Goldwasser–Hazay, PODC 2012*,
//! implemented in full:
//!
//! * [`pss`] — Πss, the secret-sharing symmetric encryption (§4.1);
//! * [`hpske`] — Π_comm, homomorphic proxy secret key encryption
//!   (Def. 5.1 / Lemma 5.2);
//! * [`dlr`] — the DLR DPKE (Construction 5.3): `Gen`, `Enc`, and the
//!   two-party `Dec` / `Ref` protocols with explicit device memories;
//! * [`params`] — the κ/ℓ parameter derivation of §5.
//!
//! ## Quick start
//!
//! ```
//! use dlr_core::{dlr, params::SchemeParams};
//! use dlr_curve::{Group, Pairing, Toy};
//!
//! let mut rng = rand::thread_rng();
//! let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 64);
//! let (pk, sk1, sk2) = dlr::keygen::<Toy, _>(params, &mut rng);
//! let mut p1 = dlr::Party1::new(pk.clone(), sk1);
//! let mut p2 = dlr::Party2::new(pk.clone(), sk2);
//!
//! let m = <Toy as Pairing>::Gt::random(&mut rng);
//! let ct = dlr::encrypt(&pk, &m, &mut rng);
//! let out = dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut rng)?;
//! assert_eq!(out, m);
//! dlr::refresh_local(&mut p1, &mut p2, &mut rng)?; // same pk, new shares
//! # Ok::<(), dlr_core::CoreError>(())
//! ```

pub mod cca2;
pub mod codec;
pub mod dibe;
pub mod dlr;
pub mod driver;
pub mod error;
pub mod hpske;
pub mod ibe;
pub mod kem;
pub mod keys;
pub mod params;
pub mod party;
pub mod pss;
pub mod streaming;
pub mod storage;

pub use error::CoreError;
pub use params::SchemeParams;
