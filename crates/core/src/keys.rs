//! Serialization of key material (public keys and shares).
//!
//! The share encodings exist so deployments can provision the two devices
//! (write `sk2` onto the smart card at manufacture, say). They are
//! deliberately *not* encrypted — transporting a share is exactly as
//! sensitive as the provisioning step of the paper's model assumes — and
//! each blob carries a magic tag plus the full parameter block so a device
//! can reject keys from a mismatched instance.

use crate::codec::{get_group, get_scalar, put_group, put_scalar};
use crate::dlr::{PublicKey, Share1, Share2};
use crate::error::CoreError;
use crate::params::SchemeParams;
use dlr_curve::Pairing;
use dlr_protocol::{Decoder, Encoder};

const MAGIC_PK: u32 = 0x444c_5230; // "DLR0"
const MAGIC_SK1: u32 = 0x444c_5231;
const MAGIC_SK2: u32 = 0x444c_5232;

fn put_params(enc: &mut Encoder, p: &SchemeParams) {
    enc.put_u32(p.n);
    enc.put_u32(p.lambda);
    enc.put_u32(p.log_p);
    enc.put_u32(p.kappa as u32);
    enc.put_u32(p.ell as u32);
}

fn get_params(dec: &mut Decoder<'_>) -> Result<SchemeParams, CoreError> {
    let n = dec.get_u32()?;
    let lambda = dec.get_u32()?;
    let log_p = dec.get_u32()?;
    let kappa = dec.get_u32()? as usize;
    let ell = dec.get_u32()? as usize;
    let derived = SchemeParams::derive_for_bits(log_p, n, lambda);
    if derived.kappa != kappa || derived.ell != ell {
        return Err(CoreError::Protocol("parameter block inconsistent"));
    }
    Ok(derived)
}

impl<E: Pairing> PublicKey<E> {
    /// Serialize the public key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(MAGIC_PK);
        put_params(&mut enc, &self.params);
        put_group(&mut enc, &self.z);
        enc.finish()
    }

    /// Parse a serialized public key.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        if dec.get_u32()? != MAGIC_PK {
            return Err(CoreError::Protocol("not a DLR public key"));
        }
        let params = get_params(&mut dec)?;
        let z = get_group::<E::Gt>(&mut dec)?;
        dec.finish()?;
        Ok(Self::new(params, z))
    }
}

impl<E: Pairing> Share1<E> {
    /// Serialize `sk_1` (sensitive!).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(MAGIC_SK1);
        enc.put_u32(self.a.len() as u32);
        for a in &self.a {
            put_group(&mut enc, a);
        }
        put_group(&mut enc, &self.phi);
        enc.finish()
    }

    /// Parse `sk_1`, enforcing the instance's ℓ.
    pub fn from_bytes(bytes: &[u8], params: &SchemeParams) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        if dec.get_u32()? != MAGIC_SK1 {
            return Err(CoreError::Protocol("not a DLR share-1"));
        }
        let count = dec.get_u32()? as usize;
        if count != params.ell {
            return Err(CoreError::Protocol("share length mismatch"));
        }
        let mut a = Vec::with_capacity(count);
        for _ in 0..count {
            a.push(get_group::<E::G2>(&mut dec)?);
        }
        let phi = get_group::<E::G2>(&mut dec)?;
        dec.finish()?;
        Ok(Self { a, phi })
    }
}

impl<E: Pairing> Share2<E> {
    /// Serialize `sk_2` (sensitive!).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u32(MAGIC_SK2);
        enc.put_u32(self.s.len() as u32);
        for s in &self.s {
            put_scalar(&mut enc, s);
        }
        enc.finish()
    }

    /// Parse `sk_2`, enforcing the instance's ℓ.
    pub fn from_bytes(bytes: &[u8], params: &SchemeParams) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        if dec.get_u32()? != MAGIC_SK2 {
            return Err(CoreError::Protocol("not a DLR share-2"));
        }
        let count = dec.get_u32()? as usize;
        if count != params.ell {
            return Err(CoreError::Protocol("share length mismatch"));
        }
        let mut s = Vec::with_capacity(count);
        for _ in 0..count {
            s.push(get_scalar::<E::Scalar>(&mut dec)?);
        }
        dec.finish()?;
        Ok(Self { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlr;
    use dlr_curve::{Group, Toy};
    use rand::SeedableRng;

    type E = Toy;

    fn setup() -> (PublicKey<E>, Share1<E>, Share2<E>) {
        let mut r = rand::rngs::StdRng::seed_from_u64(111);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        dlr::keygen::<E, _>(params, &mut r)
    }

    #[test]
    fn roundtrip_all_key_material() {
        let (pk, s1, s2) = setup();
        let pk2 = PublicKey::<E>::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(pk2, pk);
        let s1b = Share1::<E>::from_bytes(&s1.to_bytes(), &pk.params).unwrap();
        assert_eq!(s1b, s1);
        let s2b = Share2::<E>::from_bytes(&s2.to_bytes(), &pk.params).unwrap();
        assert_eq!(s2b, s2);
    }

    #[test]
    fn magic_tags_disambiguate() {
        let (pk, s1, s2) = setup();
        assert!(PublicKey::<E>::from_bytes(&s1.to_bytes()).is_err());
        assert!(Share1::<E>::from_bytes(&pk.to_bytes(), &pk.params).is_err());
        assert!(Share2::<E>::from_bytes(&s1.to_bytes(), &pk.params).is_err());
        assert!(Share1::<E>::from_bytes(&s2.to_bytes(), &pk.params).is_err());
    }

    #[test]
    fn parameter_mismatch_rejected() {
        let (pk, s1, _s2) = setup();
        let other = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 256);
        assert!(Share1::<E>::from_bytes(&s1.to_bytes(), &other).is_err());
        let _ = pk;
    }

    #[test]
    fn truncation_rejected() {
        let (pk, _s1, _s2) = setup();
        let bytes = pk.to_bytes();
        assert!(PublicKey::<E>::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes;
        extended.push(0);
        assert!(PublicKey::<E>::from_bytes(&extended).is_err());
    }

    #[test]
    fn parsed_keys_actually_work() {
        let mut r = rand::rngs::StdRng::seed_from_u64(112);
        let (pk, s1, s2) = setup();
        let pk2 = PublicKey::<E>::from_bytes(&pk.to_bytes()).unwrap();
        let s1b = Share1::<E>::from_bytes(&s1.to_bytes(), &pk.params).unwrap();
        let s2b = Share2::<E>::from_bytes(&s2.to_bytes(), &pk.params).unwrap();
        let mut p1 = dlr::Party1::new(pk2.clone(), s1b);
        let mut p2 = dlr::Party2::new(pk2.clone(), s2b);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk2, &m, &mut r);
        assert_eq!(dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
    }
}
