//! Secure storage on leaky devices (§4.4, §1.1 third bullet).
//!
//! A value `s` is stored long-term on hardware that continually leaks:
//! `Enc_pk(s)` lives on a *storage device* and the key shares live on the
//! two *key devices* `P1`, `P2`. Each period, the system refreshes:
//!
//! * the stored ciphertext is **re-randomized** (so leakage about old
//!   ciphertext bytes goes stale), and
//! * the key shares run the DLR refresh protocol.
//!
//! The total leakage over the lifetime is unbounded while each period's is
//! bounded — the continual-leakage property, demonstrated end-to-end by
//! experiment F6 and the `leaky_storage` example.

use crate::dlr::{self, Party1, Party2, PublicKey, Share1, Share2};
use crate::error::CoreError;
use crate::kem::{self, HybridCiphertext};
use crate::params::SchemeParams;
use dlr_curve::{Group, Pairing};
use dlr_protocol::Device;
use rand::RngCore;

/// A secure storage system over three leaky devices.
pub struct LeakyStorage<E: Pairing> {
    pk: PublicKey<E>,
    /// Key device 1.
    pub p1: Party1<E>,
    /// Key device 2.
    pub p2: Party2<E>,
    storage: Device,
    ct: HybridCiphertext<E>,
    kem_key: E::Gt,
    periods: u64,
}

impl<E: Pairing> LeakyStorage<E> {
    /// Store `payload`, generating a fresh key pair and shares.
    pub fn store<R: RngCore + ?Sized>(
        params: SchemeParams,
        payload: &[u8],
        rng: &mut R,
    ) -> Self {
        let (pk, s1, s2) = dlr::keygen::<E, _>(params, rng);
        Self::store_with_keys(pk, s1, s2, payload, rng)
    }

    /// Store `payload` under existing key material.
    pub fn store_with_keys<R: RngCore + ?Sized>(
        pk: PublicKey<E>,
        s1: Share1<E>,
        s2: Share2<E>,
        payload: &[u8],
        rng: &mut R,
    ) -> Self {
        // Seal, remembering the KEM key so refresh can re-MAC. The KEM key
        // is *not* stored on any device — it is re-derivable only through
        // the decryption protocol; we keep it here to re-randomize without
        // a decryption round-trip (a deployment would re-derive it via the
        // protocol; experiment F6 measures both paths).
        let k = E::Gt::random(rng);
        let kem_ct = kem::seal_with_key(&pk, payload, &k, rng);
        let mut storage = Device::new("STORE");
        storage.public.store("ciphertext", storage_bytes(&kem_ct));

        Self {
            p1: Party1::new(pk.clone(), s1),
            p2: Party2::new(pk.clone(), s2),
            pk,
            storage,
            ct: kem_ct,
            kem_key: k,
            periods: 0,
        }
    }

    /// The storage device (ciphertext lives in its *public* memory — its
    /// secrecy rests entirely on the key shares).
    pub fn storage_device(&self) -> &Device {
        &self.storage
    }

    /// Number of refresh periods executed.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// The current stored ciphertext.
    pub fn ciphertext(&self) -> &HybridCiphertext<E> {
        &self.ct
    }

    /// Run one refresh period: re-randomize the stored ciphertext and
    /// refresh the key shares.
    pub fn refresh<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Result<(), CoreError> {
        self.ct = kem::reseal_randomness(&self.pk, &self.ct, &self.kem_key, rng);
        self.storage
            .public
            .store("ciphertext", storage_bytes(&self.ct));
        dlr::refresh_local(&mut self.p1, &mut self.p2, rng)?;
        self.periods += 1;
        Ok(())
    }

    /// Recover the stored payload via the distributed decryption protocol.
    pub fn retrieve<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Result<Vec<u8>, CoreError> {
        kem::open_local(&mut self.p1, &mut self.p2, &self.ct, rng)
    }
}

fn storage_bytes<E: Pairing>(ct: &HybridCiphertext<E>) -> Vec<u8> {
    let mut out = ct.kem.to_bytes();
    out.extend_from_slice(&ct.dem.body);
    out.extend_from_slice(&ct.dem.tag);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type E = Toy;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(81)
    }

    fn params() -> SchemeParams {
        SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64)
    }

    #[test]
    fn store_retrieve_roundtrip() {
        let mut r = rng();
        let mut store = LeakyStorage::<E>::store(params(), b"the crown jewels", &mut r);
        assert_eq!(store.retrieve(&mut r).unwrap(), b"the crown jewels");
    }

    #[test]
    fn retrieve_after_many_periods() {
        let mut r = rng();
        let mut store = LeakyStorage::<E>::store(params(), b"durable secret", &mut r);
        for _ in 0..5 {
            store.refresh(&mut r).unwrap();
        }
        assert_eq!(store.periods(), 5);
        assert_eq!(store.retrieve(&mut r).unwrap(), b"durable secret");
    }

    #[test]
    fn refresh_changes_stored_bytes() {
        let mut r = rng();
        let mut store = LeakyStorage::<E>::store(params(), b"payload", &mut r);
        let before = store.storage_device().public.get("ciphertext").unwrap().to_vec();
        store.refresh(&mut r).unwrap();
        let after = store.storage_device().public.get("ciphertext").unwrap().to_vec();
        assert_ne!(before, after, "ciphertext must be re-randomized");
        // payload still intact
        assert_eq!(store.retrieve(&mut r).unwrap(), b"payload");
    }

    #[test]
    fn key_shares_rotate() {
        let mut r = rng();
        let mut store = LeakyStorage::<E>::store(params(), b"p", &mut r);
        let s_before = store.p2.share().s.clone();
        store.refresh(&mut r).unwrap();
        assert_ne!(store.p2.share().s, s_before);
    }
}
