//! HPSKE — homomorphic proxy secret key encryption (Definition 5.1,
//! construction of Lemma 5.2).
//!
//! `Π_comm` encrypts the inter-device communication of the decryption and
//! refresh protocols. It is:
//!
//! * **multiplicatively homomorphic coordinate-wise**:
//!   `Dec'(c_0 · c_1) = m_0 · m_1` (Def. 5.1 part 1) — this is what lets
//!   `P2` compute on ciphertexts it cannot decrypt ("proxy");
//! * **entropy-preserving under leakage** (Def. 5.1 part 2): `ℓ` random
//!   plaintexts keep `≥ log p + 2 log(1/ε)` pseudo average min-entropy even
//!   given their ciphertexts and `λ` bits of leakage on the key, coins and
//!   plaintexts — validated *exactly* on mini groups by experiment F5.
//!
//! Construction (Lemma 5.2): `sk_comm = (σ_1, …, σ_κ) ∈ Z_p^κ`;
//! `Enc'(m) = (b_1, …, b_κ, m·∏ b_j^{σ_j})` with `b_j` random group
//! elements; `Dec'(b_1, …, b_κ, b_0) = b_0 / ∏ b_j^{σ_j}`.
//!
//! Because the key is a plain exponent vector, **one key works for both
//! `G` and `GT`** ("HPSKE for ℓ, G, GT") — which the §5.2 ciphertext-reuse
//! remark exploits: a ciphertext over `G` paired coordinate-wise with a
//! point `A` becomes a valid ciphertext over `GT` under the same key (see
//! [`pair_ciphertext`]).

use dlr_curve::{Group, Pairing};
use dlr_math::PrimeField;
use rand::RngCore;

/// HPSKE secret key `(σ_1, …, σ_κ)` — shared across every group with
/// scalar field `F`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpskeKey<F> {
    /// The exponent vector.
    pub sigma: Vec<F>,
}

impl<F: PrimeField> HpskeKey<F> {
    /// `Gen'`: sample a `κ`-element key.
    pub fn generate<R: RngCore + ?Sized>(kappa: usize, rng: &mut R) -> Self {
        Self {
            sigma: (0..kappa).map(|_| F::random(rng)).collect(),
        }
    }

    /// Key length `κ`.
    pub fn kappa(&self) -> usize {
        self.sigma.len()
    }
}

/// HPSKE ciphertext `(b_1, …, b_κ, c_0)` over a group `G`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpskeCiphertext<G> {
    /// Random coins `b_j` (group elements).
    pub b: Vec<G>,
    /// Payload component `m · ∏ b_j^{σ_j}`.
    pub c0: G,
}

/// `Enc'` with caller-chosen coins (the reuse remark requires the caller to
/// keep the coins so it can later pair them).
pub fn encrypt_with_coins<G: Group>(
    key: &HpskeKey<G::Scalar>,
    m: &G,
    coins: Vec<G>,
) -> HpskeCiphertext<G> {
    assert_eq!(coins.len(), key.sigma.len(), "coin count must equal κ");
    let mask = G::product_of_powers(&coins, &key.sigma);
    HpskeCiphertext {
        c0: m.op(&mask),
        b: coins,
    }
}

/// `Enc'`: encrypt a group element under fresh random coins.
pub fn encrypt<G: Group, R: RngCore + ?Sized>(
    key: &HpskeKey<G::Scalar>,
    m: &G,
    rng: &mut R,
) -> HpskeCiphertext<G> {
    dlr_metrics::span("hpske.enc", || {
        let coins: Vec<G> = (0..key.sigma.len()).map(|_| G::random(rng)).collect();
        encrypt_with_coins(key, m, coins)
    })
}

/// `Dec'`: recover the plaintext. Returns `None` on a length mismatch.
pub fn decrypt<G: Group>(key: &HpskeKey<G::Scalar>, ct: &HpskeCiphertext<G>) -> Option<G> {
    dlr_metrics::span("hpske.dec", || {
        if ct.b.len() != key.sigma.len() {
            return None;
        }
        let mask = G::product_of_powers(&ct.b, &key.sigma);
        Some(ct.c0.div(&mask))
    })
}

impl<G: Group> HpskeCiphertext<G> {
    /// Coordinate-wise product (Def. 5.1 part 1):
    /// `Dec'(self · rhs) = Dec'(self) · Dec'(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertexts have different `κ`.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.b.len(), rhs.b.len(), "κ mismatch");
        Self {
            b: self
                .b
                .iter()
                .zip(rhs.b.iter())
                .map(|(x, y)| x.op(y))
                .collect(),
            c0: self.c0.op(&rhs.c0),
        }
    }

    /// Coordinate-wise inverse: `Dec'(self^{-1}) = Dec'(self)^{-1}`.
    pub fn invert(&self) -> Self {
        Self {
            b: self.b.iter().map(Group::inverse).collect(),
            c0: self.c0.inverse(),
        }
    }

    /// Coordinate-wise quotient.
    pub fn div(&self, rhs: &Self) -> Self {
        self.mul(&rhs.invert())
    }

    /// Coordinate-wise power: `Dec'(self^s) = Dec'(self)^s`.
    pub fn pow(&self, s: &G::Scalar) -> Self {
        Self {
            b: self.b.iter().map(|x| x.pow(s)).collect(),
            c0: self.c0.pow(s),
        }
    }

    /// `∏ ctsᵢ^{expsᵢ}` computed coordinate-wise with one multi-
    /// exponentiation per coordinate — this is the entirety of `P2`'s
    /// per-protocol computation (the "auxiliary device is simple" claim of
    /// §1.1).
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent.
    pub fn product_of_powers(cts: &[Self], exps: &[G::Scalar]) -> Self {
        assert_eq!(cts.len(), exps.len(), "cts/exps length mismatch");
        assert!(!cts.is_empty(), "need at least one ciphertext");
        let kappa = cts[0].b.len();
        let mut b = Vec::with_capacity(kappa);
        for j in 0..kappa {
            let bases: Vec<G> = cts.iter().map(|ct| ct.b[j]).collect();
            b.push(G::product_of_powers(&bases, exps));
        }
        let bases: Vec<G> = cts.iter().map(|ct| ct.c0).collect();
        let c0 = G::product_of_powers(&bases, exps);
        Self { b, c0 }
    }

    /// [`Self::product_of_powers`] against a pre-built
    /// [`BatchDecryptCtx`](dlr_curve::BatchDecryptCtx) over the same
    /// exponent vector: identical result, identical `κ + 1` × `ℓ`
    /// exponentiation accounting, but the exponent recoding and engine
    /// dispatch are amortized across every call sharing the context — the
    /// cross-request batching path of the server (DESIGN.md §5).
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent with the context.
    pub fn product_of_powers_ctx(cts: &[Self], ctx: &dlr_curve::BatchDecryptCtx<G>) -> Self {
        assert_eq!(cts.len(), ctx.len(), "cts/ctx length mismatch");
        assert!(!cts.is_empty(), "need at least one ciphertext");
        let kappa = cts[0].b.len();
        let mut b = Vec::with_capacity(kappa);
        for j in 0..kappa {
            let bases: Vec<G> = cts.iter().map(|ct| ct.b[j]).collect();
            b.push(ctx.product_of_powers(&bases));
        }
        let bases: Vec<G> = cts.iter().map(|ct| ct.c0).collect();
        let c0 = ctx.product_of_powers(&bases);
        Self { b, c0 }
    }

    /// Serialized length for a given `κ`.
    pub fn byte_len(kappa: usize) -> usize {
        (kappa + 1) * G::byte_len()
    }
}

/// Fixed-base exponentiation tables for one HPSKE ciphertext — one
/// [`FixedBase`](dlr_curve::FixedBase) per coordinate (`κ` coins plus the
/// payload).
///
/// Worth building only when the *same* ciphertext is raised to many
/// scalars, which happens for period-fixed elements: in
/// [`CommMode::Reuse`](crate::dlr::CommMode) the encrypted share
/// coordinates `f_i` stay fixed for a whole leakage period while `P2`
/// exponentiates them once per decryption. The per-request protocol path
/// keeps [`HpskeCiphertext::product_of_powers`] (Straus) because its bases
/// are fresh every call — tables would cost more than they save there.
///
/// [`pow_fixed`](Self::pow_fixed) bumps exactly the counters
/// [`HpskeCiphertext::pow`] does (`κ+1` group pows), so op-count reports
/// are comparable across the two evaluation strategies.
#[derive(Debug, Clone)]
pub struct HpskeTables<G: Group> {
    b: Vec<dlr_curve::FixedBase<G>>,
    c0: dlr_curve::FixedBase<G>,
}

impl<G: Group> HpskeTables<G> {
    /// Precompute tables for every coordinate of `ct`. Uninstrumented
    /// (table construction is setup work, not protocol ops).
    pub fn new(ct: &HpskeCiphertext<G>) -> Self {
        Self {
            b: ct.b.iter().map(dlr_curve::FixedBase::new).collect(),
            c0: dlr_curve::FixedBase::new(&ct.c0),
        }
    }

    /// Key length `κ` of the underlying ciphertext.
    pub fn kappa(&self) -> usize {
        self.b.len()
    }

    /// Coordinate-wise power via the tables — same result and same
    /// counter footprint as [`HpskeCiphertext::pow`] on the source
    /// ciphertext.
    pub fn pow_fixed(&self, s: &G::Scalar) -> HpskeCiphertext<G> {
        HpskeCiphertext {
            b: self.b.iter().map(|t| t.pow_fixed(s)).collect(),
            c0: self.c0.pow_fixed(s),
        }
    }
}

/// The §5.2 reuse map: pair every coordinate of a `G`-ciphertext with a
/// point `A`, yielding a valid `GT`-ciphertext **of `e(A, m)` under the
/// same key**:
///
/// ```text
/// (b_1, …, b_κ, m·∏ b_j^{σ_j})  ↦  (e(A,b_1), …, e(A,b_κ), e(A,m)·∏ e(A,b_j)^{σ_j})
/// ```
pub fn pair_ciphertext<E: Pairing>(
    a: &E::G1,
    ct: &HpskeCiphertext<E::G2>,
) -> HpskeCiphertext<E::Gt> {
    pair_ciphertext_prepared::<E>(&E::prepare(a), ct)
}

/// [`pair_ciphertext`] with `A` already [`prepare`](Pairing::prepare)d —
/// the decryption protocols pair one `A` against many ciphertexts, so the
/// Miller chain of `A` is walked once per `dec_start`, not once per
/// coordinate. All `κ+1` coordinates go through one
/// [`multi_pair_prepared`](Pairing::multi_pair_prepared) call (shared final
/// exponentiation, optional worker-thread fan-out).
pub fn pair_ciphertext_prepared<E: Pairing>(
    prep: &E::Prepared,
    ct: &HpskeCiphertext<E::G2>,
) -> HpskeCiphertext<E::Gt> {
    let mut slots: Vec<E::G2> = Vec::with_capacity(ct.b.len() + 1);
    slots.extend(ct.b.iter().copied());
    slots.push(ct.c0);
    let mut paired = E::multi_pair_prepared(prep, &slots);
    let c0 = paired.pop().expect("κ+1 slots in, κ+1 out");
    HpskeCiphertext { b: paired, c0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::modgroup::{Mini1009, ModGroup};
    use dlr_curve::{Gt, Toy, G};
    use dlr_math::FieldElement;
    use rand::SeedableRng;

    type MG = ModGroup<Mini1009>;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    // Manual micro-benchmark for the encryption hot path (the numbers
    // cited in DESIGN.md §4 "Arithmetic floor" come from min-of-N runs
    // of this — criterion is too noisy on the single-core CI box):
    //   cargo test --release -p dlr-core --lib -- --ignored hpske_micro_timings --nocapture
    #[test]
    #[ignore]
    fn hpske_micro_timings() {
        use dlr_curve::Group;
        use std::time::Instant;
        let mut r = rng();
        let key = HpskeKey::<<Toy as dlr_curve::Pairing>::Scalar>::generate(3, &mut r);
        let m = G::<Toy>::random(&mut r);
        let iters = 2_000u32;
        let best = |f: &mut dyn FnMut() -> u64| (0..5).map(|_| f()).min().unwrap();
        let enc = best(&mut || {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(encrypt(&key, &m, &mut r));
            }
            t.elapsed().as_nanos() as u64 / iters as u64
        });
        let coins: Vec<G<Toy>> = (0..3).map(|_| G::random(&mut r)).collect();
        let pop = best(&mut || {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(G::<Toy>::product_of_powers(&coins, &key.sigma));
            }
            t.elapsed().as_nanos() as u64 / iters as u64
        });
        let rnd = best(&mut || {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(G::<Toy>::random(&mut r));
            }
            t.elapsed().as_nanos() as u64 / iters as u64
        });
        eprintln!("TOY: hpske.enc={enc}ns | product_of_powers(3)={pop}ns g-random={rnd}ns");
        // Primitive point-op costs behind the multiexp (uncounted raw ops).
        let a = G::<Toy>::random(&mut r);
        let b = G::<Toy>::random(&mut r);
        let piters = 200_000u32;
        let add = best(&mut || {
            let t = Instant::now();
            let mut acc = a;
            for _ in 0..piters {
                acc = acc.raw_op(&b);
            }
            std::hint::black_box(acc);
            t.elapsed().as_nanos() as u64 / piters as u64
        });
        let dbl = best(&mut || {
            let t = Instant::now();
            let mut acc = a;
            for _ in 0..piters {
                acc = acc.raw_double();
            }
            std::hint::black_box(acc);
            t.elapsed().as_nanos() as u64 / piters as u64
        });
        let straus = best(&mut || {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(dlr_curve::multiexp::straus_raw(&coins, &key.sigma));
            }
            t.elapsed().as_nanos() as u64 / iters as u64
        });
        eprintln!("TOY: raw_op={add}ns raw_double={dbl}ns straus_raw(3)={straus}ns");
    }

    #[test]
    fn roundtrip_g_and_gt() {
        let mut r = rng();
        let key = HpskeKey::generate(3, &mut r);
        let mg = G::<Toy>::random(&mut r);
        let ct = encrypt(&key, &mg, &mut r);
        assert_eq!(decrypt(&key, &ct), Some(mg));
        // same key works over GT
        let mt = Gt::<Toy>::random(&mut r);
        let ct = encrypt(&key, &mt, &mut r);
        assert_eq!(decrypt(&key, &ct), Some(mt));
    }

    #[test]
    fn homomorphism_mul() {
        let mut r = rng();
        let key = HpskeKey::generate(4, &mut r);
        let m0 = MG::random(&mut r);
        let m1 = MG::random(&mut r);
        let c0 = encrypt(&key, &m0, &mut r);
        let c1 = encrypt(&key, &m1, &mut r);
        assert_eq!(decrypt(&key, &c0.mul(&c1)), Some(m0.op(&m1)));
        assert_eq!(decrypt(&key, &c0.div(&c1)), Some(m0.div(&m1)));
    }

    #[test]
    fn homomorphism_pow() {
        let mut r = rng();
        let key = HpskeKey::generate(4, &mut r);
        let m = MG::random(&mut r);
        let s = <MG as Group>::Scalar::random(&mut r);
        let ct = encrypt(&key, &m, &mut r);
        assert_eq!(decrypt(&key, &ct.pow(&s)), Some(m.pow(&s)));
    }

    #[test]
    fn product_of_powers_is_p2s_job() {
        let mut r = rng();
        let key = HpskeKey::generate(3, &mut r);
        let ms: Vec<MG> = (0..5).map(|_| MG::random(&mut r)).collect();
        let ss: Vec<_> = (0..5).map(|_| <MG as Group>::Scalar::random(&mut r)).collect();
        let cts: Vec<_> = ms.iter().map(|m| encrypt(&key, m, &mut r)).collect();
        let combined = HpskeCiphertext::product_of_powers(&cts, &ss);
        let expect = MG::product_of_powers(&ms, &ss);
        assert_eq!(decrypt(&key, &combined), Some(expect));
    }

    #[test]
    fn pair_ciphertext_reuse_remark() {
        let mut r = rng();
        let key = HpskeKey::generate(2, &mut r);
        let m = G::<Toy>::random(&mut r);
        let a = G::<Toy>::random(&mut r);
        let ct_g = encrypt(&key, &m, &mut r);
        let ct_gt = pair_ciphertext::<Toy>(&a, &ct_g);
        // decrypts (under the SAME key) to e(A, m)
        let expect = <Toy as dlr_curve::Pairing>::pair(&a, &m);
        assert_eq!(decrypt(&key, &ct_gt), Some(expect));
    }

    #[test]
    fn wrong_kappa_rejected() {
        let mut r = rng();
        let key = HpskeKey::generate(4, &mut r);
        let short = HpskeKey {
            sigma: key.sigma[..2].to_vec(),
        };
        let m = MG::random(&mut r);
        let ct = encrypt(&key, &m, &mut r);
        assert_eq!(decrypt(&short, &ct), None);
    }

    #[test]
    fn tables_match_direct_pow() {
        let mut r = rng();
        let key = HpskeKey::generate(3, &mut r);
        let m = G::<Toy>::random(&mut r);
        let ct = encrypt(&key, &m, &mut r);
        let tables = HpskeTables::new(&ct);
        assert_eq!(tables.kappa(), 3);
        for _ in 0..8 {
            let s = <G<Toy> as Group>::Scalar::random(&mut r);
            assert_eq!(tables.pow_fixed(&s), ct.pow(&s));
        }
        // edge scalars
        assert_eq!(
            tables.pow_fixed(&<G<Toy> as Group>::Scalar::zero()),
            ct.pow(&<G<Toy> as Group>::Scalar::zero())
        );
        assert_eq!(
            tables.pow_fixed(&<G<Toy> as Group>::Scalar::one()),
            ct.pow(&<G<Toy> as Group>::Scalar::one())
        );
    }

    #[test]
    fn tables_count_like_pow() {
        let mut r = rng();
        let key = HpskeKey::generate(4, &mut r);
        let m = Gt::<Toy>::random(&mut r);
        let ct = encrypt(&key, &m, &mut r);
        let s = <Gt<Toy> as Group>::Scalar::random(&mut r);
        // Table construction must not touch the counters.
        let (tables, build) = dlr_curve::counters::measure(|| HpskeTables::new(&ct));
        assert_eq!(build.gt_pow, 0);
        assert_eq!(build.gt_op, 0);
        let (_, direct) = dlr_curve::counters::measure(|| ct.pow(&s));
        let (_, fixed) = dlr_curve::counters::measure(|| tables.pow_fixed(&s));
        assert_eq!(fixed.gt_pow, direct.gt_pow);
        assert_eq!(fixed.gt_pow, 5); // κ+1 coordinates
        assert_eq!(fixed.gt_op, direct.gt_op);
    }

    #[test]
    #[should_panic(expected = "κ mismatch")]
    fn mul_checks_kappa() {
        let mut r = rng();
        let k2 = HpskeKey::generate(2, &mut r);
        let k3 = HpskeKey::generate(3, &mut r);
        let m = MG::random(&mut r);
        let a = encrypt(&k2, &m, &mut r);
        let b = encrypt(&k3, &m, &mut r);
        let _ = a.mul(&b);
    }
}
