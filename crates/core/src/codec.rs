//! Wire-codec helpers for group elements, scalars and HPSKE ciphertexts.

use crate::hpske::HpskeCiphertext;
use dlr_curve::Group;
use dlr_math::PrimeField;
use dlr_protocol::{CodecError, Decoder, Encoder};

/// Append a group element (fixed-length raw encoding).
pub fn put_group<G: Group>(enc: &mut Encoder, g: &G) {
    let bytes = g.to_bytes();
    debug_assert_eq!(bytes.len(), G::byte_len());
    enc.put_slice(&bytes);
}

/// Read a group element.
pub fn get_group<G: Group>(dec: &mut Decoder<'_>) -> Result<G, CodecError> {
    let buf = dec.get_slice(G::byte_len())?;
    G::from_bytes(buf).ok_or(CodecError::Invalid("group element"))
}

/// Append a scalar (fixed-length canonical big-endian).
pub fn put_scalar<F: PrimeField>(enc: &mut Encoder, s: &F) {
    enc.put_slice(&s.to_bytes_be());
}

/// Read a scalar.
pub fn get_scalar<F: PrimeField>(dec: &mut Decoder<'_>) -> Result<F, CodecError> {
    let buf = dec.get_slice(F::byte_len())?;
    F::from_bytes_be(buf).ok_or(CodecError::Invalid("scalar"))
}

/// Append an HPSKE ciphertext (`u32` coin count, then fixed-size elements).
pub fn put_hpske<G: Group>(enc: &mut Encoder, ct: &HpskeCiphertext<G>) {
    enc.put_u32(ct.b.len() as u32);
    for b in &ct.b {
        put_group(enc, b);
    }
    put_group(enc, &ct.c0);
}

/// Read an HPSKE ciphertext, enforcing an expected `κ`.
pub fn get_hpske<G: Group>(
    dec: &mut Decoder<'_>,
    expect_kappa: usize,
) -> Result<HpskeCiphertext<G>, CodecError> {
    let kappa = dec.get_u32()? as usize;
    if kappa != expect_kappa {
        return Err(CodecError::Invalid("hpske kappa mismatch"));
    }
    let mut b = Vec::with_capacity(kappa);
    for _ in 0..kappa {
        b.push(get_group(dec)?);
    }
    let c0 = get_group(dec)?;
    Ok(HpskeCiphertext { b, c0 })
}

/// Serialize a scalar vector into a flat byte cell (device-memory mirror).
pub fn scalars_to_cell<F: PrimeField>(scalars: &[F]) -> Vec<u8> {
    let mut out = Vec::with_capacity(scalars.len() * F::byte_len());
    for s in scalars {
        out.extend_from_slice(&s.to_bytes_be());
    }
    out
}

/// Serialize a group-element vector into a flat byte cell.
pub fn groups_to_cell<G: Group>(elems: &[G]) -> Vec<u8> {
    let mut out = Vec::with_capacity(elems.len() * G::byte_len());
    for g in elems {
        out.extend_from_slice(&g.to_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpske::HpskeKey;
    use dlr_curve::modgroup::{Mini1009, ModGroup};
    use dlr_math::FieldElement;
    use rand::SeedableRng;

    type MG = ModGroup<Mini1009>;

    #[test]
    fn group_scalar_roundtrip() {
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        let g = MG::random(&mut r);
        let s = <MG as Group>::Scalar::random(&mut r);
        let mut e = Encoder::new();
        put_group(&mut e, &g);
        put_scalar(&mut e, &s);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(get_group::<MG>(&mut d).unwrap(), g);
        assert_eq!(get_scalar::<<MG as Group>::Scalar>(&mut d).unwrap(), s);
        d.finish().unwrap();
    }

    #[test]
    fn hpske_roundtrip_and_kappa_check() {
        let mut r = rand::rngs::StdRng::seed_from_u64(2);
        let key = HpskeKey::generate(3, &mut r);
        let m = MG::random(&mut r);
        let ct = crate::hpske::encrypt(&key, &m, &mut r);
        let mut e = Encoder::new();
        put_hpske(&mut e, &ct);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(get_hpske::<MG>(&mut d, 3).unwrap(), ct);
        let mut d = Decoder::new(&buf);
        assert!(get_hpske::<MG>(&mut d, 4).is_err());
    }

    #[test]
    fn invalid_group_bytes_rejected() {
        // value 2 is not in the Mini1009 subgroup
        let buf = 2u64.to_be_bytes().to_vec();
        let mut d = Decoder::new(&buf);
        assert_eq!(
            get_group::<MG>(&mut d),
            Err(CodecError::Invalid("group element"))
        );
    }
}
