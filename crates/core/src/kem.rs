//! Hybrid encryption (KEM/DEM) on top of DLR.
//!
//! The paper's scheme encrypts group elements `m ∈ GT`. To store or send
//! *byte strings* (the examples and the §4.4 storage system want this), we
//! use DLR as a KEM: encapsulate a uniformly random `K ∈ GT`, derive a
//! symmetric key by hashing it, and encrypt-then-MAC the payload with an
//! HKDF-SHA-256 keystream and HMAC-SHA-256. This layer is a practical
//! extension beyond the paper (documented in DESIGN.md); its security
//! reduces to the CPA security of DLR plus standard PRF assumptions on
//! HMAC.

use crate::dlr::{self, Ciphertext, Party1, Party2, PublicKey};
use crate::error::CoreError;
use dlr_curve::{Group, Pairing};
use dlr_hash::hkdf;
use dlr_hash::hmac::{ct_eq, hmac_sha256};
use rand::RngCore;

/// Symmetric part of a hybrid ciphertext (encrypt-then-MAC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemCiphertext {
    /// XOR-keystream-encrypted payload.
    pub body: Vec<u8>,
    /// HMAC-SHA-256 over (KEM ciphertext ‖ body).
    pub tag: [u8; 32],
}

/// A full hybrid ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridCiphertext<E: Pairing> {
    /// DLR encryption of the KEM key `K ∈ GT`.
    pub kem: Ciphertext<E>,
    /// Symmetric payload.
    pub dem: DemCiphertext,
}

impl<E: Pairing> HybridCiphertext<E> {
    /// Serialize (magic ‖ KEM part ‖ body ‖ tag).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = dlr_protocol::Encoder::new();
        enc.put_u32(0x444c_524b); // "DLRK"
        enc.put_bytes(&self.kem.to_bytes());
        enc.put_bytes(&self.dem.body);
        enc.put_bytes(&self.dem.tag);
        enc.finish()
    }

    /// Parse a serialized hybrid ciphertext.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut dec = dlr_protocol::Decoder::new(bytes);
        if dec.get_u32()? != 0x444c_524b {
            return Err(CoreError::Protocol("not a DLR hybrid ciphertext"));
        }
        let kem = Ciphertext::<E>::from_bytes(dec.get_bytes()?)?;
        let body = dec.get_bytes()?.to_vec();
        let tag_bytes = dec.get_bytes()?;
        let tag: [u8; 32] = tag_bytes
            .try_into()
            .map_err(|_| CoreError::Protocol("bad tag length"))?;
        dec.finish()?;
        Ok(Self {
            kem,
            dem: DemCiphertext { body, tag },
        })
    }
}

fn derive_keys(k: &[u8]) -> ([u8; 32], [u8; 32]) {
    let okm = hkdf::hkdf(b"dlr-kem", k, b"enc|mac", 64);
    let mut enc_key = [0u8; 32];
    let mut mac_key = [0u8; 32];
    enc_key.copy_from_slice(&okm[..32]);
    mac_key.copy_from_slice(&okm[32..]);
    (enc_key, mac_key)
}

fn keystream_xor(enc_key: &[u8; 32], data: &mut [u8]) {
    for (counter, chunk) in data.chunks_mut(32).enumerate() {
        let block = hkdf::expand(enc_key, &(counter as u32).to_be_bytes(), 32);
        for (b, k) in chunk.iter_mut().zip(block.iter()) {
            *b ^= k;
        }
    }
}

/// Encrypt an arbitrary byte payload under a DLR public key.
pub fn seal<E: Pairing, R: RngCore + ?Sized>(
    pk: &PublicKey<E>,
    payload: &[u8],
    rng: &mut R,
) -> HybridCiphertext<E> {
    let k = E::Gt::random(rng);
    seal_with_key(pk, payload, &k, rng)
}

/// [`seal`] with a caller-chosen KEM key (the storage system keeps the key
/// to re-MAC after re-randomization).
pub fn seal_with_key<E: Pairing, R: RngCore + ?Sized>(
    pk: &PublicKey<E>,
    payload: &[u8],
    k: &E::Gt,
    rng: &mut R,
) -> HybridCiphertext<E> {
    let kem = dlr::encrypt(pk, k, rng);
    let (enc_key, mac_key) = derive_keys(&k.to_bytes());
    let mut body = payload.to_vec();
    keystream_xor(&enc_key, &mut body);
    let mut mac_input = kem.to_bytes();
    mac_input.extend_from_slice(&body);
    let tag = hmac_sha256(&mac_key, &mac_input);
    HybridCiphertext {
        kem,
        dem: DemCiphertext { body, tag },
    }
}

/// Decrypt a hybrid ciphertext with the two key-share devices.
///
/// # Errors
///
/// Fails if the MAC does not verify (tampered ciphertext) or the protocol
/// fails.
pub fn open_local<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    p2: &mut Party2<E>,
    ct: &HybridCiphertext<E>,
    rng: &mut R,
) -> Result<Vec<u8>, CoreError> {
    let k = dlr::decrypt_local(p1, p2, &ct.kem, rng)?;
    open_with_key::<E>(&k, ct)
}

/// Open the symmetric part given an already-decapsulated KEM key (the
/// remote-`P2` path decapsulates over the wire first).
///
/// # Errors
///
/// Fails if the MAC does not verify.
pub fn open_with_key<E: Pairing>(
    k: &E::Gt,
    ct: &HybridCiphertext<E>,
) -> Result<Vec<u8>, CoreError> {
    let (enc_key, mac_key) = derive_keys(&k.to_bytes());
    let mut mac_input = ct.kem.to_bytes();
    mac_input.extend_from_slice(&ct.dem.body);
    let expect = hmac_sha256(&mac_key, &mac_input);
    if !ct_eq(&expect, &ct.dem.tag) {
        return Err(CoreError::InvalidCiphertext("MAC verification failed"));
    }
    let mut body = ct.dem.body.clone();
    keystream_xor(&enc_key, &mut body);
    Ok(body)
}

/// Re-randomize the KEM part and re-MAC (the MAC binds the DEM body to
/// the *current* KEM bytes, so fresh randomness requires a fresh tag; the
/// payload key `k` is unchanged).
///
/// Provided for the §4.4 storage system: the stored ciphertext must change
/// every period so leakage about old ciphertext bytes goes stale.
pub fn reseal_randomness<E: Pairing, R: RngCore + ?Sized>(
    pk: &PublicKey<E>,
    ct: &HybridCiphertext<E>,
    k: &E::Gt,
    rng: &mut R,
) -> HybridCiphertext<E> {
    let kem = dlr::rerandomize(pk, &ct.kem, rng);
    let (_, mac_key) = derive_keys(&k.to_bytes());
    let mut mac_input = kem.to_bytes();
    mac_input.extend_from_slice(&ct.dem.body);
    let tag = hmac_sha256(&mac_key, &mac_input);
    HybridCiphertext {
        kem,
        dem: DemCiphertext {
            body: ct.dem.body.clone(),
            tag,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SchemeParams;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type E = Toy;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(71)
    }

    fn setup(r: &mut rand::rngs::StdRng) -> (Party1<E>, Party2<E>, PublicKey<E>) {
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let (pk, s1, s2) = dlr::keygen::<E, _>(params, r);
        (Party1::new(pk.clone(), s1), Party2::new(pk.clone(), s2), pk)
    }

    #[test]
    fn seal_open_roundtrip() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        for payload in [&b""[..], b"x", b"hello hybrid world", &[0xaa; 1000]] {
            let ct = seal(&pk, payload, &mut r);
            let out = open_local(&mut p1, &mut p2, &ct, &mut r).unwrap();
            assert_eq!(out, payload);
        }
    }

    #[test]
    fn tampering_detected() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let mut ct = seal(&pk, b"payload", &mut r);
        ct.dem.body[0] ^= 1;
        assert!(matches!(
            open_local(&mut p1, &mut p2, &ct, &mut r),
            Err(CoreError::InvalidCiphertext(_))
        ));
    }

    #[test]
    fn open_after_refresh() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let ct = seal(&pk, b"survives refresh", &mut r);
        dlr::refresh_local(&mut p1, &mut p2, &mut r).unwrap();
        assert_eq!(
            open_local(&mut p1, &mut p2, &ct, &mut r).unwrap(),
            b"survives refresh"
        );
    }

    #[test]
    fn keystream_is_deterministic_involution() {
        let key = [7u8; 32];
        let mut data = b"some data longer than a single 32-byte block!!".to_vec();
        let orig = data.clone();
        keystream_xor(&key, &mut data);
        assert_ne!(data, orig);
        keystream_xor(&key, &mut data);
        assert_eq!(data, orig);
    }
}
