//! Error types for scheme and protocol operations.

use dlr_protocol::{CodecError, TransportError};

/// Failure of a scheme operation or protocol run.
#[derive(Debug)]
pub enum CoreError {
    /// Wire decoding failed.
    Codec(CodecError),
    /// Transport failed.
    Transport(TransportError),
    /// A message violated the protocol (wrong lengths, wrong phase, …).
    Protocol(&'static str),
    /// A ciphertext failed validation (CCA2 signature check, …).
    InvalidCiphertext(&'static str),
    /// The peer replied with a structured error frame (see
    /// [`crate::driver::ErrorCode`] for the code space).
    Remote {
        /// Machine-readable error code from the wire.
        code: u8,
        /// Human-readable detail supplied by the server.
        message: String,
    },
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Codec(e) => write!(f, "codec error: {e}"),
            CoreError::Transport(e) => write!(f, "transport error: {e}"),
            CoreError::Protocol(what) => write!(f, "protocol violation: {what}"),
            CoreError::InvalidCiphertext(what) => write!(f, "invalid ciphertext: {what}"),
            CoreError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Codec(e) => Some(e),
            CoreError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}

impl From<TransportError> for CoreError {
    fn from(e: TransportError) -> Self {
        CoreError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::Protocol("bad phase").to_string().contains("bad phase"));
        assert!(CoreError::from(CodecError::Truncated)
            .to_string()
            .contains("truncated"));
    }
}
