//! A unified handle over the two `P1` memory layouts, so the security game
//! and experiments can run against either.

use crate::dlr::{Ciphertext, DecMsg1, DecMsg2, Party1, PublicKey, RefMsg1, RefMsg2, Share1};
use crate::error::CoreError;
use crate::streaming::StreamingParty1;
use dlr_curve::Pairing;
use dlr_protocol::Device;
use rand::RngCore;

/// Which `P1` layout to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum P1Layout {
    /// Plain layout: `sk_1` resides in secret memory (Construction 5.3 as
    /// written).
    Plain,
    /// Streaming layout (§5.2 remark): secret memory holds only `sk_comm`;
    /// `sk_1` lives HPSKE-encrypted in public memory. This is the layout
    /// Theorem 4.1's `m_1 = |sk_comm|` accounting refers to.
    #[default]
    Streaming,
}

/// Either `P1` implementation behind one API.
pub enum AnyParty1<E: Pairing> {
    /// Plain layout.
    Plain(Party1<E>),
    /// Streaming (optimal-rate) layout.
    Streaming(StreamingParty1<E>),
}

impl<E: Pairing> AnyParty1<E> {
    /// Construct with the requested layout.
    pub fn new<R: RngCore + ?Sized>(
        layout: P1Layout,
        pk: PublicKey<E>,
        share: Share1<E>,
        rng: &mut R,
    ) -> Self {
        match layout {
            P1Layout::Plain => AnyParty1::Plain(Party1::new(pk, share)),
            P1Layout::Streaming => AnyParty1::Streaming(StreamingParty1::new(pk, share, rng)),
        }
    }

    /// The device whose secret memory leakage functions read.
    pub fn device(&self) -> &Device {
        match self {
            AnyParty1::Plain(p) => p.device(),
            AnyParty1::Streaming(p) => p.device(),
        }
    }

    /// Decryption protocol, step 1.
    pub fn dec_start<R: RngCore + ?Sized>(
        &mut self,
        ct: &Ciphertext<E>,
        rng: &mut R,
    ) -> DecMsg1<E> {
        match self {
            AnyParty1::Plain(p) => p.dec_start(ct, rng),
            AnyParty1::Streaming(p) => p.dec_start(ct, rng),
        }
    }

    /// Decryption protocol, step 3.
    pub fn dec_finish(&mut self, msg: &DecMsg2<E>) -> Result<E::Gt, CoreError> {
        match self {
            AnyParty1::Plain(p) => p.dec_finish(msg),
            AnyParty1::Streaming(p) => p.dec_finish(msg),
        }
    }

    /// Refresh protocol, step 1.
    pub fn ref_start<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RefMsg1<E> {
        match self {
            AnyParty1::Plain(p) => p.ref_start(rng),
            AnyParty1::Streaming(p) => p.ref_start(rng),
        }
    }

    /// Refresh protocol, step 3 (staging; see the layout types for the
    /// snapshot semantics).
    pub fn ref_finish<R: RngCore + ?Sized>(
        &mut self,
        msg: &RefMsg2<E>,
        rng: &mut R,
    ) -> Result<(), CoreError> {
        match self {
            AnyParty1::Plain(p) => p.ref_finish(msg),
            AnyParty1::Streaming(p) => p.ref_finish(msg, rng),
        }
    }

    /// Promote staged key material and erase the previous period's.
    pub fn ref_complete(&mut self) -> Result<(), CoreError> {
        match self {
            AnyParty1::Plain(p) => p.ref_complete(),
            AnyParty1::Streaming(p) => p.ref_complete(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlr::{self, Party2};
    use crate::params::SchemeParams;
    use dlr_curve::{Group, Toy};
    use rand::SeedableRng;

    type E = Toy;

    #[test]
    fn both_layouts_decrypt_and_refresh() {
        let mut r = rand::rngs::StdRng::seed_from_u64(101);
        for layout in [P1Layout::Plain, P1Layout::Streaming] {
            let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
            let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut r);
            let mut p1 = AnyParty1::new(layout, pk.clone(), s1, &mut r);
            let mut p2 = Party2::new(pk.clone(), s2);
            let m = <E as Pairing>::Gt::random(&mut r);
            let ct = dlr::encrypt(&pk, &m, &mut r);
            for _ in 0..2 {
                let m1 = p1.dec_start(&ct, &mut r);
                let m2 = p2.dec_respond(&m1).unwrap();
                assert_eq!(p1.dec_finish(&m2).unwrap(), m);
                let r1 = p1.ref_start(&mut r);
                let r2 = p2.ref_respond(&r1, &mut r).unwrap();
                p1.ref_finish(&r2, &mut r).unwrap();
                p1.ref_complete().unwrap();
                p2.ref_complete().unwrap();
            }
        }
    }

    #[test]
    fn layouts_have_different_secret_sizes() {
        let mut r = rand::rngs::StdRng::seed_from_u64(102);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut r);
        let _ = s2;
        let plain = AnyParty1::<E>::new(P1Layout::Plain, pk.clone(), s1.clone(), &mut r);
        let streaming = AnyParty1::<E>::new(P1Layout::Streaming, pk, s1, &mut r);
        assert!(
            plain.device().secret.total_bits() > streaming.device().secret.total_bits(),
            "streaming layout must shrink P1's secret memory"
        );
    }
}
