//! Transport-level protocol drivers: run the DLR decryption/refresh
//! protocols over a real [`Transport`] (in-memory or TCP), exercising the
//! wire codec end to end.
//!
//! ## Framing
//!
//! Each protocol message is one transport frame. Requests carry a 1-byte
//! [`RequestTag`] prefix so `P2` can serve a mixed stream of requests;
//! replies carry a 1-byte status prefix ([`REPLY_OK`] / [`REPLY_ERR`]) so a
//! misbehaving request is answered with a structured [`ErrorCode`] frame
//! instead of a dropped connection.
//!
//! ## Sessions and keys
//!
//! A client *may* open its session with a versioned [`HelloMsg`]
//! ([`RequestTag::Hello`]): it names the key id the session is about and
//! the share **generation** (refresh count) the client believes is
//! current. Multi-key servers (`dlr-server`) use the hello to select the
//! key and to bind the session to a generation — a decrypt racing a
//! concurrent refresh is answered with [`ErrorCode::StaleGeneration`]
//! rather than silently combining mismatched shares into garbage.
//! Single-key peers ([`p2_serve_one`] / [`p2_serve_loop`]) acknowledge any
//! hello; sessions that skip the hello (the in-process test drivers)
//! behave as before.

use crate::dlr::{Ciphertext, DecMsg1, DecMsg2, Party1, Party2, RefMsg1, RefMsg2};
use crate::error::CoreError;
use bytes::Bytes;
use dlr_curve::Pairing;
use dlr_protocol::{Decoder, Encoder, Transport, TransportError};
use rand::RngCore;
use std::time::Duration;

/// Wire protocol version announced in [`HelloMsg`].
pub const WIRE_VERSION: u8 = 1;

/// Hello generation wildcard: "bind me to whatever generation is current".
pub const GENERATION_ANY: u64 = u64::MAX;

/// Reply status byte: request succeeded, body follows.
pub const REPLY_OK: u8 = 0;

/// Reply status byte: structured error frame follows.
pub const REPLY_ERR: u8 = 0xFF;

/// Request tags on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RequestTag {
    /// Decryption protocol, message 1.
    Decrypt = 1,
    /// Refresh protocol, message 1.
    Refresh = 2,
    /// Session end: `P2`'s serve loop exits.
    Shutdown = 3,
    /// Session preamble: key selection + generation binding.
    Hello = 4,
    /// Cluster topology fetch: the reply body is a [`TopologyMsg`].
    Topology = 5,
}

impl RequestTag {
    /// Every tag in the protocol, in wire-byte order. Adding a variant
    /// without extending this table fails the exhaustive round-trip test.
    pub const ALL: [RequestTag; 5] = [
        RequestTag::Decrypt,
        RequestTag::Refresh,
        RequestTag::Shutdown,
        RequestTag::Hello,
        RequestTag::Topology,
    ];

    /// Parse a wire tag byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RequestTag::Decrypt),
            2 => Some(RequestTag::Refresh),
            3 => Some(RequestTag::Shutdown),
            4 => Some(RequestTag::Hello),
            5 => Some(RequestTag::Topology),
            _ => None,
        }
    }
}

/// Machine-readable error codes carried by [`REPLY_ERR`] frames.
///
/// The full code space (see also the wire-format notes in `dlr-protocol`):
///
/// | byte | code | meaning | client action |
/// |------|------|---------|---------------|
/// | 1 | [`BadRequest`](Self::BadRequest) | body failed to decode/validate | fix the request; do not retry |
/// | 2 | [`UnknownTag`](Self::UnknownTag) | tag byte not in [`RequestTag`] | do not retry |
/// | 3 | [`UnknownKey`](Self::UnknownKey) | key id not held *anywhere* the server knows of | do not retry |
/// | 4 | [`StaleGeneration`](Self::StaleGeneration) | session generation outdated by a refresh | re-hello, then retry |
/// | 5 | [`Busy`](Self::Busy) | server at its session limit | retry after jittered backoff |
/// | 6 | [`Internal`](Self::Internal) | server-side failure | report; retry at most once |
/// | 7 | [`NotMine`](Self::NotMine) | key owned by another replica; detail = owner address hint | re-route to the hinted replica |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request body failed to decode or validate.
    BadRequest = 1,
    /// The request tag byte is not in [`RequestTag`].
    UnknownTag = 2,
    /// The hello named a key id the server does not hold.
    UnknownKey = 3,
    /// The session's bound generation no longer matches the key's —
    /// a refresh completed since the hello. Re-hello (with the refreshed
    /// share) and retry.
    StaleGeneration = 4,
    /// The server is at its concurrent-session limit; retry after backoff.
    Busy = 5,
    /// The server failed internally while serving the request.
    Internal = 6,
    /// The key id hashes to a shard owned by a *different* replica of the
    /// fleet. The reply's detail field carries the owning replica's
    /// address (`owner_hint`) — re-route there ([`Router`] does this and
    /// invalidates its cached route).
    NotMine = 7,
}

impl ErrorCode {
    /// Every code in the protocol, in wire-byte order. Adding a variant
    /// without extending this table fails the exhaustive round-trip test.
    pub const ALL: [ErrorCode; 7] = [
        ErrorCode::BadRequest,
        ErrorCode::UnknownTag,
        ErrorCode::UnknownKey,
        ErrorCode::StaleGeneration,
        ErrorCode::Busy,
        ErrorCode::Internal,
        ErrorCode::NotMine,
    ];

    /// Parse a wire code byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::UnknownTag),
            3 => Some(ErrorCode::UnknownKey),
            4 => Some(ErrorCode::StaleGeneration),
            5 => Some(ErrorCode::Busy),
            6 => Some(ErrorCode::Internal),
            7 => Some(ErrorCode::NotMine),
            _ => None,
        }
    }
}

/// Session preamble: which key this session is about and which share
/// generation the client believes is current ([`GENERATION_ANY`] to bind
/// to whatever the server holds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloMsg {
    /// Wire protocol version ([`WIRE_VERSION`]).
    pub version: u8,
    /// Opaque key identifier (server-side keyring lookup).
    pub key_id: Vec<u8>,
    /// Client's view of the share generation (refresh count).
    pub generation: u64,
}

impl HelloMsg {
    /// Serialize the hello body (without the request tag).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(self.version)
            .put_bytes(&self.key_id)
            .put_u64(self.generation);
        enc.finish()
    }

    /// Parse a hello body.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        let version = dec.get_u8()?;
        if version != WIRE_VERSION {
            return Err(CoreError::Protocol("unsupported wire version"));
        }
        let key_id = dec.get_bytes()?.to_vec();
        let generation = dec.get_u64()?;
        dec.finish()?;
        Ok(Self {
            version,
            key_id,
            generation,
        })
    }
}

/// Cluster topology: how key ids map onto fleet replicas.
///
/// Replica `i` owns every key id with
/// `shard_of(id, shards) % replicas.len() == i` — the same FNV-1a ring the
/// server keyring shards by, so client-side routing and server-side
/// ownership agree byte-for-byte. Served as the reply body of
/// [`RequestTag::Topology`]; any replica can answer for the whole fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyMsg {
    /// Wire protocol version ([`WIRE_VERSION`]).
    pub version: u8,
    /// Total shard count of the ring (≥ replica count in practice).
    pub shards: u32,
    /// Replica addresses, indexed by replica number.
    pub replicas: Vec<String>,
}

impl TopologyMsg {
    /// Serialize the topology body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(self.version).put_u32(self.shards);
        enc.put_bytes_seq(self.replicas.iter().map(String::as_bytes));
        enc.finish()
    }

    /// Parse a topology body.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        let version = dec.get_u8()?;
        if version != WIRE_VERSION {
            return Err(CoreError::Protocol("unsupported wire version"));
        }
        let shards = dec.get_u32()?;
        let mut replicas = Vec::new();
        for raw in dec.get_bytes_seq()? {
            let addr = std::str::from_utf8(raw)
                .map_err(|_| CoreError::Protocol("replica address is not utf-8"))?;
            replicas.push(addr.to_string());
        }
        dec.finish()?;
        Ok(Self {
            version,
            shards,
            replicas,
        })
    }

    /// The shard a key id hashes to on this ring.
    pub fn shard_of(&self, key_id: &[u8]) -> usize {
        dlr_protocol::shard_of(key_id, self.shards.max(1) as usize)
    }

    /// The replica index owning `key_id`, or `None` for an empty fleet.
    pub fn owner_index(&self, key_id: &[u8]) -> Option<usize> {
        if self.replicas.is_empty() {
            return None;
        }
        Some(self.shard_of(key_id) % self.replicas.len())
    }

    /// The address of the replica owning `key_id`.
    pub fn owner_addr(&self, key_id: &[u8]) -> Option<&str> {
        self.owner_index(key_id).map(|i| self.replicas[i].as_str())
    }
}

fn frame(tag: RequestTag, body: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(tag as u8);
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// Build a success reply frame: status byte + body.
pub fn ok_reply(body: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(REPLY_OK);
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// Build a structured error reply frame.
pub fn error_reply(code: ErrorCode, detail: &str) -> Bytes {
    let mut enc = Encoder::new();
    enc.put_u8(REPLY_ERR).put_u8(code as u8).put_bytes(detail.as_bytes());
    Bytes::from(enc.finish())
}

/// The error reply a serving error maps to on the wire.
pub fn error_reply_for(err: &CoreError) -> Bytes {
    let (code, detail) = match err {
        CoreError::Codec(e) => (ErrorCode::BadRequest, e.to_string()),
        CoreError::Protocol("unknown request tag") => {
            (ErrorCode::UnknownTag, "unknown request tag".to_string())
        }
        CoreError::Protocol(what) => (ErrorCode::BadRequest, (*what).to_string()),
        CoreError::InvalidCiphertext(what) => (ErrorCode::BadRequest, (*what).to_string()),
        _ => (ErrorCode::Internal, err.to_string()),
    };
    error_reply(code, &detail)
}

/// Parse a status-prefixed reply frame, returning the success body or the
/// peer's structured error as [`CoreError::Remote`].
pub fn parse_reply(reply: &[u8]) -> Result<&[u8], CoreError> {
    match reply.first() {
        None => Err(CoreError::Protocol("empty reply frame")),
        Some(&REPLY_OK) => Ok(&reply[1..]),
        Some(&REPLY_ERR) => {
            let mut dec = Decoder::new(&reply[1..]);
            let code = dec.get_u8()?;
            let message = String::from_utf8_lossy(dec.get_bytes()?).into_owned();
            dec.finish()?;
            Err(CoreError::Remote { code, message })
        }
        Some(_) => Err(CoreError::Protocol("unknown reply status")),
    }
}

/// Send a request frame and parse the status-prefixed reply.
fn call(
    transport: &mut dyn Transport,
    tag: RequestTag,
    body: &[u8],
) -> Result<Vec<u8>, CoreError> {
    transport.send(frame(tag, body))?;
    let reply = transport.recv()?;
    parse_reply(&reply).map(<[u8]>::to_vec)
}

/// `P1` side: open a session for `key_id`, binding it to `generation`
/// ([`GENERATION_ANY`] to accept the server's). Returns the server's
/// current generation for the key.
pub fn p1_hello(
    transport: &mut dyn Transport,
    key_id: &[u8],
    generation: u64,
) -> Result<u64, CoreError> {
    let hello = HelloMsg {
        version: WIRE_VERSION,
        key_id: key_id.to_vec(),
        generation,
    };
    let body = call(transport, RequestTag::Hello, &hello.to_bytes())?;
    let mut dec = Decoder::new(&body);
    let server_generation = dec.get_u64()?;
    dec.finish()?;
    Ok(server_generation)
}

/// `P1` side: fetch the fleet topology from any replica.
pub fn p1_fetch_topology(transport: &mut dyn Transport) -> Result<TopologyMsg, CoreError> {
    let body = call(transport, RequestTag::Topology, &[])?;
    TopologyMsg::from_bytes(&body)
}

/// `P1` side: run the decryption protocol for `ct` over `transport`.
pub fn p1_decrypt<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    ct: &Ciphertext<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<E::Gt, CoreError> {
    dlr_metrics::span("dec", || {
        let m1 = p1.dec_start(ct, rng);
        let body = call(transport, RequestTag::Decrypt, &m1.to_bytes())?;
        let m2 = DecMsg2::<E>::from_bytes(&body, &p1.public_key().params)?;
        p1.dec_finish(&m2)
    })
}

/// `P1` side: run the refresh protocol (with completion) over `transport`.
pub fn p1_refresh<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<(), CoreError> {
    dlr_metrics::span("refresh", || {
        let m1 = p1.ref_start(rng);
        let body = call(transport, RequestTag::Refresh, &m1.to_bytes())?;
        let m2 = RefMsg2::<E>::from_bytes(&body, &p1.public_key().params)?;
        p1.ref_finish(&m2)?;
        p1.ref_complete()
    })
}

/// `P1` side: tell `P2`'s serve loop to exit.
pub fn p1_shutdown(transport: &mut dyn Transport) -> Result<(), CoreError> {
    transport.send(frame(RequestTag::Shutdown, &[]))?;
    Ok(())
}

/// Capped exponential backoff policy for [`p1_decrypt_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `0` is treated as `1`.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Seed decorrelating the jittered schedule across clients. Clients
    /// that share a seed (and a failure) retry in lockstep and re-collide
    /// on a [`ErrorCode::Busy`] server — give each client its own seed.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

/// SplitMix64 — cheap, well-mixed, and dependency-free; used only to
/// spread retry delays, never for anything cryptographic.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The undithered delay preceding retry number `retry` (0-based):
    /// `base · 2^retry` capped at `max_delay`.
    pub fn backoff_delay(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .map_or(self.max_delay, |d| d.min(self.max_delay))
    }

    /// The delay [`p1_decrypt_with_retry`] actually sleeps: the capped
    /// exponential [`backoff_delay`](Self::backoff_delay) dithered into
    /// `[d/2, d]` by a deterministic hash of `(jitter_seed, retry)`.
    /// Equal-half jitter keeps the expected schedule exponential while
    /// spreading concurrent clients (distinct seeds) apart so a burst of
    /// [`ErrorCode::Busy`] replies does not re-collide on every retry.
    pub fn backoff_delay_jittered(&self, retry: u32) -> Duration {
        let d = self.backoff_delay(retry);
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        if nanos < 2 {
            return d;
        }
        let half = nanos / 2;
        let h = splitmix64(self.jitter_seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ u64::from(retry));
        Duration::from_nanos(half + h % (nanos - half + 1))
    }
}

/// Whether a failed attempt is worth retrying on a fresh connection:
/// transport-level failures (stall, disconnect, I/O) and server
/// backpressure ([`ErrorCode::Busy`]). Protocol violations and stale
/// generations are not — the caller must re-sync its share first.
pub fn is_retryable(err: &CoreError) -> bool {
    match err {
        CoreError::Transport(
            TransportError::TimedOut | TransportError::Disconnected | TransportError::Io(_),
        ) => true,
        CoreError::Remote { code, .. } => *code == ErrorCode::Busy as u8,
        _ => false,
    }
}

/// `P1` side: run the decryption protocol with client-side retry.
///
/// `connect` opens a fresh session (connection + optional hello) per
/// attempt. Attempts failing with a retryable error ([`is_retryable`])
/// back off exponentially per `policy`; the first non-retryable error is
/// returned immediately.
pub fn p1_decrypt_with_retry<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    ct: &Ciphertext<E>,
    connect: &mut dyn FnMut() -> Result<Box<dyn Transport>, CoreError>,
    policy: &RetryPolicy,
    rng: &mut R,
) -> Result<E::Gt, CoreError> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.backoff_delay_jittered(attempt - 1));
        }
        let mut transport = match connect() {
            Ok(t) => t,
            Err(e) if is_retryable(&e) => {
                last_err = Some(e);
                continue;
            }
            Err(e) => return Err(e),
        };
        match p1_decrypt(p1, ct, transport.as_mut(), rng) {
            Ok(m) => return Ok(m),
            Err(e) if is_retryable(&e) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or(CoreError::Protocol("retry budget exhausted")))
}

/// Topology-aware client-side router for a key-sharded fleet.
///
/// Routes each key id to the replica that owns its shard (per
/// [`TopologyMsg`]), keeping a per-key route cache on top of the computed
/// ring position. A [`ErrorCode::NotMine`] reply carries the owning
/// replica's address in its detail field: the router counts it as a
/// *redirect*, replaces the cached route with the hint, and re-routes
/// immediately (no backoff — a redirect is information, not a failure).
/// Transport-level failures and [`ErrorCode::Busy`] count as *failovers*:
/// the cached route is invalidated (falling back to the computed owner,
/// which is where a restarted replica reappears) and the attempt backs
/// off under the [`RetryPolicy`]'s jittered schedule.
/// A connector opening a raw transport to one replica address, as taken
/// by [`Router::open`] / [`Router::decrypt`].
pub type Connector<'a> = dyn FnMut(&str) -> Result<Box<dyn Transport>, CoreError> + 'a;

#[derive(Debug)]
pub struct Router {
    topology: TopologyMsg,
    /// Retry schedule for routed operations.
    pub policy: RetryPolicy,
    cache: std::collections::BTreeMap<Vec<u8>, String>,
    redirects: u64,
    failovers: u64,
}

impl Router {
    /// Build a router over a fetched (or locally constructed) topology.
    pub fn new(topology: TopologyMsg, policy: RetryPolicy) -> Self {
        Self {
            topology,
            policy,
            cache: std::collections::BTreeMap::new(),
            redirects: 0,
            failovers: 0,
        }
    }

    /// Fetch the topology from a seed replica and build a router on it.
    pub fn from_seed(
        transport: &mut dyn Transport,
        policy: RetryPolicy,
    ) -> Result<Self, CoreError> {
        Ok(Self::new(p1_fetch_topology(transport)?, policy))
    }

    /// The topology this router routes over.
    pub fn topology(&self) -> &TopologyMsg {
        &self.topology
    }

    /// NotMine redirects followed so far.
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Failed routed attempts that invalidated a route and retried.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The address the next attempt for `key_id` goes to: the cached
    /// route if one exists, else the ring-computed owner.
    pub fn route(&self, key_id: &[u8]) -> Result<&str, CoreError> {
        if let Some(addr) = self.cache.get(key_id) {
            return Ok(addr.as_str());
        }
        self.topology
            .owner_addr(key_id)
            .ok_or(CoreError::Protocol("empty fleet topology"))
    }

    /// Seed the route cache (e.g. from a stale topology) — exercised by
    /// the fleet loadgen to force the redirect path deterministically.
    pub fn seed_route(&mut self, key_id: &[u8], addr: &str) {
        self.cache.insert(key_id.to_vec(), addr.to_string());
    }

    /// Record a [`ErrorCode::NotMine`] redirect: the stale cached route is
    /// replaced by the owner hint.
    pub fn note_redirect(&mut self, key_id: &[u8], owner_hint: &str) {
        self.redirects += 1;
        self.cache.insert(key_id.to_vec(), owner_hint.to_string());
    }

    /// Record a routed-attempt failure: the cached route is dropped so the
    /// next attempt falls back to the ring-computed owner.
    pub fn note_failure(&mut self, key_id: &[u8]) {
        self.failovers += 1;
        self.cache.remove(key_id);
    }

    /// Open a routed session for `key_id`: connect to its route, hello,
    /// and follow [`ErrorCode::NotMine`] hints / retry failures per the
    /// policy. Returns the live transport and the server's generation.
    ///
    /// `connect` opens a raw connection to one replica address.
    pub fn open(
        &mut self,
        key_id: &[u8],
        generation: u64,
        connect: &mut Connector<'_>,
    ) -> Result<(Box<dyn Transport>, u64), CoreError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff_delay_jittered(attempt - 1));
            }
            // Follow NotMine hints within the attempt, without sleeping;
            // bounded by fleet size so a cyclic hint chain cannot spin.
            let mut hops = 0usize;
            loop {
                let addr = self.route(key_id)?.to_string();
                let mut transport = match connect(&addr) {
                    Ok(t) => t,
                    Err(e) if is_retryable(&e) => {
                        self.note_failure(key_id);
                        last_err = Some(e);
                        break;
                    }
                    Err(e) => return Err(e),
                };
                match p1_hello(transport.as_mut(), key_id, generation) {
                    Ok(server_generation) => {
                        self.cache.insert(key_id.to_vec(), addr);
                        return Ok((transport, server_generation));
                    }
                    Err(CoreError::Remote { code, message })
                        if code == ErrorCode::NotMine as u8 =>
                    {
                        hops += 1;
                        if hops > self.topology.replicas.len().max(1) {
                            return Err(CoreError::Protocol("NotMine hint cycle"));
                        }
                        self.note_redirect(key_id, &message);
                    }
                    Err(e) if is_retryable(&e) => {
                        self.note_failure(key_id);
                        last_err = Some(e);
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last_err.unwrap_or(CoreError::Protocol("retry budget exhausted")))
    }

    /// Run one routed decryption: open a session for `key_id` (following
    /// redirects), then run the decrypt protocol, retrying on transport
    /// failures with the policy's jittered backoff.
    pub fn decrypt<E: Pairing, R: RngCore + ?Sized>(
        &mut self,
        p1: &mut Party1<E>,
        ct: &Ciphertext<E>,
        key_id: &[u8],
        connect: &mut Connector<'_>,
        rng: &mut R,
    ) -> Result<E::Gt, CoreError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff_delay_jittered(attempt - 1));
            }
            let (mut transport, _gen) = match self.open(key_id, GENERATION_ANY, connect) {
                Ok(session) => session,
                Err(e) if is_retryable(&e) => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            match p1_decrypt(p1, ct, transport.as_mut(), rng) {
                Ok(m) => return Ok(m),
                Err(CoreError::Remote { code, message }) if code == ErrorCode::NotMine as u8 => {
                    // Ownership moved mid-session; adopt the hint and retry.
                    self.note_redirect(key_id, &message);
                    last_err = Some(CoreError::Remote { code, message });
                }
                Err(e) if is_retryable(&e) => {
                    self.note_failure(key_id);
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(CoreError::Protocol("retry budget exhausted")))
    }
}

/// `P2` side: handle one already-received request frame against a single
/// [`Party2`].
///
/// This is the transport-free per-request core shared by [`p2_serve_one`],
/// [`p2_serve_loop`] and the `dlr-server` session workers. Returns the tag
/// plus the reply body to send (`None` for [`RequestTag::Shutdown`], which
/// has no reply). Hello frames are acknowledged with `generation` —
/// multi-key callers resolve the key and check the binding *before*
/// delegating here.
pub fn p2_handle_frame<E: Pairing, R: RngCore + ?Sized>(
    p2: &mut Party2<E>,
    generation: u64,
    req: &[u8],
    rng: &mut R,
) -> Result<(RequestTag, Option<Vec<u8>>), CoreError> {
    if req.is_empty() {
        return Err(CoreError::Protocol("empty frame"));
    }
    let tag = RequestTag::from_u8(req[0]).ok_or(CoreError::Protocol("unknown request tag"))?;
    let body = &req[1..];
    let reply = match tag {
        RequestTag::Decrypt => {
            let m1 = DecMsg1::<E>::from_bytes(body, &p2.public_key().params)?;
            let m2 = p2.dec_respond(&m1)?;
            Some(m2.to_bytes())
        }
        RequestTag::Refresh => {
            let m1 = RefMsg1::<E>::from_bytes(body, &p2.public_key().params)?;
            let m2 = p2.ref_respond(&m1, rng)?;
            p2.ref_complete()?;
            Some(m2.to_bytes())
        }
        RequestTag::Hello => {
            let _hello = HelloMsg::from_bytes(body)?;
            let mut enc = Encoder::new();
            enc.put_u64(generation);
            Some(enc.finish())
        }
        RequestTag::Topology => {
            // Single-key endpoints have no fleet to describe; the server
            // crate answers this tag before delegating here.
            return Err(CoreError::Protocol("no topology at this endpoint"));
        }
        RequestTag::Shutdown => None,
    };
    Ok((tag, reply))
}

/// `P2` side: handle a batch of already-received **Decrypt** request
/// bodies (tag byte stripped) against a single [`Party2`] — the
/// driver-visible grouping behind the server's cross-request batch
/// executor (DESIGN.md §5).
///
/// Each body is parsed independently, the parse survivors run through
/// [`Party2::dec_respond_batch`] (one shared recoding context; identical
/// per-request `dec.p2.respond` spans and operation counts), and reply
/// bodies come back in input order. A malformed or length-mismatched
/// request fails **alone**: its siblings still produce `ok` reply bodies,
/// exactly as if each had been served by [`p2_handle_frame`] in sequence.
pub fn p2_handle_decrypt_batch<E: Pairing>(
    p2: &mut Party2<E>,
    bodies: &[&[u8]],
) -> Vec<Result<Vec<u8>, CoreError>> {
    let parsed: Vec<Result<DecMsg1<E>, CoreError>> = bodies
        .iter()
        .map(|body| DecMsg1::<E>::from_bytes(body, &p2.public_key().params))
        .collect();
    let good: Vec<&DecMsg1<E>> = parsed.iter().filter_map(|p| p.as_ref().ok()).collect();
    let mut responses = p2.dec_respond_batch(&good).into_iter();
    parsed
        .into_iter()
        .map(|p| match p {
            Ok(_) => responses
                .next()
                .expect("one batch response per parsed request")
                .map(|m2| m2.to_bytes()),
            Err(e) => Err(e),
        })
        .collect()
}

/// `P2` side: serve exactly one request. Returns the tag served.
///
/// A handling failure is answered with a structured error reply (best
/// effort) before the error is returned to the caller.
pub fn p2_serve_one<E: Pairing, R: RngCore + ?Sized>(
    p2: &mut Party2<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<RequestTag, CoreError> {
    let req = transport.recv()?;
    match p2_handle_frame(p2, 0, &req, rng) {
        Ok((tag, Some(body))) => {
            transport.send(ok_reply(&body))?;
            Ok(tag)
        }
        Ok((tag, None)) => Ok(tag),
        Err(e) => {
            let _ = transport.send(error_reply_for(&e));
            Err(e)
        }
    }
}

/// `P2` side: serve requests until a shutdown tag arrives.
///
/// Malformed requests (codec/protocol errors) are answered with a
/// structured error reply and the loop keeps serving — a garbage frame
/// costs one reply, not the session. Transport failures end the loop.
pub fn p2_serve_loop<E: Pairing, R: RngCore + ?Sized>(
    p2: &mut Party2<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<usize, CoreError> {
    let mut served = 0usize;
    loop {
        let req = transport.recv()?;
        match p2_handle_frame(p2, 0, &req, rng) {
            Ok((RequestTag::Shutdown, _)) => return Ok(served),
            Ok((_, Some(body))) => {
                transport.send(ok_reply(&body))?;
                served += 1;
            }
            Ok((_, None)) => served += 1,
            Err(e @ CoreError::Transport(_)) => return Err(e),
            Err(e) => transport.send(error_reply_for(&e))?,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlr;
    use crate::params::SchemeParams;
    use dlr_curve::{Group, Toy};
    use dlr_protocol::runtime::run_pair;
    use rand::SeedableRng;

    type E = Toy;

    fn keys(seed: u64) -> (dlr::PublicKey<E>, dlr::Share1<E>, dlr::Share2<E>) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        dlr::keygen::<E, _>(params, &mut r)
    }

    #[test]
    fn full_session_over_channel() {
        let mut r = rand::rngs::StdRng::seed_from_u64(9);
        let (pk, s1, s2) = keys(9);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);

        let mut p1 = Party1::new(pk.clone(), s1);
        let mut p2 = Party2::new(pk.clone(), s2);
        let ct2 = ct;

        let out = run_pair(
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(10);
                assert_eq!(p1_hello(t, b"default", GENERATION_ANY).unwrap(), 0);
                let m1 = p1_decrypt(&mut p1, &ct2, t, &mut rng).unwrap();
                p1_refresh(&mut p1, t, &mut rng).unwrap();
                let m2 = p1_decrypt(&mut p1, &ct2, t, &mut rng).unwrap();
                p1_shutdown(t).unwrap();
                (m1, m2)
            },
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(11);
                p2_serve_loop(&mut p2, t, &mut rng).unwrap()
            },
        );
        assert_eq!(out.p1 .0, m);
        assert_eq!(out.p1 .1, m);
        assert_eq!(out.p2, 4); // hello + dec + ref + dec
        // the transcript is non-trivial and public
        assert!(dlr_protocol::transport::transcript_bytes(&out.transcript) > 1000);
    }

    #[test]
    fn unknown_tag_rejected_with_error_reply() {
        let mut r = rand::rngs::StdRng::seed_from_u64(12);
        let (pk, _s1, s2) = keys(12);
        let mut p2 = Party2::new(pk, s2);
        let (mut a, mut b) = dlr_protocol::duplex();
        a.send(Bytes::from_static(&[99, 1, 2])).unwrap();
        assert!(p2_serve_one(&mut p2, &mut b, &mut r).is_err());
        // the peer got a structured error, not a dropped connection
        let reply = a.recv().unwrap();
        let err = parse_reply(&reply).unwrap_err();
        match err {
            CoreError::Remote { code, .. } => {
                assert_eq!(code, ErrorCode::UnknownTag as u8);
            }
            other => panic!("expected Remote error, got {other}"),
        }
    }

    #[test]
    fn serve_loop_survives_garbage_frames() {
        let mut r = rand::rngs::StdRng::seed_from_u64(13);
        let (pk, s1, s2) = keys(13);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        let mut p1 = Party1::new(pk.clone(), s1);
        let mut p2 = Party2::new(pk.clone(), s2);

        let out = run_pair(
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(14);
                // garbage tag
                t.send(Bytes::from_static(&[99, 1, 2])).unwrap();
                assert!(matches!(
                    parse_reply(&t.recv().unwrap()),
                    Err(CoreError::Remote { .. })
                ));
                // truncated decrypt body
                t.send(Bytes::from_static(&[RequestTag::Decrypt as u8, 0, 0]))
                    .unwrap();
                assert!(matches!(
                    parse_reply(&t.recv().unwrap()),
                    Err(CoreError::Remote { .. })
                ));
                // the session still works afterwards
                let got = p1_decrypt(&mut p1, &ct, t, &mut rng).unwrap();
                p1_shutdown(t).unwrap();
                got
            },
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(15);
                p2_serve_loop(&mut p2, t, &mut rng).unwrap()
            },
        );
        assert_eq!(out.p1, m);
        assert_eq!(out.p2, 1); // only the valid decrypt counts
    }

    #[test]
    fn hello_roundtrip_and_version_check() {
        let hello = HelloMsg {
            version: WIRE_VERSION,
            key_id: b"tenant-7".to_vec(),
            generation: 42,
        };
        let parsed = HelloMsg::from_bytes(&hello.to_bytes()).unwrap();
        assert_eq!(parsed, hello);

        let mut bad = hello.to_bytes();
        bad[0] = 99; // future version
        assert!(HelloMsg::from_bytes(&bad).is_err());
    }

    #[test]
    fn reply_frames_roundtrip() {
        assert_eq!(parse_reply(&ok_reply(b"payload")).unwrap(), b"payload");
        let err = parse_reply(&error_reply(ErrorCode::Busy, "full up")).unwrap_err();
        match err {
            CoreError::Remote { code, message } => {
                assert_eq!(code, ErrorCode::Busy as u8);
                assert_eq!(message, "full up");
            }
            other => panic!("expected Remote, got {other}"),
        }
        assert!(parse_reply(&[]).is_err());
        assert!(parse_reply(&[7, 7]).is_err());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(55),
            jitter_seed: 0,
        };
        assert_eq!(policy.backoff_delay(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_delay(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_delay(2), Duration::from_millis(40));
        assert_eq!(policy.backoff_delay(3), Duration::from_millis(55));
        assert_eq!(policy.backoff_delay(31), Duration::from_millis(55));
        assert_eq!(policy.backoff_delay(32), Duration::from_millis(55));
    }

    #[test]
    fn jittered_backoff_stays_within_half_to_full_envelope() {
        for seed in [0u64, 1, 7, 0xdead_beef, u64::MAX] {
            let policy = RetryPolicy {
                max_attempts: 8,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(640),
                jitter_seed: seed,
            };
            for retry in 0..8 {
                let d = policy.backoff_delay(retry);
                let j = policy.backoff_delay_jittered(retry);
                assert!(j >= d / 2, "seed {seed} retry {retry}: {j:?} < {:?}", d / 2);
                assert!(j <= d, "seed {seed} retry {retry}: {j:?} > {d:?}");
                // deterministic: same (seed, retry) → same delay
                assert_eq!(j, policy.backoff_delay_jittered(retry));
            }
        }
    }

    #[test]
    fn jitter_decorrelates_distinct_seeds() {
        let mk = |seed| RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            jitter_seed: seed,
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            (0..6).map(|r| mk(seed).backoff_delay_jittered(r)).collect()
        };
        // Any pair of distinct seeds must disagree somewhere — lockstep
        // retries are exactly what the jitter exists to break.
        let seeds = [0u64, 1, 2, 3, 99];
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(schedule(a), schedule(b), "seeds {a} and {b} in lockstep");
            }
        }
        // zero delays pass through untouched
        let zero = RetryPolicy {
            base_delay: Duration::ZERO,
            ..mk(5)
        };
        assert_eq!(zero.backoff_delay_jittered(0), Duration::ZERO);
    }

    #[test]
    fn error_code_space_round_trips_exhaustively() {
        // Compile-time exhaustiveness: adding an ErrorCode variant breaks
        // this match until the wire byte (and ALL) are updated.
        fn wire_byte(c: ErrorCode) -> u8 {
            match c {
                ErrorCode::BadRequest => 1,
                ErrorCode::UnknownTag => 2,
                ErrorCode::UnknownKey => 3,
                ErrorCode::StaleGeneration => 4,
                ErrorCode::Busy => 5,
                ErrorCode::Internal => 6,
                ErrorCode::NotMine => 7,
            }
        }
        let bytes: std::collections::BTreeSet<u8> =
            ErrorCode::ALL.iter().map(|&c| c as u8).collect();
        assert_eq!(bytes.len(), ErrorCode::ALL.len(), "duplicate wire byte");
        for &code in &ErrorCode::ALL {
            assert_eq!(wire_byte(code), code as u8);
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
            // and the full error frame round-trips through the codec
            match parse_reply(&error_reply(code, "detail")).unwrap_err() {
                CoreError::Remote { code: c, message } => {
                    assert_eq!(c, code as u8);
                    assert_eq!(message, "detail");
                }
                other => panic!("expected Remote, got {other}"),
            }
        }
        for v in 0..=255u8 {
            assert_eq!(
                ErrorCode::from_u8(v).is_some(),
                bytes.contains(&v),
                "byte {v} decodes inconsistently with ErrorCode::ALL"
            );
        }
    }

    #[test]
    fn request_tag_space_round_trips_exhaustively() {
        fn wire_byte(t: RequestTag) -> u8 {
            match t {
                RequestTag::Decrypt => 1,
                RequestTag::Refresh => 2,
                RequestTag::Shutdown => 3,
                RequestTag::Hello => 4,
                RequestTag::Topology => 5,
            }
        }
        let bytes: std::collections::BTreeSet<u8> =
            RequestTag::ALL.iter().map(|&t| t as u8).collect();
        assert_eq!(bytes.len(), RequestTag::ALL.len(), "duplicate wire byte");
        for &tag in &RequestTag::ALL {
            assert_eq!(wire_byte(tag), tag as u8);
            assert_eq!(RequestTag::from_u8(tag as u8), Some(tag));
        }
        for v in 0..=255u8 {
            assert_eq!(
                RequestTag::from_u8(v).is_some(),
                bytes.contains(&v),
                "byte {v} decodes inconsistently with RequestTag::ALL"
            );
        }
    }

    #[test]
    fn topology_msg_round_trips_and_maps_owners() {
        let topo = TopologyMsg {
            version: WIRE_VERSION,
            shards: 8,
            replicas: vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()],
        };
        let parsed = TopologyMsg::from_bytes(&topo.to_bytes()).unwrap();
        assert_eq!(parsed, topo);

        // ownership agrees with the canonical ring hash
        for id in [b"alpha".as_slice(), b"beta", b"key-17"] {
            let shard = dlr_protocol::shard_of(id, 8);
            assert_eq!(topo.shard_of(id), shard);
            assert_eq!(topo.owner_index(id), Some(shard % 2));
            assert_eq!(topo.owner_addr(id), Some(topo.replicas[shard % 2].as_str()));
        }

        let empty = TopologyMsg {
            version: WIRE_VERSION,
            shards: 4,
            replicas: vec![],
        };
        assert_eq!(empty.owner_index(b"x"), None);

        let mut bad = topo.to_bytes();
        bad[0] = 99; // future version
        assert!(TopologyMsg::from_bytes(&bad).is_err());
    }

    /// One-shot scripted replica: a thread that answers every received
    /// frame with a fixed reply. Returns the client transport endpoint.
    fn scripted_replica(reply: Bytes) -> Box<dyn Transport> {
        let (a, mut b) = dlr_protocol::duplex();
        std::thread::spawn(move || {
            while b.recv().is_ok() {
                if b.send(reply.clone()).is_err() {
                    break;
                }
            }
        });
        Box::new(a)
    }

    fn hello_ok_reply(generation: u64) -> Bytes {
        let mut enc = Encoder::new();
        enc.put_u64(generation);
        ok_reply(&enc.finish())
    }

    #[test]
    fn router_follows_not_mine_hint_and_updates_cache() {
        let topo = TopologyMsg {
            version: WIRE_VERSION,
            shards: 2,
            replicas: vec!["replica-a".into(), "replica-b".into()],
        };
        let mut router = Router::new(topo, RetryPolicy::default());
        // A stale cached route points at replica-a, which does not own
        // the key and answers NotMine with the owner hint.
        router.seed_route(b"k", "replica-a");
        let (_t, generation) = router
            .open(b"k", GENERATION_ANY, &mut |addr| {
                Ok(match addr {
                    "replica-a" => scripted_replica(error_reply(ErrorCode::NotMine, "replica-b")),
                    "replica-b" => scripted_replica(hello_ok_reply(3)),
                    other => panic!("unexpected route {other}"),
                })
            })
            .unwrap();
        assert_eq!(generation, 3);
        assert_eq!(router.redirects(), 1);
        assert_eq!(router.failovers(), 0);
        // the redirect invalidated the stale cache entry in favor of the hint
        assert_eq!(router.route(b"k").unwrap(), "replica-b");
    }

    #[test]
    fn router_fails_over_to_computed_owner_after_connect_failure() {
        let topo = TopologyMsg {
            version: WIRE_VERSION,
            shards: 2,
            replicas: vec!["replica-a".into(), "replica-b".into()],
        };
        let owner = topo.owner_addr(b"k").unwrap().to_string();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: 1,
        };
        let mut router = Router::new(topo, policy);
        let mut connects = 0u32;
        let (_t, generation) = router
            .open(b"k", GENERATION_ANY, &mut |addr| {
                assert_eq!(addr, owner);
                connects += 1;
                if connects == 1 {
                    // replica down: transport-level failure, retryable
                    Err(CoreError::Transport(TransportError::Disconnected))
                } else {
                    Ok(scripted_replica(hello_ok_reply(0)))
                }
            })
            .unwrap();
        assert_eq!(generation, 0);
        assert_eq!(connects, 2);
        assert_eq!(router.failovers(), 1);
        assert_eq!(router.redirects(), 0);
    }

    #[test]
    fn router_detects_hint_cycles() {
        let topo = TopologyMsg {
            version: WIRE_VERSION,
            shards: 2,
            replicas: vec!["replica-a".into(), "replica-b".into()],
        };
        let mut router = Router::new(topo, RetryPolicy::default());
        // Both replicas disown the key and point at each other.
        let result = router.open(b"k", GENERATION_ANY, &mut |addr| {
            let hint = if addr == "replica-a" {
                "replica-b"
            } else {
                "replica-a"
            };
            Ok(scripted_replica(error_reply(ErrorCode::NotMine, hint)))
        });
        assert!(matches!(
            result,
            Err(CoreError::Protocol("NotMine hint cycle"))
        ));
    }

    #[test]
    fn retry_gives_up_on_non_retryable() {
        let mut r = rand::rngs::StdRng::seed_from_u64(16);
        let (pk, s1, _s2) = keys(16);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        let mut p1 = Party1::new(pk, s1);
        let mut calls = 0u32;
        let result = p1_decrypt_with_retry(
            &mut p1,
            &ct,
            &mut || {
                calls += 1;
                Err(CoreError::Protocol("refused"))
            },
            &RetryPolicy::default(),
            &mut r,
        );
        assert!(result.is_err());
        assert_eq!(calls, 1, "non-retryable connect error must not retry");
    }

    #[test]
    fn retry_exhausts_on_transport_failure() {
        let mut r = rand::rngs::StdRng::seed_from_u64(17);
        let (pk, s1, _s2) = keys(17);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        let mut p1 = Party1::new(pk, s1);
        let mut calls = 0u32;
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: 0,
        };
        let result = p1_decrypt_with_retry(
            &mut p1,
            &ct,
            &mut || {
                calls += 1;
                // a transport that immediately hangs up
                let (a, _b) = dlr_protocol::duplex();
                Ok(Box::new(a) as Box<dyn Transport>)
            },
            &policy,
            &mut r,
        );
        assert!(matches!(result, Err(CoreError::Transport(_))));
        assert_eq!(calls, 3, "every attempt consumed");
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut r = rand::rngs::StdRng::seed_from_u64(18);
        let (pk, s1, s2) = keys(18);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        let mut p1 = Party1::new(pk.clone(), s1);

        // Flaky "connector": fails twice, then hands out a live duplex
        // endpoint backed by a serving thread.
        let mut calls = 0u32;
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: 0,
        };
        let mut server: Option<std::thread::JoinHandle<()>> = None;
        let got = p1_decrypt_with_retry(
            &mut p1,
            &ct,
            &mut || {
                calls += 1;
                if calls <= 2 {
                    let (a, _b) = dlr_protocol::duplex();
                    return Ok(Box::new(a) as Box<dyn Transport>);
                }
                let (a, mut b) = dlr_protocol::duplex();
                let pk = pk.clone();
                let s2 = s2.clone();
                server = Some(std::thread::spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
                    let mut p2 = Party2::new(pk, s2);
                    let _ = p2_serve_loop(&mut p2, &mut b, &mut rng);
                }));
                Ok(Box::new(a) as Box<dyn Transport>)
            },
            &policy,
            &mut r,
        )
        .unwrap();
        assert_eq!(got, m);
        assert_eq!(calls, 3);
        if let Some(handle) = server {
            // the client endpoint is dropped, so the serve loop exits
            handle.join().unwrap();
        }
    }
}
