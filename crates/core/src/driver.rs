//! Transport-level protocol drivers: run the DLR decryption/refresh
//! protocols over a real [`Transport`] (in-memory or TCP), exercising the
//! wire codec end to end.
//!
//! Framing: each protocol message is one transport frame, prefixed with a
//! 1-byte request tag so `P2` can serve a mixed stream of requests.

use crate::dlr::{Ciphertext, DecMsg1, DecMsg2, Party1, Party2, RefMsg1, RefMsg2};
use crate::error::CoreError;
use bytes::Bytes;
use dlr_curve::Pairing;
use dlr_protocol::Transport;
use rand::RngCore;

/// Request tags on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RequestTag {
    /// Decryption protocol, message 1.
    Decrypt = 1,
    /// Refresh protocol, message 1.
    Refresh = 2,
    /// Session end: `P2`'s serve loop exits.
    Shutdown = 3,
}

impl RequestTag {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RequestTag::Decrypt),
            2 => Some(RequestTag::Refresh),
            3 => Some(RequestTag::Shutdown),
            _ => None,
        }
    }
}

fn frame(tag: RequestTag, body: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(tag as u8);
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// `P1` side: run the decryption protocol for `ct` over `transport`.
pub fn p1_decrypt<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    ct: &Ciphertext<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<E::Gt, CoreError> {
    dlr_metrics::span("dec", || {
        let m1 = p1.dec_start(ct, rng);
        transport.send(frame(RequestTag::Decrypt, &m1.to_bytes()))?;
        let reply = transport.recv()?;
        let m2 = DecMsg2::<E>::from_bytes(&reply, &p1.public_key().params)?;
        p1.dec_finish(&m2)
    })
}

/// `P1` side: run the refresh protocol (with completion) over `transport`.
pub fn p1_refresh<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<(), CoreError> {
    dlr_metrics::span("refresh", || {
        let m1 = p1.ref_start(rng);
        transport.send(frame(RequestTag::Refresh, &m1.to_bytes()))?;
        let reply = transport.recv()?;
        let m2 = RefMsg2::<E>::from_bytes(&reply, &p1.public_key().params)?;
        p1.ref_finish(&m2)?;
        p1.ref_complete()
    })
}

/// `P1` side: tell `P2`'s serve loop to exit.
pub fn p1_shutdown(transport: &mut dyn Transport) -> Result<(), CoreError> {
    transport.send(frame(RequestTag::Shutdown, &[]))?;
    Ok(())
}

/// `P2` side: serve exactly one request. Returns the tag served.
pub fn p2_serve_one<E: Pairing, R: RngCore + ?Sized>(
    p2: &mut Party2<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<RequestTag, CoreError> {
    let req = transport.recv()?;
    if req.is_empty() {
        return Err(CoreError::Protocol("empty frame"));
    }
    let tag = RequestTag::from_u8(req[0]).ok_or(CoreError::Protocol("unknown request tag"))?;
    let body = &req[1..];
    match tag {
        RequestTag::Decrypt => {
            let m1 = DecMsg1::<E>::from_bytes(body, &p2.public_key().params)?;
            let m2 = p2.dec_respond(&m1)?;
            transport.send(Bytes::from(m2.to_bytes()))?;
        }
        RequestTag::Refresh => {
            let m1 = RefMsg1::<E>::from_bytes(body, &p2.public_key().params)?;
            let m2 = p2.ref_respond(&m1, rng)?;
            transport.send(Bytes::from(m2.to_bytes()))?;
            p2.ref_complete()?;
        }
        RequestTag::Shutdown => {}
    }
    Ok(tag)
}

/// `P2` side: serve requests until a shutdown tag arrives.
pub fn p2_serve_loop<E: Pairing, R: RngCore + ?Sized>(
    p2: &mut Party2<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<usize, CoreError> {
    let mut served = 0usize;
    loop {
        match p2_serve_one(p2, transport, rng)? {
            RequestTag::Shutdown => return Ok(served),
            _ => served += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlr;
    use crate::params::SchemeParams;
    use dlr_curve::{Group, Toy};
    use dlr_protocol::runtime::run_pair;
    use rand::SeedableRng;

    type E = Toy;

    #[test]
    fn full_session_over_channel() {
        let mut r = rand::rngs::StdRng::seed_from_u64(9);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);

        let mut p1 = Party1::new(pk.clone(), s1);
        let mut p2 = Party2::new(pk.clone(), s2);
        let ct2 = ct;

        let out = run_pair(
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(10);
                let m1 = p1_decrypt(&mut p1, &ct2, t, &mut rng).unwrap();
                p1_refresh(&mut p1, t, &mut rng).unwrap();
                let m2 = p1_decrypt(&mut p1, &ct2, t, &mut rng).unwrap();
                p1_shutdown(t).unwrap();
                (m1, m2)
            },
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(11);
                p2_serve_loop(&mut p2, t, &mut rng).unwrap()
            },
        );
        assert_eq!(out.p1 .0, m);
        assert_eq!(out.p1 .1, m);
        assert_eq!(out.p2, 3); // dec + ref + dec
        // the transcript is non-trivial and public
        assert!(dlr_protocol::transport::transcript_bytes(&out.transcript) > 1000);
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut r = rand::rngs::StdRng::seed_from_u64(12);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let (pk, _s1, s2) = dlr::keygen::<E, _>(params, &mut r);
        let mut p2 = Party2::new(pk, s2);
        let (mut a, b) = dlr_protocol::duplex();
        a.send(Bytes::from_static(&[99, 1, 2])).unwrap();
        let mut bt = b;
        assert!(p2_serve_one(&mut p2, &mut bt, &mut r).is_err());
    }
}
