//! Transport-level protocol drivers: run the DLR decryption/refresh
//! protocols over a real [`Transport`] (in-memory or TCP), exercising the
//! wire codec end to end.
//!
//! ## Framing
//!
//! Each protocol message is one transport frame. Requests carry a 1-byte
//! [`RequestTag`] prefix so `P2` can serve a mixed stream of requests;
//! replies carry a 1-byte status prefix ([`REPLY_OK`] / [`REPLY_ERR`]) so a
//! misbehaving request is answered with a structured [`ErrorCode`] frame
//! instead of a dropped connection.
//!
//! ## Sessions and keys
//!
//! A client *may* open its session with a versioned [`HelloMsg`]
//! ([`RequestTag::Hello`]): it names the key id the session is about and
//! the share **generation** (refresh count) the client believes is
//! current. Multi-key servers (`dlr-server`) use the hello to select the
//! key and to bind the session to a generation — a decrypt racing a
//! concurrent refresh is answered with [`ErrorCode::StaleGeneration`]
//! rather than silently combining mismatched shares into garbage.
//! Single-key peers ([`p2_serve_one`] / [`p2_serve_loop`]) acknowledge any
//! hello; sessions that skip the hello (the in-process test drivers)
//! behave as before.

use crate::dlr::{Ciphertext, DecMsg1, DecMsg2, Party1, Party2, RefMsg1, RefMsg2};
use crate::error::CoreError;
use bytes::Bytes;
use dlr_curve::Pairing;
use dlr_protocol::{Decoder, Encoder, Transport, TransportError};
use rand::RngCore;
use std::time::Duration;

/// Wire protocol version announced in [`HelloMsg`].
pub const WIRE_VERSION: u8 = 1;

/// Hello generation wildcard: "bind me to whatever generation is current".
pub const GENERATION_ANY: u64 = u64::MAX;

/// Reply status byte: request succeeded, body follows.
pub const REPLY_OK: u8 = 0;

/// Reply status byte: structured error frame follows.
pub const REPLY_ERR: u8 = 0xFF;

/// Request tags on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RequestTag {
    /// Decryption protocol, message 1.
    Decrypt = 1,
    /// Refresh protocol, message 1.
    Refresh = 2,
    /// Session end: `P2`'s serve loop exits.
    Shutdown = 3,
    /// Session preamble: key selection + generation binding.
    Hello = 4,
}

impl RequestTag {
    /// Parse a wire tag byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RequestTag::Decrypt),
            2 => Some(RequestTag::Refresh),
            3 => Some(RequestTag::Shutdown),
            4 => Some(RequestTag::Hello),
            _ => None,
        }
    }
}

/// Machine-readable error codes carried by [`REPLY_ERR`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request body failed to decode or validate.
    BadRequest = 1,
    /// The request tag byte is not in [`RequestTag`].
    UnknownTag = 2,
    /// The hello named a key id the server does not hold.
    UnknownKey = 3,
    /// The session's bound generation no longer matches the key's —
    /// a refresh completed since the hello. Re-hello (with the refreshed
    /// share) and retry.
    StaleGeneration = 4,
    /// The server is at its concurrent-session limit; retry after backoff.
    Busy = 5,
    /// The server failed internally while serving the request.
    Internal = 6,
}

impl ErrorCode {
    /// Parse a wire code byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::UnknownTag),
            3 => Some(ErrorCode::UnknownKey),
            4 => Some(ErrorCode::StaleGeneration),
            5 => Some(ErrorCode::Busy),
            6 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// Session preamble: which key this session is about and which share
/// generation the client believes is current ([`GENERATION_ANY`] to bind
/// to whatever the server holds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloMsg {
    /// Wire protocol version ([`WIRE_VERSION`]).
    pub version: u8,
    /// Opaque key identifier (server-side keyring lookup).
    pub key_id: Vec<u8>,
    /// Client's view of the share generation (refresh count).
    pub generation: u64,
}

impl HelloMsg {
    /// Serialize the hello body (without the request tag).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(self.version)
            .put_bytes(&self.key_id)
            .put_u64(self.generation);
        enc.finish()
    }

    /// Parse a hello body.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        let version = dec.get_u8()?;
        if version != WIRE_VERSION {
            return Err(CoreError::Protocol("unsupported wire version"));
        }
        let key_id = dec.get_bytes()?.to_vec();
        let generation = dec.get_u64()?;
        dec.finish()?;
        Ok(Self {
            version,
            key_id,
            generation,
        })
    }
}

fn frame(tag: RequestTag, body: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(tag as u8);
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// Build a success reply frame: status byte + body.
pub fn ok_reply(body: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(REPLY_OK);
    out.extend_from_slice(body);
    Bytes::from(out)
}

/// Build a structured error reply frame.
pub fn error_reply(code: ErrorCode, detail: &str) -> Bytes {
    let mut enc = Encoder::new();
    enc.put_u8(REPLY_ERR).put_u8(code as u8).put_bytes(detail.as_bytes());
    Bytes::from(enc.finish())
}

/// The error reply a serving error maps to on the wire.
pub fn error_reply_for(err: &CoreError) -> Bytes {
    let (code, detail) = match err {
        CoreError::Codec(e) => (ErrorCode::BadRequest, e.to_string()),
        CoreError::Protocol("unknown request tag") => {
            (ErrorCode::UnknownTag, "unknown request tag".to_string())
        }
        CoreError::Protocol(what) => (ErrorCode::BadRequest, (*what).to_string()),
        CoreError::InvalidCiphertext(what) => (ErrorCode::BadRequest, (*what).to_string()),
        _ => (ErrorCode::Internal, err.to_string()),
    };
    error_reply(code, &detail)
}

/// Parse a status-prefixed reply frame, returning the success body or the
/// peer's structured error as [`CoreError::Remote`].
pub fn parse_reply(reply: &[u8]) -> Result<&[u8], CoreError> {
    match reply.first() {
        None => Err(CoreError::Protocol("empty reply frame")),
        Some(&REPLY_OK) => Ok(&reply[1..]),
        Some(&REPLY_ERR) => {
            let mut dec = Decoder::new(&reply[1..]);
            let code = dec.get_u8()?;
            let message = String::from_utf8_lossy(dec.get_bytes()?).into_owned();
            dec.finish()?;
            Err(CoreError::Remote { code, message })
        }
        Some(_) => Err(CoreError::Protocol("unknown reply status")),
    }
}

/// Send a request frame and parse the status-prefixed reply.
fn call(
    transport: &mut dyn Transport,
    tag: RequestTag,
    body: &[u8],
) -> Result<Vec<u8>, CoreError> {
    transport.send(frame(tag, body))?;
    let reply = transport.recv()?;
    parse_reply(&reply).map(<[u8]>::to_vec)
}

/// `P1` side: open a session for `key_id`, binding it to `generation`
/// ([`GENERATION_ANY`] to accept the server's). Returns the server's
/// current generation for the key.
pub fn p1_hello(
    transport: &mut dyn Transport,
    key_id: &[u8],
    generation: u64,
) -> Result<u64, CoreError> {
    let hello = HelloMsg {
        version: WIRE_VERSION,
        key_id: key_id.to_vec(),
        generation,
    };
    let body = call(transport, RequestTag::Hello, &hello.to_bytes())?;
    let mut dec = Decoder::new(&body);
    let server_generation = dec.get_u64()?;
    dec.finish()?;
    Ok(server_generation)
}

/// `P1` side: run the decryption protocol for `ct` over `transport`.
pub fn p1_decrypt<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    ct: &Ciphertext<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<E::Gt, CoreError> {
    dlr_metrics::span("dec", || {
        let m1 = p1.dec_start(ct, rng);
        let body = call(transport, RequestTag::Decrypt, &m1.to_bytes())?;
        let m2 = DecMsg2::<E>::from_bytes(&body, &p1.public_key().params)?;
        p1.dec_finish(&m2)
    })
}

/// `P1` side: run the refresh protocol (with completion) over `transport`.
pub fn p1_refresh<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<(), CoreError> {
    dlr_metrics::span("refresh", || {
        let m1 = p1.ref_start(rng);
        let body = call(transport, RequestTag::Refresh, &m1.to_bytes())?;
        let m2 = RefMsg2::<E>::from_bytes(&body, &p1.public_key().params)?;
        p1.ref_finish(&m2)?;
        p1.ref_complete()
    })
}

/// `P1` side: tell `P2`'s serve loop to exit.
pub fn p1_shutdown(transport: &mut dyn Transport) -> Result<(), CoreError> {
    transport.send(frame(RequestTag::Shutdown, &[]))?;
    Ok(())
}

/// Capped exponential backoff policy for [`p1_decrypt_with_retry`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `0` is treated as `1`.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Seed decorrelating the jittered schedule across clients. Clients
    /// that share a seed (and a failure) retry in lockstep and re-collide
    /// on a [`ErrorCode::Busy`] server — give each client its own seed.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0,
        }
    }
}

/// SplitMix64 — cheap, well-mixed, and dependency-free; used only to
/// spread retry delays, never for anything cryptographic.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The undithered delay preceding retry number `retry` (0-based):
    /// `base · 2^retry` capped at `max_delay`.
    pub fn backoff_delay(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .map_or(self.max_delay, |d| d.min(self.max_delay))
    }

    /// The delay [`p1_decrypt_with_retry`] actually sleeps: the capped
    /// exponential [`backoff_delay`](Self::backoff_delay) dithered into
    /// `[d/2, d]` by a deterministic hash of `(jitter_seed, retry)`.
    /// Equal-half jitter keeps the expected schedule exponential while
    /// spreading concurrent clients (distinct seeds) apart so a burst of
    /// [`ErrorCode::Busy`] replies does not re-collide on every retry.
    pub fn backoff_delay_jittered(&self, retry: u32) -> Duration {
        let d = self.backoff_delay(retry);
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        if nanos < 2 {
            return d;
        }
        let half = nanos / 2;
        let h = splitmix64(self.jitter_seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ u64::from(retry));
        Duration::from_nanos(half + h % (nanos - half + 1))
    }
}

/// Whether a failed attempt is worth retrying on a fresh connection:
/// transport-level failures (stall, disconnect, I/O) and server
/// backpressure ([`ErrorCode::Busy`]). Protocol violations and stale
/// generations are not — the caller must re-sync its share first.
pub fn is_retryable(err: &CoreError) -> bool {
    match err {
        CoreError::Transport(
            TransportError::TimedOut | TransportError::Disconnected | TransportError::Io(_),
        ) => true,
        CoreError::Remote { code, .. } => *code == ErrorCode::Busy as u8,
        _ => false,
    }
}

/// `P1` side: run the decryption protocol with client-side retry.
///
/// `connect` opens a fresh session (connection + optional hello) per
/// attempt. Attempts failing with a retryable error ([`is_retryable`])
/// back off exponentially per `policy`; the first non-retryable error is
/// returned immediately.
pub fn p1_decrypt_with_retry<E: Pairing, R: RngCore + ?Sized>(
    p1: &mut Party1<E>,
    ct: &Ciphertext<E>,
    connect: &mut dyn FnMut() -> Result<Box<dyn Transport>, CoreError>,
    policy: &RetryPolicy,
    rng: &mut R,
) -> Result<E::Gt, CoreError> {
    let attempts = policy.max_attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(policy.backoff_delay_jittered(attempt - 1));
        }
        let mut transport = match connect() {
            Ok(t) => t,
            Err(e) if is_retryable(&e) => {
                last_err = Some(e);
                continue;
            }
            Err(e) => return Err(e),
        };
        match p1_decrypt(p1, ct, transport.as_mut(), rng) {
            Ok(m) => return Ok(m),
            Err(e) if is_retryable(&e) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or(CoreError::Protocol("retry budget exhausted")))
}

/// `P2` side: handle one already-received request frame against a single
/// [`Party2`].
///
/// This is the transport-free per-request core shared by [`p2_serve_one`],
/// [`p2_serve_loop`] and the `dlr-server` session workers. Returns the tag
/// plus the reply body to send (`None` for [`RequestTag::Shutdown`], which
/// has no reply). Hello frames are acknowledged with `generation` —
/// multi-key callers resolve the key and check the binding *before*
/// delegating here.
pub fn p2_handle_frame<E: Pairing, R: RngCore + ?Sized>(
    p2: &mut Party2<E>,
    generation: u64,
    req: &[u8],
    rng: &mut R,
) -> Result<(RequestTag, Option<Vec<u8>>), CoreError> {
    if req.is_empty() {
        return Err(CoreError::Protocol("empty frame"));
    }
    let tag = RequestTag::from_u8(req[0]).ok_or(CoreError::Protocol("unknown request tag"))?;
    let body = &req[1..];
    let reply = match tag {
        RequestTag::Decrypt => {
            let m1 = DecMsg1::<E>::from_bytes(body, &p2.public_key().params)?;
            let m2 = p2.dec_respond(&m1)?;
            Some(m2.to_bytes())
        }
        RequestTag::Refresh => {
            let m1 = RefMsg1::<E>::from_bytes(body, &p2.public_key().params)?;
            let m2 = p2.ref_respond(&m1, rng)?;
            p2.ref_complete()?;
            Some(m2.to_bytes())
        }
        RequestTag::Hello => {
            let _hello = HelloMsg::from_bytes(body)?;
            let mut enc = Encoder::new();
            enc.put_u64(generation);
            Some(enc.finish())
        }
        RequestTag::Shutdown => None,
    };
    Ok((tag, reply))
}

/// `P2` side: serve exactly one request. Returns the tag served.
///
/// A handling failure is answered with a structured error reply (best
/// effort) before the error is returned to the caller.
pub fn p2_serve_one<E: Pairing, R: RngCore + ?Sized>(
    p2: &mut Party2<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<RequestTag, CoreError> {
    let req = transport.recv()?;
    match p2_handle_frame(p2, 0, &req, rng) {
        Ok((tag, Some(body))) => {
            transport.send(ok_reply(&body))?;
            Ok(tag)
        }
        Ok((tag, None)) => Ok(tag),
        Err(e) => {
            let _ = transport.send(error_reply_for(&e));
            Err(e)
        }
    }
}

/// `P2` side: serve requests until a shutdown tag arrives.
///
/// Malformed requests (codec/protocol errors) are answered with a
/// structured error reply and the loop keeps serving — a garbage frame
/// costs one reply, not the session. Transport failures end the loop.
pub fn p2_serve_loop<E: Pairing, R: RngCore + ?Sized>(
    p2: &mut Party2<E>,
    transport: &mut dyn Transport,
    rng: &mut R,
) -> Result<usize, CoreError> {
    let mut served = 0usize;
    loop {
        let req = transport.recv()?;
        match p2_handle_frame(p2, 0, &req, rng) {
            Ok((RequestTag::Shutdown, _)) => return Ok(served),
            Ok((_, Some(body))) => {
                transport.send(ok_reply(&body))?;
                served += 1;
            }
            Ok((_, None)) => served += 1,
            Err(e @ CoreError::Transport(_)) => return Err(e),
            Err(e) => transport.send(error_reply_for(&e))?,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlr;
    use crate::params::SchemeParams;
    use dlr_curve::{Group, Toy};
    use dlr_protocol::runtime::run_pair;
    use rand::SeedableRng;

    type E = Toy;

    fn keys(seed: u64) -> (dlr::PublicKey<E>, dlr::Share1<E>, dlr::Share2<E>) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        dlr::keygen::<E, _>(params, &mut r)
    }

    #[test]
    fn full_session_over_channel() {
        let mut r = rand::rngs::StdRng::seed_from_u64(9);
        let (pk, s1, s2) = keys(9);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);

        let mut p1 = Party1::new(pk.clone(), s1);
        let mut p2 = Party2::new(pk.clone(), s2);
        let ct2 = ct;

        let out = run_pair(
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(10);
                assert_eq!(p1_hello(t, b"default", GENERATION_ANY).unwrap(), 0);
                let m1 = p1_decrypt(&mut p1, &ct2, t, &mut rng).unwrap();
                p1_refresh(&mut p1, t, &mut rng).unwrap();
                let m2 = p1_decrypt(&mut p1, &ct2, t, &mut rng).unwrap();
                p1_shutdown(t).unwrap();
                (m1, m2)
            },
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(11);
                p2_serve_loop(&mut p2, t, &mut rng).unwrap()
            },
        );
        assert_eq!(out.p1 .0, m);
        assert_eq!(out.p1 .1, m);
        assert_eq!(out.p2, 4); // hello + dec + ref + dec
        // the transcript is non-trivial and public
        assert!(dlr_protocol::transport::transcript_bytes(&out.transcript) > 1000);
    }

    #[test]
    fn unknown_tag_rejected_with_error_reply() {
        let mut r = rand::rngs::StdRng::seed_from_u64(12);
        let (pk, _s1, s2) = keys(12);
        let mut p2 = Party2::new(pk, s2);
        let (mut a, mut b) = dlr_protocol::duplex();
        a.send(Bytes::from_static(&[99, 1, 2])).unwrap();
        assert!(p2_serve_one(&mut p2, &mut b, &mut r).is_err());
        // the peer got a structured error, not a dropped connection
        let reply = a.recv().unwrap();
        let err = parse_reply(&reply).unwrap_err();
        match err {
            CoreError::Remote { code, .. } => {
                assert_eq!(code, ErrorCode::UnknownTag as u8);
            }
            other => panic!("expected Remote error, got {other}"),
        }
    }

    #[test]
    fn serve_loop_survives_garbage_frames() {
        let mut r = rand::rngs::StdRng::seed_from_u64(13);
        let (pk, s1, s2) = keys(13);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        let mut p1 = Party1::new(pk.clone(), s1);
        let mut p2 = Party2::new(pk.clone(), s2);

        let out = run_pair(
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(14);
                // garbage tag
                t.send(Bytes::from_static(&[99, 1, 2])).unwrap();
                assert!(matches!(
                    parse_reply(&t.recv().unwrap()),
                    Err(CoreError::Remote { .. })
                ));
                // truncated decrypt body
                t.send(Bytes::from_static(&[RequestTag::Decrypt as u8, 0, 0]))
                    .unwrap();
                assert!(matches!(
                    parse_reply(&t.recv().unwrap()),
                    Err(CoreError::Remote { .. })
                ));
                // the session still works afterwards
                let got = p1_decrypt(&mut p1, &ct, t, &mut rng).unwrap();
                p1_shutdown(t).unwrap();
                got
            },
            move |t| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(15);
                p2_serve_loop(&mut p2, t, &mut rng).unwrap()
            },
        );
        assert_eq!(out.p1, m);
        assert_eq!(out.p2, 1); // only the valid decrypt counts
    }

    #[test]
    fn hello_roundtrip_and_version_check() {
        let hello = HelloMsg {
            version: WIRE_VERSION,
            key_id: b"tenant-7".to_vec(),
            generation: 42,
        };
        let parsed = HelloMsg::from_bytes(&hello.to_bytes()).unwrap();
        assert_eq!(parsed, hello);

        let mut bad = hello.to_bytes();
        bad[0] = 99; // future version
        assert!(HelloMsg::from_bytes(&bad).is_err());
    }

    #[test]
    fn reply_frames_roundtrip() {
        assert_eq!(parse_reply(&ok_reply(b"payload")).unwrap(), b"payload");
        let err = parse_reply(&error_reply(ErrorCode::Busy, "full up")).unwrap_err();
        match err {
            CoreError::Remote { code, message } => {
                assert_eq!(code, ErrorCode::Busy as u8);
                assert_eq!(message, "full up");
            }
            other => panic!("expected Remote, got {other}"),
        }
        assert!(parse_reply(&[]).is_err());
        assert!(parse_reply(&[7, 7]).is_err());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(55),
            jitter_seed: 0,
        };
        assert_eq!(policy.backoff_delay(0), Duration::from_millis(10));
        assert_eq!(policy.backoff_delay(1), Duration::from_millis(20));
        assert_eq!(policy.backoff_delay(2), Duration::from_millis(40));
        assert_eq!(policy.backoff_delay(3), Duration::from_millis(55));
        assert_eq!(policy.backoff_delay(31), Duration::from_millis(55));
        assert_eq!(policy.backoff_delay(32), Duration::from_millis(55));
    }

    #[test]
    fn jittered_backoff_stays_within_half_to_full_envelope() {
        for seed in [0u64, 1, 7, 0xdead_beef, u64::MAX] {
            let policy = RetryPolicy {
                max_attempts: 8,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(640),
                jitter_seed: seed,
            };
            for retry in 0..8 {
                let d = policy.backoff_delay(retry);
                let j = policy.backoff_delay_jittered(retry);
                assert!(j >= d / 2, "seed {seed} retry {retry}: {j:?} < {:?}", d / 2);
                assert!(j <= d, "seed {seed} retry {retry}: {j:?} > {d:?}");
                // deterministic: same (seed, retry) → same delay
                assert_eq!(j, policy.backoff_delay_jittered(retry));
            }
        }
    }

    #[test]
    fn jitter_decorrelates_distinct_seeds() {
        let mk = |seed| RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(2),
            jitter_seed: seed,
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            (0..6).map(|r| mk(seed).backoff_delay_jittered(r)).collect()
        };
        // Any pair of distinct seeds must disagree somewhere — lockstep
        // retries are exactly what the jitter exists to break.
        let seeds = [0u64, 1, 2, 3, 99];
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(schedule(a), schedule(b), "seeds {a} and {b} in lockstep");
            }
        }
        // zero delays pass through untouched
        let zero = RetryPolicy {
            base_delay: Duration::ZERO,
            ..mk(5)
        };
        assert_eq!(zero.backoff_delay_jittered(0), Duration::ZERO);
    }

    #[test]
    fn retry_gives_up_on_non_retryable() {
        let mut r = rand::rngs::StdRng::seed_from_u64(16);
        let (pk, s1, _s2) = keys(16);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        let mut p1 = Party1::new(pk, s1);
        let mut calls = 0u32;
        let result = p1_decrypt_with_retry(
            &mut p1,
            &ct,
            &mut || {
                calls += 1;
                Err(CoreError::Protocol("refused"))
            },
            &RetryPolicy::default(),
            &mut r,
        );
        assert!(result.is_err());
        assert_eq!(calls, 1, "non-retryable connect error must not retry");
    }

    #[test]
    fn retry_exhausts_on_transport_failure() {
        let mut r = rand::rngs::StdRng::seed_from_u64(17);
        let (pk, s1, _s2) = keys(17);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        let mut p1 = Party1::new(pk, s1);
        let mut calls = 0u32;
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: 0,
        };
        let result = p1_decrypt_with_retry(
            &mut p1,
            &ct,
            &mut || {
                calls += 1;
                // a transport that immediately hangs up
                let (a, _b) = dlr_protocol::duplex();
                Ok(Box::new(a) as Box<dyn Transport>)
            },
            &policy,
            &mut r,
        );
        assert!(matches!(result, Err(CoreError::Transport(_))));
        assert_eq!(calls, 3, "every attempt consumed");
    }

    #[test]
    fn retry_succeeds_after_transient_failures() {
        let mut r = rand::rngs::StdRng::seed_from_u64(18);
        let (pk, s1, s2) = keys(18);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        let mut p1 = Party1::new(pk.clone(), s1);

        // Flaky "connector": fails twice, then hands out a live duplex
        // endpoint backed by a serving thread.
        let mut calls = 0u32;
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            jitter_seed: 0,
        };
        let mut server: Option<std::thread::JoinHandle<()>> = None;
        let got = p1_decrypt_with_retry(
            &mut p1,
            &ct,
            &mut || {
                calls += 1;
                if calls <= 2 {
                    let (a, _b) = dlr_protocol::duplex();
                    return Ok(Box::new(a) as Box<dyn Transport>);
                }
                let (a, mut b) = dlr_protocol::duplex();
                let pk = pk.clone();
                let s2 = s2.clone();
                server = Some(std::thread::spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(19);
                    let mut p2 = Party2::new(pk, s2);
                    let _ = p2_serve_loop(&mut p2, &mut b, &mut rng);
                }));
                Ok(Box::new(a) as Box<dyn Transport>)
            },
            &policy,
            &mut r,
        )
        .unwrap();
        assert_eq!(got, m);
        assert_eq!(calls, 3);
        if let Some(handle) = server {
            // the client endpoint is dropped, so the serve loop exits
            handle.join().unwrap();
        }
    }
}
