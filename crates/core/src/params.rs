//! Scheme parameter derivation (§5 preamble).
//!
//! Throughout the paper: `n` is the security parameter, `λ > 0` the leakage
//! parameter, `ε = 2^{-n}`, and with `log p` the bit length of the group
//! order:
//!
//! ```text
//! κ = 1 + (λ + 2·log(1/ε)) / log p        (HPSKE key length)
//! ℓ = 7 + 3κ + 2·log(1/ε) / log p          (Πss key length)
//! ```
//!
//! Divisions are taken as ceilings so the entropy margins of the leftover
//! hash lemma are never undershot.

use dlr_math::PrimeField;

/// Derived parameters of a DLR instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemeParams {
    /// Security parameter `n` (`ε = 2^{-n}`).
    pub n: u32,
    /// Leakage parameter `λ` in bits.
    pub lambda: u32,
    /// Bit length of the prime group order (`log p` in the paper).
    pub log_p: u32,
    /// HPSKE secret-key length `κ`.
    pub kappa: usize,
    /// Πss secret-key length `ℓ`.
    pub ell: usize,
}

impl SchemeParams {
    /// Derive parameters for a scalar field `F` (the group order), security
    /// parameter `n` and leakage parameter `lambda` (bits).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn derive<F: PrimeField>(n: u32, lambda: u32) -> Self {
        Self::derive_for_bits(F::modulus_bits(), n, lambda)
    }

    /// Derive parameters for an explicit `log p`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `log_p == 0`.
    pub fn derive_for_bits(log_p: u32, n: u32, lambda: u32) -> Self {
        assert!(n > 0, "security parameter must be positive");
        assert!(log_p > 0, "group order must be nontrivial");
        // log(1/ε) = n
        let kappa = 1 + ((lambda as u64 + 2 * n as u64).div_ceil(log_p as u64)) as usize;
        let ell = 7 + 3 * kappa + (2 * n as u64).div_ceil(log_p as u64) as usize;
        Self {
            n,
            lambda,
            log_p,
            kappa,
            ell,
        }
    }

    /// Size in bits of `P1`'s secret key share `sk1 = (a_1..a_ℓ, Φ)` in the
    /// plain layout (`ℓ+1` group elements; a group element costs
    /// ~`log p` bits of entropy but 2·|F_p| bytes on this curve — we count
    /// *stored bytes*, which is what leakage functions see).
    pub fn share1_elements(&self) -> usize {
        self.ell + 1
    }

    /// Number of scalars in `P2`'s share `sk2 = (s_1..s_ℓ)`.
    pub fn share2_elements(&self) -> usize {
        self.ell
    }

    /// Number of scalars in the HPSKE key `sk_comm`.
    pub fn comm_key_elements(&self) -> usize {
        self.kappa
    }

    /// `|sk_comm|` in bits as the paper counts it: `κ · log p`.
    pub fn comm_key_bits(&self) -> u64 {
        self.kappa as u64 * self.log_p as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_paper() {
        // log p = 256, n = 128, λ = 2048:
        // κ = 1 + ceil((2048 + 256)/256) = 1 + 9 = 10
        // ℓ = 7 + 30 + ceil(256/256) = 38
        let p = SchemeParams::derive_for_bits(256, 128, 2048);
        assert_eq!(p.kappa, 10);
        assert_eq!(p.ell, 38);
        assert_eq!(p.share1_elements(), 39);
        assert_eq!(p.share2_elements(), 38);
        assert_eq!(p.comm_key_elements(), 10);
        assert_eq!(p.comm_key_bits(), 2560);
    }

    #[test]
    fn zero_lambda_still_valid() {
        let p = SchemeParams::derive_for_bits(256, 128, 0);
        // κ = 1 + ceil(256/256) = 2, ℓ = 7 + 6 + 1 = 14
        assert_eq!(p.kappa, 2);
        assert_eq!(p.ell, 14);
    }

    #[test]
    fn kappa_grows_linearly_in_lambda() {
        let base = SchemeParams::derive_for_bits(256, 128, 0).kappa;
        let big = SchemeParams::derive_for_bits(256, 128, 256 * 100).kappa;
        assert_eq!(big - base, 100);
    }

    #[test]
    fn derive_uses_field_modulus() {
        use dlr_curve::params::FrToy;
        let p = SchemeParams::derive::<FrToy>(32, 128);
        assert_eq!(p.log_p, 63);
        // κ = 1 + ceil((128+64)/63) = 1 + 4 = 5; ℓ = 7 + 15 + ceil(64/63)=2 → 24
        assert_eq!(p.kappa, 5);
        assert_eq!(p.ell, 24);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_rejected() {
        SchemeParams::derive_for_bits(256, 0, 0);
    }
}
