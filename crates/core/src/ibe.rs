//! The Boneh–Boyen-style identity based encryption substrate (§4.2).
//!
//! This is the per-bit-parameter variant the paper builds on: public
//! parameters contain a matrix `U ∈ G^{n×2}`; an identity hashes to bits
//! `H(ID) = (b_1, …, b_n)`; the identity secret key is
//!
//! ```text
//! sk_ID = (g^{r_1}, …, g^{r_n},  M = g_2^α · ∏_j u_{j,b_j}^{r_j})
//! ```
//!
//! and a ciphertext for `m ∈ GT` is
//!
//! ```text
//! (A = g^t,  C_j = u_{j,b_j}^t,  B = m · e(g_1, g_2)^t)
//! ```
//!
//! with decryption `m = B · ∏_j e(C_j, g^{r_j}) / e(A, M)`.
//!
//! The **single-processor** scheme here serves two roles: the substrate
//! DLRIBE distributes (see [`crate::dibe`]), and a baseline for the
//! efficiency experiments. The identity-bit count `n_id` is configurable
//! (256 = full SHA-256 strength; tests use small values).

use crate::codec::{get_group, put_group};
use crate::error::CoreError;
use crate::params::SchemeParams;
use dlr_curve::{Group, LazyFixedBase, Pairing};
use dlr_math::FieldElement;
use dlr_protocol::{Decoder, Encoder};
use rand::RngCore;

/// IBE public parameters.
///
/// The per-bit matrix `U` is published in **both** pairing slots with
/// correlated exponents (`u1_{j,b} = g^{c_{j,b}}`, `u2_{j,b} = h^{c_{j,b}}`):
/// ciphertext components use the `G1` copy, key components the `G2` copy.
/// For Type-1 curves the two copies coincide up to the shared exponent; the
/// `c_{j,b}` exist only inside `setup` (the trusted, leak-free generation
/// phase) and are erased with its stack frame.
#[derive(Debug, PartialEq, Eq)]
pub struct IbeParams<E: Pairing> {
    /// Derived scheme parameters (used by the distributed variant).
    pub params: SchemeParams,
    /// Identity hash length in bits.
    pub n_id: usize,
    /// `z = e(g_1, g_2)`.
    pub z: E::Gt,
    /// The per-bit matrix in the ciphertext slot.
    pub u1: Vec<[E::G1; 2]>,
    /// The per-bit matrix in the key slot.
    pub u2: Vec<[E::G2; 2]>,
    /// Lazily-built fixed-base tables for `z^t`, shared across clones.
    /// Never serialized; ignored by `PartialEq`/`Eq`.
    z_table: LazyFixedBase<E::Gt>,
}

impl<E: Pairing> IbeParams<E> {
    /// Assemble public parameters (see [`setup`]).
    pub fn new(
        params: SchemeParams,
        n_id: usize,
        z: E::Gt,
        u1: Vec<[E::G1; 2]>,
        u2: Vec<[E::G2; 2]>,
    ) -> Self {
        Self {
            params,
            n_id,
            z,
            u1,
            u2,
            z_table: LazyFixedBase::new(),
        }
    }

    /// `z^t` through the lazily-built fixed-base tables — same element and
    /// counter bump as `self.z.pow(t)`, amortized across encryptions.
    pub fn pow_z(&self, t: &E::Scalar) -> E::Gt {
        self.z_table.pow(&self.z, t)
    }
}

/// The master secret key `msk = g_2^α` (single-processor form; the
/// distributed scheme never materialises this).
#[derive(Debug, PartialEq, Eq)]
pub struct MasterKey<E: Pairing> {
    /// `g_2^α`.
    pub msk: E::G2,
}

/// An identity secret key.
#[derive(Debug, PartialEq, Eq)]
pub struct IdentityKey<E: Pairing> {
    /// `h^{r_j}` for each identity bit (`h` the `G2` generator).
    pub r_g: Vec<E::G2>,
    /// `M = g_2^α · ∏_j u2_{j,b_j}^{r_j}`.
    pub m: E::G2,
}

/// An IBE ciphertext.
#[derive(Debug, PartialEq, Eq)]
pub struct IbeCiphertext<E: Pairing> {
    /// `A = g^t`.
    pub big_a: E::G1,
    /// `C_j = u1_{j,b_j}^t`.
    pub c: Vec<E::G1>,
    /// `B = m · z^t`.
    pub big_b: E::Gt,
}

impl<E: Pairing> IbeCiphertext<E> {
    /// Serialize (the CCA2 transform signs these bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        put_group(&mut enc, &self.big_a);
        enc.put_u32(self.c.len() as u32);
        for cj in &self.c {
            put_group(&mut enc, cj);
        }
        put_group(&mut enc, &self.big_b);
        enc.finish()
    }

    /// Parse, enforcing the expected identity-bit count.
    pub fn from_bytes(bytes: &[u8], n_id: usize) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        let big_a = get_group::<E::G1>(&mut dec)?;
        let count = dec.get_u32()? as usize;
        if count != n_id {
            return Err(CoreError::Protocol("identity bit count mismatch"));
        }
        let mut c = Vec::with_capacity(count);
        for _ in 0..count {
            c.push(get_group::<E::G1>(&mut dec)?);
        }
        let big_b = get_group::<E::Gt>(&mut dec)?;
        dec.finish()?;
        Ok(Self { big_a, c, big_b })
    }
}

/// Hash an identity to `n_id` bits via HKDF-SHA-256.
pub fn hash_identity(id: &[u8], n_id: usize) -> Vec<bool> {
    let bytes = dlr_hash::hkdf::hkdf(b"dlr-ibe-identity", id, b"H(ID)", n_id.div_ceil(8));
    (0..n_id)
        .map(|i| (bytes[i / 8] >> (7 - i % 8)) & 1 == 1)
        .collect()
}

/// Sample the correlated per-bit matrix in both pairing slots. The
/// exponents `c_{j,b}` never leave this function.
#[allow(clippy::type_complexity)]
pub(crate) fn sample_u_matrix<E: Pairing, R: RngCore + ?Sized>(
    n_id: usize,
    g: &E::G1,
    h: &E::G2,
    rng: &mut R,
) -> (Vec<[E::G1; 2]>, Vec<[E::G2; 2]>) {
    let mut u1 = Vec::with_capacity(n_id);
    let mut u2 = Vec::with_capacity(n_id);
    for _ in 0..n_id {
        let c0 = E::Scalar::random(rng);
        let c1 = E::Scalar::random(rng);
        u1.push([g.pow(&c0), g.pow(&c1)]);
        u2.push([h.pow(&c0), h.pow(&c1)]);
    }
    (u1, u2)
}

/// `Setup`: generate public parameters and the master secret key.
///
/// Returns `(params, msk, shares-precursor)` where the third component is
/// the `(α, g_2)` pair consumed by [`crate::dibe::dibe_keygen`] — callers of
/// the *single-processor* scheme should ignore it (it is secret
/// randomness of the generation phase).
pub fn setup<E: Pairing, R: RngCore + ?Sized>(
    scheme: SchemeParams,
    n_id: usize,
    rng: &mut R,
) -> (IbeParams<E>, MasterKey<E>) {
    assert!(n_id > 0, "identity length must be positive");
    let g = E::G1::generator();
    let h = E::G2::generator();
    let alpha = E::Scalar::random(rng);
    let g1 = E::G1::generator_pow(&alpha);
    let g2 = E::G2::random(rng);
    let z = E::pair(&g1, &g2);
    let (u1, u2) = sample_u_matrix::<E, _>(n_id, &g, &h, rng);
    (
        IbeParams::new(scheme, n_id, z, u1, u2),
        MasterKey {
            msk: g2.pow(&alpha),
        },
    )
}

/// `Extract`: derive the identity key for `id` from the master key.
pub fn extract<E: Pairing, R: RngCore + ?Sized>(
    params: &IbeParams<E>,
    master: &MasterKey<E>,
    id: &[u8],
    rng: &mut R,
) -> IdentityKey<E> {
    let bits = hash_identity(id, params.n_id);
    let r: Vec<E::Scalar> = (0..params.n_id).map(|_| E::Scalar::random(rng)).collect();
    // h^{r_j} for the fixed generator h: one comb-table pow per bit.
    let r_g: Vec<E::G2> = r.iter().map(E::G2::generator_pow).collect();
    // W = ∏ u2_{j,b_j}^{r_j}
    let bases: Vec<E::G2> = bits
        .iter()
        .enumerate()
        .map(|(j, &b)| params.u2[j][b as usize])
        .collect();
    let w = E::G2::product_of_powers(&bases, &r);
    IdentityKey {
        r_g,
        m: master.msk.op(&w),
    }
}

/// `Enc_ID(m)`.
pub fn encrypt<E: Pairing, R: RngCore + ?Sized>(
    params: &IbeParams<E>,
    id: &[u8],
    m: &E::Gt,
    rng: &mut R,
) -> IbeCiphertext<E> {
    let bits = hash_identity(id, params.n_id);
    let t = E::Scalar::random(rng);
    IbeCiphertext {
        big_a: E::G1::generator_pow(&t),
        c: bits
            .iter()
            .enumerate()
            .map(|(j, &b)| params.u1[j][b as usize].pow(&t))
            .collect(),
        big_b: m.op(&params.pow_z(&t)),
    }
}

/// `Dec`: `m = B · ∏_j e(C_j, g^{r_j}) / e(A, M)`.
///
/// The whole correction factor is one [`Pairing::pairing_product`] — the
/// divisor folds in as `e(A, M)^{-1} = e(A, M^{-1})`, so the `n_id + 1`
/// constituent Miller loops share a single squaring chain and final
/// exponentiation.
pub fn decrypt<E: Pairing>(key: &IdentityKey<E>, ct: &IbeCiphertext<E>) -> Result<E::Gt, CoreError> {
    if key.r_g.len() != ct.c.len() {
        return Err(CoreError::Protocol("identity key / ciphertext mismatch"));
    }
    let mut pairs: Vec<(E::G1, E::G2)> = ct
        .c
        .iter()
        .zip(key.r_g.iter())
        .map(|(cj, rj)| (*cj, *rj))
        .collect();
    pairs.push((ct.big_a, key.m.inverse()));
    Ok(ct.big_b.op(&E::pairing_product(&pairs)))
}


impl<E: Pairing> Clone for IbeParams<E> {
    fn clone(&self) -> Self {
        Self {
            params: self.params,
            n_id: self.n_id,
            z: self.z,
            u1: self.u1.clone(),
            u2: self.u2.clone(),
            z_table: self.z_table.clone(), // clones share the built tables
        }
    }
}


impl<E: Pairing> Clone for MasterKey<E> {
    fn clone(&self) -> Self {
        Self {
            msk: self.msk,
        }
    }
}


impl<E: Pairing> Clone for IdentityKey<E> {
    fn clone(&self) -> Self {
        Self {
            r_g: self.r_g.clone(),
            m: self.m,
        }
    }
}


impl<E: Pairing> Clone for IbeCiphertext<E> {
    fn clone(&self) -> Self {
        Self {
            big_a: self.big_a,
            c: self.c.clone(),
            big_b: self.big_b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type E = Toy;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(41)
    }

    fn tiny() -> SchemeParams {
        SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut r = rng();
        let (params, msk) = setup::<E, _>(tiny(), 16, &mut r);
        let key = extract(&params, &msk, b"alice@example.org", &mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&params, b"alice@example.org", &m, &mut r);
        assert_eq!(decrypt(&key, &ct).unwrap(), m);
    }

    #[test]
    fn wrong_identity_key_fails() {
        let mut r = rng();
        let (params, msk) = setup::<E, _>(tiny(), 16, &mut r);
        let key_bob = extract(&params, &msk, b"bob", &mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&params, b"alice", &m, &mut r);
        assert_ne!(decrypt(&key_bob, &ct).unwrap(), m);
    }

    #[test]
    fn two_keys_same_identity_both_work() {
        // Extraction is randomized; any extracted key must decrypt.
        let mut r = rng();
        let (params, msk) = setup::<E, _>(tiny(), 12, &mut r);
        let k1 = extract(&params, &msk, b"carol", &mut r);
        let k2 = extract(&params, &msk, b"carol", &mut r);
        assert_ne!(k1, k2);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&params, b"carol", &m, &mut r);
        assert_eq!(decrypt(&k1, &ct).unwrap(), m);
        assert_eq!(decrypt(&k2, &ct).unwrap(), m);
    }

    #[test]
    fn identity_hash_properties() {
        let h1 = hash_identity(b"alice", 64);
        let h2 = hash_identity(b"alice", 64);
        let h3 = hash_identity(b"alicf", 64);
        assert_eq!(h1.len(), 64);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
        // not constant
        assert!(h1.iter().any(|&b| b) && h1.iter().any(|&b| !b));
    }

    #[test]
    fn ciphertext_serialization() {
        let mut r = rng();
        let (params, _) = setup::<E, _>(tiny(), 8, &mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt(&params, b"dave", &m, &mut r);
        let bytes = ct.to_bytes();
        assert_eq!(IbeCiphertext::<E>::from_bytes(&bytes, 8).unwrap(), ct);
        assert!(IbeCiphertext::<E>::from_bytes(&bytes, 9).is_err());
        assert!(IbeCiphertext::<E>::from_bytes(&bytes[..12], 8).is_err());
    }
}
