//! Πss — the secondary symmetric encryption scheme used to secret-share the
//! master key (§4.1).
//!
//! * `Gen_ss` picks `sk_ss = (s_1, …, s_ℓ)` with each `s_i ∈ Z_p` uniform;
//! * `Enc_ss(m) = (a_1, …, a_ℓ, m·∏ a_i^{s_i})` with the `a_i` *sampled
//!   directly as random group elements* (their discrete logs never exist in
//!   memory — the §5.2 remark);
//! * `Dec_ss(c_1, …, c_ℓ, c_0) = c_0 / ∏ c_i^{s_i}`.
//!
//! DLR stores the Πss key on device `P2` and a Πss encryption of the master
//! key `g_2^α` on device `P1`; together they form a refreshable,
//! leakage-resilient secret sharing that can decrypt DLR ciphertexts
//! without ever reconstructing `g_2^α` (BHHO/Naor–Segev style — by the
//! leftover hash lemma, `⟨a⃗, s⃗⟩`-type products retain entropy under
//! bounded leakage on `s⃗`).

use dlr_curve::Group;
use dlr_math::FieldElement;
use rand::RngCore;

/// Πss secret key `(s_1, …, s_ℓ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PssKey<F> {
    /// The exponent vector.
    pub s: Vec<F>,
}

/// Πss ciphertext `(a_1, …, a_ℓ, c_0)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PssCiphertext<G> {
    /// Random group-element coins `a_i`.
    pub a: Vec<G>,
    /// Payload component `m · ∏ a_i^{s_i}`.
    pub c0: G,
}

/// `Gen_ss`: sample an `ℓ`-element key.
pub fn generate<G: Group, R: RngCore + ?Sized>(ell: usize, rng: &mut R) -> PssKey<G::Scalar> {
    dlr_metrics::span("pss.gen", || PssKey {
        s: (0..ell).map(|_| G::Scalar::random(rng)).collect(),
    })
}

/// `Enc_ss` with caller-chosen coins (the refresh protocol needs to pick
/// the `a_i` ahead of time).
pub fn encrypt_with_coins<G: Group>(key: &PssKey<G::Scalar>, m: &G, coins: Vec<G>) -> PssCiphertext<G> {
    assert_eq!(coins.len(), key.s.len(), "coin count must equal key length");
    let mask = G::product_of_powers(&coins, &key.s);
    PssCiphertext {
        c0: m.op(&mask),
        a: coins,
    }
}

/// `Enc_ss`: encrypt a group element.
pub fn encrypt<G: Group, R: RngCore + ?Sized>(
    key: &PssKey<G::Scalar>,
    m: &G,
    rng: &mut R,
) -> PssCiphertext<G> {
    dlr_metrics::span("pss.enc", || {
        let coins: Vec<G> = (0..key.s.len()).map(|_| G::random(rng)).collect();
        encrypt_with_coins(key, m, coins)
    })
}

/// `Dec_ss`: recover the plaintext. Returns `None` on a length mismatch.
pub fn decrypt<G: Group>(key: &PssKey<G::Scalar>, ct: &PssCiphertext<G>) -> Option<G> {
    dlr_metrics::span("pss.dec", || {
        if ct.a.len() != key.s.len() {
            return None;
        }
        let mask = G::product_of_powers(&ct.a, &key.s);
        Some(ct.c0.div(&mask))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::modgroup::{Mini1009, ModGroup};
    use dlr_curve::{Toy, G};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn roundtrip_curve_group() {
        let mut r = rng();
        let key = generate::<G<Toy>, _>(8, &mut r);
        let m = G::<Toy>::random(&mut r);
        let ct = encrypt(&key, &m, &mut r);
        assert_eq!(decrypt(&key, &ct), Some(m));
    }

    #[test]
    fn roundtrip_mini_group() {
        let mut r = rng();
        for ell in [1usize, 2, 5] {
            let key = generate::<ModGroup<Mini1009>, _>(ell, &mut r);
            let m = ModGroup::<Mini1009>::random(&mut r);
            let ct = encrypt(&key, &m, &mut r);
            assert_eq!(decrypt(&key, &ct), Some(m), "ell={ell}");
        }
    }

    #[test]
    fn wrong_key_fails() {
        let mut r = rng();
        let key = generate::<ModGroup<Mini1009>, _>(4, &mut r);
        let other = generate::<ModGroup<Mini1009>, _>(4, &mut r);
        let m = ModGroup::<Mini1009>::random(&mut r);
        let ct = encrypt(&key, &m, &mut r);
        // overwhelmingly likely to differ
        assert_ne!(decrypt(&other, &ct), Some(m));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut r = rng();
        let key = generate::<ModGroup<Mini1009>, _>(4, &mut r);
        let short = PssKey {
            s: key.s[..3].to_vec(),
        };
        let m = ModGroup::<Mini1009>::random(&mut r);
        let ct = encrypt(&key, &m, &mut r);
        assert_eq!(decrypt(&short, &ct), None);
    }

    #[test]
    fn rerandomized_coins_same_plaintext() {
        // Two encryptions of the same message under the same key decrypt
        // identically but share no coins (fresh randomness).
        let mut r = rng();
        let key = generate::<G<Toy>, _>(4, &mut r);
        let m = G::<Toy>::random(&mut r);
        let c1 = encrypt(&key, &m, &mut r);
        let c2 = encrypt(&key, &m, &mut r);
        assert_ne!(c1.a, c2.a);
        assert_eq!(decrypt(&key, &c1), decrypt(&key, &c2));
    }

    #[test]
    #[should_panic(expected = "coin count")]
    fn coin_count_enforced() {
        let mut r = rng();
        let key = generate::<G<Toy>, _>(4, &mut r);
        let m = G::<Toy>::random(&mut r);
        encrypt_with_coins(&key, &m, vec![G::<Toy>::random(&mut r); 3]);
    }
}
