//! DLRCCA2 — CCA2-secure DPKE via the Boneh–Canetti–Halevi–Katz transform
//! over the (distributed) IBE (§4.3).
//!
//! `Enc(m)`: generate a one-time signature key pair `(sk_ots, vk)`, encrypt
//! `m` to the *identity* `vk`, and sign the IBE ciphertext with `sk_ots`.
//! `Dec`: verify the signature, derive the identity key for `vk`, decrypt.
//!
//! In the distributed setting the per-ciphertext identity key is derived by
//! the 2-party identity-key-generation protocol of [`crate::dibe`], so the
//! master key is never reconstructed — and the paper's extension of the
//! BCHK proof shows CCA2 security holds under continual leakage (leakage
//! occurring before the challenge ciphertext, as in Def. 3.2).
//!
//! The OTS is pluggable ([`dlr_hash::ots::Lamport`] or
//! [`dlr_hash::ots::Winternitz`]); `bench_a3_ots` compares them inside this
//! transform.

use crate::dibe::{idkey_local, DibeParty1, DibeParty2, IdParty1, IdParty2};
use crate::error::CoreError;
use crate::ibe::{self, IbeCiphertext, IbeParams, MasterKey};
use dlr_curve::Pairing;
use dlr_hash::OneTimeSignature;
use dlr_protocol::{Decoder, Encoder};
use rand::RngCore;

/// A CCA2 ciphertext `(vk, c, σ)`.
#[derive(Debug)]
pub struct Cca2Ciphertext<E: Pairing, S: OneTimeSignature> {
    /// One-time verification key (doubles as the IBE identity).
    pub vk: S::VerifyKey,
    /// IBE ciphertext addressed to identity `vk`.
    pub inner: IbeCiphertext<E>,
    /// One-time signature over the serialized IBE ciphertext.
    pub sig: S::Signature,
}

impl<E: Pairing, S: OneTimeSignature> Clone for Cca2Ciphertext<E, S> {
    fn clone(&self) -> Self {
        Self {
            vk: self.vk.clone(),
            inner: self.inner.clone(),
            sig: self.sig.clone(),
        }
    }
}

impl<E: Pairing, S: OneTimeSignature> Cca2Ciphertext<E, S> {
    /// Serialize.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_bytes(&S::verify_key_bytes(&self.vk));
        enc.put_bytes(&self.inner.to_bytes());
        enc.put_bytes(&S::signature_bytes(&self.sig));
        enc.finish()
    }

    /// Parse.
    pub fn from_bytes(bytes: &[u8], n_id: usize) -> Result<Self, CoreError> {
        let mut dec = Decoder::new(bytes);
        let vk = S::verify_key_from_bytes(dec.get_bytes()?)
            .ok_or(CoreError::InvalidCiphertext("verify key"))?;
        let inner = IbeCiphertext::<E>::from_bytes(dec.get_bytes()?, n_id)?;
        let sig = S::signature_from_bytes(dec.get_bytes()?)
            .ok_or(CoreError::InvalidCiphertext("signature"))?;
        dec.finish()?;
        Ok(Self { vk, inner, sig })
    }
}

/// `Enc(m)`: BCHK encryption.
pub fn encrypt<E: Pairing, S: OneTimeSignature, R: RngCore + ?Sized>(
    params: &IbeParams<E>,
    m: &E::Gt,
    rng: &mut R,
) -> Cca2Ciphertext<E, S> {
    let (sk_ots, vk) = S::generate(rng);
    let id = S::verify_key_bytes(&vk);
    let inner = ibe::encrypt(params, &id, m, rng);
    let sig = S::sign(sk_ots, &inner.to_bytes());
    Cca2Ciphertext { vk, inner, sig }
}

/// Validate the one-time signature of a ciphertext (the CCA2 integrity
/// gate — every decryption path runs this first).
pub fn verify<E: Pairing, S: OneTimeSignature>(ct: &Cca2Ciphertext<E, S>) -> bool {
    S::verify(&ct.vk, &ct.inner.to_bytes(), &ct.sig)
}

/// Single-processor decryption (baseline; requires the materialized master
/// key).
///
/// # Errors
///
/// Returns [`CoreError::InvalidCiphertext`] if the signature is invalid.
pub fn decrypt_single<E: Pairing, S: OneTimeSignature, R: RngCore + ?Sized>(
    params: &IbeParams<E>,
    master: &MasterKey<E>,
    ct: &Cca2Ciphertext<E, S>,
    rng: &mut R,
) -> Result<E::Gt, CoreError> {
    if !verify(ct) {
        return Err(CoreError::InvalidCiphertext("OTS verification failed"));
    }
    let id = S::verify_key_bytes(&ct.vk);
    let key = ibe::extract(params, master, &id, rng);
    ibe::decrypt(&key, &ct.inner)
}

/// Distributed decryption: the per-ciphertext identity key is derived by
/// the 2-party protocol and used once.
///
/// # Errors
///
/// Returns [`CoreError::InvalidCiphertext`] if the signature is invalid.
pub fn decrypt_distributed<E: Pairing, S: OneTimeSignature, R: RngCore + ?Sized>(
    p1: &mut DibeParty1<E>,
    p2: &mut DibeParty2<E>,
    ct: &Cca2Ciphertext<E, S>,
    rng: &mut R,
) -> Result<E::Gt, CoreError> {
    if !verify(ct) {
        return Err(CoreError::InvalidCiphertext("OTS verification failed"));
    }
    let id = S::verify_key_bytes(&ct.vk);
    let (id1, id2) = idkey_local(p1, p2, &id, rng)?;
    let params = p1.params.clone();
    let mut ip1 = IdParty1::new(&params, id1);
    let mut ip2 = IdParty2::new(&params, id2);
    crate::dibe::dibe_decrypt_local(&mut ip1, &mut ip2, &ct.inner, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dibe::dibe_keygen;
    use crate::params::SchemeParams;
    use dlr_curve::{Group, Toy};
    use dlr_hash::ots::{Lamport, Winternitz};
    use rand::SeedableRng;

    type E = Toy;
    type W16 = Winternitz<4>;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(61)
    }

    fn setup(r: &mut rand::rngs::StdRng) -> (IbeParams<E>, DibeParty1<E>, DibeParty2<E>) {
        let scheme = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let (params, s1, s2) = dibe_keygen::<E, _>(scheme, 12, r);
        (
            params.clone(),
            DibeParty1::new(params.clone(), s1),
            DibeParty2::new(params, s2),
        )
    }

    #[test]
    fn roundtrip_distributed_wots() {
        let mut r = rng();
        let (params, mut p1, mut p2) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt::<E, W16, _>(&params, &m, &mut r);
        assert!(verify(&ct));
        assert_eq!(
            decrypt_distributed(&mut p1, &mut p2, &ct, &mut r).unwrap(),
            m
        );
    }

    #[test]
    fn roundtrip_single_lamport() {
        let mut r = rng();
        let scheme = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let (params, master) = ibe::setup::<E, _>(scheme, 12, &mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt::<E, Lamport, _>(&params, &m, &mut r);
        assert_eq!(decrypt_single(&params, &master, &ct, &mut r).unwrap(), m);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let mut r = rng();
        let (params, mut p1, mut p2) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let m2 = <E as Pairing>::Gt::random(&mut r);
        let mut ct = encrypt::<E, W16, _>(&params, &m, &mut r);
        // malleation attempt: swap the payload component
        ct.inner.big_b = ct.inner.big_b.op(&m2);
        assert!(!verify(&ct));
        assert!(matches!(
            decrypt_distributed(&mut p1, &mut p2, &ct, &mut r),
            Err(CoreError::InvalidCiphertext(_))
        ));
    }

    #[test]
    fn signature_from_other_ciphertext_rejected() {
        let mut r = rng();
        let (params, _, _) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct1 = encrypt::<E, W16, _>(&params, &m, &mut r);
        let mut ct2 = encrypt::<E, W16, _>(&params, &m, &mut r);
        ct2.sig = ct1.sig.clone();
        assert!(!verify(&ct2));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut r = rng();
        let (params, mut p1, mut p2) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = encrypt::<E, W16, _>(&params, &m, &mut r);
        let bytes = ct.to_bytes();
        let ct2 = Cca2Ciphertext::<E, W16>::from_bytes(&bytes, params.n_id).unwrap();
        assert!(verify(&ct2));
        assert_eq!(
            decrypt_distributed(&mut p1, &mut p2, &ct2, &mut r).unwrap(),
            m
        );
        assert!(Cca2Ciphertext::<E, W16>::from_bytes(&bytes[..40], params.n_id).is_err());
    }
}
