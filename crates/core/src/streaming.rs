//! The optimal-leakage-rate `P1` of the §5.2 remark.
//!
//! Instead of keeping `sk_1 = (a_1, …, a_ℓ, Φ)` in secret memory, this
//! variant keeps only the HPSKE key `sk_comm` secret and stores the
//! *encryption* of `sk_1` under `Π_comm` in **public memory** (the
//! ciphertexts cross the public channel during refresh anyway). `P1` never
//! holds more than a single un-encrypted coordinate of `sk_1` at a time, so
//!
//! ```text
//! |secret memory of P1| = |sk_comm| + log p = κ·log p + log p
//! ```
//!
//! which is what makes the tolerated leakage rate `b_1/m_1 = 1 − cn/(λ+cn)
//! → 1 − o(1)` (Theorem 4.1) — experiment T3 computes exactly this from
//! the implemented memory sizes.
//!
//! Two pleasant consequences of the ciphertext-reuse remark:
//!
//! * **decryption needs no secret access at all** beyond `sk_comm`: the
//!   `d_i` are the stored `Enc'(a_i)` paired coordinate-wise with `A`, and
//!   `d_Φ`, `d_B` likewise involve only public values;
//! * **refresh** streams one `a'_i` at a time: sample, encrypt under the
//!   *old* key for the wire and under the *next* key for storage, erase.
//!
//! The wire messages are byte-identical to the plain variant's, so the
//! unmodified [`Party2`](crate::dlr::Party2) serves both.

use crate::codec::scalars_to_cell;
use crate::dlr::{Ciphertext, DecMsg1, DecMsg2, PublicKey, RefMsg1, RefMsg2, Share1};
use crate::error::CoreError;
use crate::hpske::{self, HpskeCiphertext, HpskeKey};
use dlr_curve::{Group, Pairing};
use dlr_protocol::Device;
use rand::RngCore;

/// The streaming (optimal-rate) `P1`.
pub struct StreamingParty1<E: Pairing> {
    pk: PublicKey<E>,
    skcomm: HpskeKey<E::Scalar>,
    enc_a: Vec<HpskeCiphertext<E::G2>>,
    enc_phi: HpskeCiphertext<E::G2>,
    device: Device,
    pending: Option<PendingRefresh<E>>,
    staged_phi: Option<HpskeCiphertext<E::G2>>,
}

struct PendingRefresh<E: Pairing> {
    skcomm_next: HpskeKey<E::Scalar>,
    enc_a_next: Vec<HpskeCiphertext<E::G2>>,
}

impl<E: Pairing> core::fmt::Debug for StreamingParty1<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "StreamingParty1(κ={})", self.skcomm.kappa())
    }
}

impl<E: Pairing> StreamingParty1<E> {
    /// Absorb a plain share: encrypt it coordinate-by-coordinate under a
    /// fresh `sk_comm`, keeping only `sk_comm` (and one transient
    /// coordinate) in secret memory.
    pub fn new<R: RngCore + ?Sized>(pk: PublicKey<E>, share: Share1<E>, rng: &mut R) -> Self {
        let skcomm: HpskeKey<E::Scalar> = HpskeKey::generate(pk.params.kappa, rng);
        let mut device = Device::new("P1-streaming");
        device
            .secret
            .store("skcomm", scalars_to_cell(&skcomm.sigma));

        let mut enc_a = Vec::with_capacity(share.a.len());
        for (i, ai) in share.a.iter().enumerate() {
            // one coordinate resident at a time
            device.secret.store("stream.elem", ai.to_bytes());
            enc_a.push(hpske::encrypt(&skcomm, ai, rng));
            device.secret.erase("stream.elem");
            device
                .public
                .store(&format!("enc.a.{i}"), enc_cell(&enc_a[i]));
        }
        device.secret.store("stream.elem", share.phi.to_bytes());
        let enc_phi = hpske::encrypt(&skcomm, &share.phi, rng);
        device.secret.erase("stream.elem");
        device.public.store("enc.phi", enc_cell(&enc_phi));

        Self {
            pk,
            skcomm,
            enc_a,
            enc_phi,
            device,
            pending: None,
            staged_phi: None,
        }
    }

    /// The public key.
    pub fn public_key(&self) -> &PublicKey<E> {
        &self.pk
    }

    /// Device memory: note how small the secret side is.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Decryption step 1 — all inputs are public-memory ciphertexts:
    /// `d_i = e(A, ·) ∘ Enc'(a_i)`, `d_Φ = e(A, ·) ∘ Enc'(Φ)`,
    /// `d_B = Enc'(B)`.
    pub fn dec_start<R: RngCore + ?Sized>(
        &mut self,
        ct: &Ciphertext<E>,
        rng: &mut R,
    ) -> DecMsg1<E> {
        // One prepared Miller chain for A serves all ℓ+1 ciphertexts.
        let prep_a = E::prepare(&ct.big_a);
        let d = self
            .enc_a
            .iter()
            .map(|fi| hpske::pair_ciphertext_prepared::<E>(&prep_a, fi))
            .collect();
        let d_phi = hpske::pair_ciphertext_prepared::<E>(&prep_a, &self.enc_phi);
        let d_b = hpske::encrypt(&self.skcomm, &ct.big_b, rng);
        self.device.public.store("dec.input", ct.to_bytes());
        DecMsg1 { d, d_phi, d_b }
    }

    /// Decryption step 3.
    pub fn dec_finish(&mut self, msg: &DecMsg2<E>) -> Result<E::Gt, CoreError> {
        let m = hpske::decrypt(&self.skcomm, &msg.c_prime)
            .ok_or(CoreError::Protocol("response kappa mismatch"))?;
        self.device.public.store("dec.output", m.to_bytes());
        Ok(m)
    }

    /// Refresh step 1: stream fresh `a'_i`, encrypting each under both the
    /// old key (for the wire) and the next key (for storage).
    pub fn ref_start<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> RefMsg1<E> {
        let skcomm_next: HpskeKey<E::Scalar> = HpskeKey::generate(self.pk.params.kappa, rng);
        self.device
            .secret
            .store("skcomm.next", scalars_to_cell(&skcomm_next.sigma));

        let ell = self.pk.params.ell;
        let mut f_prime = Vec::with_capacity(ell);
        let mut enc_a_next = Vec::with_capacity(ell);
        for _ in 0..ell {
            let a_i = E::G2::random(rng);
            self.device.secret.store("stream.elem", a_i.to_bytes());
            f_prime.push(hpske::encrypt(&self.skcomm, &a_i, rng));
            enc_a_next.push(hpske::encrypt(&skcomm_next, &a_i, rng));
            self.device.secret.erase("stream.elem");
        }
        self.pending = Some(PendingRefresh {
            skcomm_next,
            enc_a_next,
        });
        RefMsg1 {
            f: self.enc_a.clone(),
            f_prime,
            f_phi: self.enc_phi.clone(),
        }
    }

    /// Refresh step 3: decrypt `Φ'` (one transient coordinate), re-encrypt
    /// it under the next key, and stage the switch-over. Call
    /// [`Self::ref_complete`] to erase the old key.
    pub fn ref_finish<R: RngCore + ?Sized>(
        &mut self,
        msg: &RefMsg2<E>,
        rng: &mut R,
    ) -> Result<(), CoreError> {
        let pending = self
            .pending
            .as_mut()
            .ok_or(CoreError::Protocol("ref_finish before ref_start"))?;
        let phi_prime = hpske::decrypt(&self.skcomm, &msg.f)
            .ok_or(CoreError::Protocol("response kappa mismatch"))?;
        self.device
            .secret
            .store("stream.elem", phi_prime.to_bytes());
        let enc_phi_next = hpske::encrypt(&pending.skcomm_next, &phi_prime, rng);
        self.device.secret.erase("stream.elem");
        self.device
            .public
            .store("enc.phi.next", enc_cell(&enc_phi_next));
        self.staged_phi = Some(enc_phi_next);
        Ok(())
    }

    /// Promote the staged key material and erase the old `sk_comm`.
    pub fn ref_complete(&mut self) -> Result<(), CoreError> {
        let pending = self
            .pending
            .take()
            .ok_or(CoreError::Protocol("ref_complete before ref_finish"))?;
        let enc_phi = self
            .staged_phi
            .take()
            .ok_or(CoreError::Protocol("ref_complete before ref_finish"))?;
        self.skcomm = pending.skcomm_next;
        self.enc_a = pending.enc_a_next;
        self.enc_phi = enc_phi;
        self.device.secret.erase("skcomm");
        self.device.secret.erase("skcomm.next");
        self.device
            .secret
            .store("skcomm", scalars_to_cell(&self.skcomm.sigma));
        for (i, ct) in self.enc_a.iter().enumerate() {
            self.device
                .public
                .store(&format!("enc.a.{i}"), enc_cell(ct));
        }
        self.device.public.store("enc.phi", enc_cell(&self.enc_phi));
        self.device.public.remove("enc.phi.next");
        Ok(())
    }
}

fn enc_cell<G: Group>(ct: &HpskeCiphertext<G>) -> Vec<u8> {
    let mut out = Vec::new();
    for b in &ct.b {
        out.extend_from_slice(&b.to_bytes());
    }
    out.extend_from_slice(&ct.c0.to_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlr::{self, Party2};
    use crate::params::SchemeParams;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type E = Toy;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(91)
    }

    fn setup(
        r: &mut rand::rngs::StdRng,
    ) -> (StreamingParty1<E>, Party2<E>, PublicKey<E>) {
        let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
        let (pk, s1, s2) = dlr::keygen::<E, _>(params, r);
        (
            StreamingParty1::new(pk.clone(), s1, r),
            Party2::new(pk.clone(), s2),
            pk,
        )
    }

    fn run_decrypt(
        p1: &mut StreamingParty1<E>,
        p2: &mut Party2<E>,
        ct: &Ciphertext<E>,
        r: &mut rand::rngs::StdRng,
    ) -> <E as Pairing>::Gt {
        let m1 = p1.dec_start(ct, r);
        let m2 = p2.dec_respond(&m1).unwrap();
        p1.dec_finish(&m2).unwrap()
    }

    fn run_refresh(p1: &mut StreamingParty1<E>, p2: &mut Party2<E>, r: &mut rand::rngs::StdRng) {
        let m1 = p1.ref_start(r);
        let m2 = p2.ref_respond(&m1, r).unwrap();
        p1.ref_finish(&m2, r).unwrap();
        p1.ref_complete().unwrap();
        p2.ref_complete().unwrap();
    }

    #[test]
    fn decrypt_roundtrip_with_plain_p2() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        assert_eq!(run_decrypt(&mut p1, &mut p2, &ct, &mut r), m);
    }

    #[test]
    fn decrypt_across_refreshes() {
        let mut r = rng();
        let (mut p1, mut p2, pk) = setup(&mut r);
        let m = <E as Pairing>::Gt::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);
        for t in 0..4 {
            assert_eq!(run_decrypt(&mut p1, &mut p2, &ct, &mut r), m, "period {t}");
            run_refresh(&mut p1, &mut p2, &mut r);
        }
    }

    #[test]
    fn secret_memory_is_only_skcomm() {
        let mut r = rng();
        let (p1, _, pk) = setup(&mut r);
        let view = p1.device().secret.view();
        // exactly one secret cell: the HPSKE key
        assert_eq!(view.cells().len(), 1);
        assert_eq!(view.cells()[0].0, "skcomm");
        let expect_bits =
            pk.params.kappa * <<E as Pairing>::Scalar as dlr_math::FieldElement>::byte_len() * 8;
        assert_eq!(view.total_bits(), expect_bits);
    }

    #[test]
    fn refresh_doubles_secret_memory_transiently() {
        let mut r = rng();
        let (mut p1, mut p2, _) = setup(&mut r);
        let normal = p1.device().secret.total_bits();
        let m1 = p1.ref_start(&mut r);
        let m2 = p2.ref_respond(&m1, &mut r).unwrap();
        p1.ref_finish(&m2, &mut r).unwrap();
        // both skcomm and skcomm.next resident
        let during = p1.device().secret.total_bits();
        assert_eq!(during, 2 * normal);
        p1.ref_complete().unwrap();
        p2.ref_complete().unwrap();
        assert_eq!(p1.device().secret.total_bits(), normal);
    }

    #[test]
    fn misuse_errors() {
        let mut r = rng();
        let (mut p1, _, _) = setup(&mut r);
        assert!(p1.ref_complete().is_err());
    }
}
