//! Phase-scoped spans with per-thread aggregation.
//!
//! [`span`] wraps a closure in a named measurement frame. On exit the
//! frame's wall-clock time and
//! [`OpsReport`](dlr_curve::counters::OpsReport) delta are folded into a
//! thread-local table; when the *outermost* span on a thread exits, the
//! table is merged into the process-wide registry behind a single mutex.
//! Nested spans therefore cost two `Instant::now()` calls and a
//! thread-local map update — the global lock is touched once per top-level
//! protocol operation, not once per span.
//!
//! Frames unwind-safely: the bookkeeping lives in a drop guard, so a panic
//! inside a span (e.g. a failing assertion in a test) still pops the frame
//! and leaves the stack consistent.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use dlr_curve::counters;
use parking_lot::Mutex;

use crate::report::SpanStats;

/// Process-wide aggregated span table. Keys are the static span names.
static GLOBAL: Mutex<BTreeMap<&'static str, SpanStats>> = Mutex::new(BTreeMap::new());

struct Frame {
    name: &'static str,
    start: Instant,
    ops_before: counters::OpsReport,
    /// Nanoseconds spent in directly-nested child spans.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static LOCAL: RefCell<BTreeMap<&'static str, SpanStats>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Run `f` inside a named span, recording its wall-clock time and the
/// group operations it performs (on this thread).
///
/// Names are dotted paths (`"dec.p1.start"`); see the crate docs for the
/// taxonomy used by `dlr-core`. Timing and operation counts are inclusive
/// of nested spans.
pub fn span<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _guard = SpanGuard::enter(name);
    f()
}

/// RAII frame: entry pushes onto the thread's span stack, drop records.
struct SpanGuard;

impl SpanGuard {
    fn enter(name: &'static str) -> Self {
        STACK.with(|s| {
            s.borrow_mut().push(Frame {
                name,
                start: Instant::now(),
                ops_before: counters::snapshot(),
                child_ns: 0,
            })
        });
        SpanGuard
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let frame = STACK
            .with(|s| s.borrow_mut().pop())
            .expect("span stack underflow");
        let elapsed_ns = frame.start.elapsed().as_nanos() as u64;
        let ops = counters::snapshot() - frame.ops_before;

        let outermost = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            match stack.last_mut() {
                Some(parent) => {
                    parent.child_ns += elapsed_ns;
                    false
                }
                None => true,
            }
        });

        LOCAL.with(|l| {
            let mut table = l.borrow_mut();
            // get_mut-before-insert: steady state is allocation-free.
            if let Some(entry) = table.get_mut(frame.name) {
                entry.count += 1;
                entry.total_ns += elapsed_ns;
                entry.child_ns += frame.child_ns;
                entry.ops += ops;
            } else {
                table.insert(
                    frame.name,
                    SpanStats {
                        count: 1,
                        total_ns: elapsed_ns,
                        child_ns: frame.child_ns,
                        ops,
                    },
                );
            }
        });

        if outermost {
            flush_local();
        }
    }
}

/// Merge this thread's local table into the global registry and clear it.
fn flush_local() {
    LOCAL.with(|l| {
        let mut table = l.borrow_mut();
        if table.is_empty() {
            return;
        }
        let mut global = GLOBAL.lock();
        for (name, stats) in std::mem::take(&mut *table) {
            match global.get_mut(name) {
                Some(entry) => entry.merge(&stats),
                None => {
                    global.insert(name, stats);
                }
            }
        }
    });
}

/// Snapshot the process-wide span table (flushing this thread's pending
/// local entries first).
///
/// Other threads' tables flush when their outermost span exits, so after
/// joining worker threads (e.g. `run_pair`) the snapshot is complete.
pub fn snapshot_spans() -> BTreeMap<String, SpanStats> {
    flush_local();
    GLOBAL
        .lock()
        .iter()
        .map(|(name, stats)| (name.to_string(), stats.clone()))
        .collect()
}

/// Clear the process-wide registry and this thread's pending entries.
///
/// Does **not** touch `dlr_curve::counters` — spans record deltas, so the
/// two resets are independent.
pub fn reset() {
    LOCAL.with(|l| l.borrow_mut().clear());
    GLOBAL.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests that reset it must not
    /// interleave. (`cargo test` runs tests in threads within one process.)
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn nesting_attributes_child_time() {
        let _g = TEST_LOCK.lock();
        reset();
        span("outer", || {
            span("outer.inner", || {
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
        });
        let spans = snapshot_spans();
        let outer = &spans["outer"];
        let inner = &spans["outer.inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The inner span's full time is the outer span's child time.
        assert_eq!(outer.child_ns, inner.total_ns);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns(), outer.total_ns - inner.total_ns);
        assert_eq!(inner.child_ns, 0);
    }

    #[test]
    fn repeated_spans_aggregate() {
        let _g = TEST_LOCK.lock();
        reset();
        for _ in 0..5 {
            span("rep", || {});
        }
        assert_eq!(snapshot_spans()["rep"].count, 5);
    }

    #[test]
    fn ops_delta_matches_counters() {
        let _g = TEST_LOCK.lock();
        reset();
        // Pollute the counters before the span: spans must report deltas.
        counters::count_g_op();
        span("opsy", || {
            counters::count_g_pow();
            counters::count_g_pow();
            counters::count_pairing();
        });
        let stats = &snapshot_spans()["opsy"];
        assert_eq!(stats.ops.g_op, 0);
        assert_eq!(stats.ops.g_pow, 2);
        assert_eq!(stats.ops.pairings, 1);
    }

    #[test]
    fn parent_ops_include_children() {
        let _g = TEST_LOCK.lock();
        reset();
        span("par", || {
            counters::count_gt_op();
            span("par.child", counters::count_gt_pow);
        });
        let spans = snapshot_spans();
        assert_eq!(spans["par"].ops.gt_op, 1);
        assert_eq!(spans["par"].ops.gt_pow, 1); // inclusive of child
        assert_eq!(spans["par.child"].ops.gt_pow, 1);
    }

    #[test]
    fn worker_threads_flush_on_outermost_exit() {
        let _g = TEST_LOCK.lock();
        reset();
        let h = std::thread::spawn(|| span("worker", || {}));
        h.join().unwrap();
        assert_eq!(snapshot_spans()["worker"].count, 1);
    }

    #[test]
    fn parallel_fanout_span_ops_match_sequential() {
        use dlr_curve::{Group, PreparedPoint, Toy, G};

        let _g = TEST_LOCK.lock();
        reset();
        // Same workload, spanned once sequentially and once with the
        // worker fan-out enabled: worker deltas are replayed onto this
        // thread (`counters::add_report`), so the two spans must report
        // byte-identical operation counts.
        let g = G::<Toy>::generator();
        let qs: Vec<G<Toy>> = (1..=12).map(|i| g.pow_u64(i)).collect();
        let prep = PreparedPoint::<Toy>::prepare(&g);

        dlr_curve::set_parallel_threads(0);
        let seq = span("fan.seq", || prep.multi_pairing(&qs));
        dlr_curve::set_parallel_threads(3);
        let par = span("fan.par", || prep.multi_pairing(&qs));
        dlr_curve::set_parallel_threads(0);

        assert_eq!(seq, par);
        let spans = snapshot_spans();
        assert_eq!(spans["fan.seq"].ops, spans["fan.par"].ops);
        assert_eq!(spans["fan.par"].ops.pairings, qs.len() as u64);
    }

    #[test]
    fn panic_inside_span_keeps_stack_consistent() {
        let _g = TEST_LOCK.lock();
        reset();
        let result = std::panic::catch_unwind(|| {
            span("boom", || panic!("intentional"));
        });
        assert!(result.is_err());
        // The frame was popped on unwind; a fresh span still works.
        span("after", || {});
        let spans = snapshot_spans();
        assert_eq!(spans["boom"].count, 1);
        assert_eq!(spans["after"].count, 1);
    }
}
