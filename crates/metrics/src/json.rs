//! Minimal JSON document model, writer and parser.
//!
//! The workspace treats every byte that leaves a process as an explicit
//! format (see `dlr-protocol::wire`); the metrics export follows suit with
//! a hand-rolled JSON layer instead of a serialization framework. The
//! subset is exactly what [`Report`](crate::Report) needs: objects,
//! arrays, strings, unsigned integers, booleans and `null`. Numbers are
//! `u64` — counts and nanoseconds — so round-trips are exact.

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the only number form the metrics schema uses).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order is preserved when writing.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&n.to_string()),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; arrays of composites
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Value::Arr(_) | Value::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        v.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset at which it went wrong.
    pub offset: usize,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document (the subset written by [`Value::to_json_pretty`]).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>()
            .map(Value::Num)
            .map_err(|_| self.err("integer out of range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                core::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = core::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Num(u64::MAX),
            Value::Str("a \"quoted\"\nline\t\\".to_string()),
        ] {
            assert_eq!(parse(&v.to_json_pretty()).unwrap(), v);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("dec.p1.start".into())),
            ("lat".into(), Value::Arr(vec![Value::Num(1), Value::Num(2)])),
            (
                "inner".into(),
                Value::Obj(vec![("empty".into(), Value::Arr(vec![]))]),
            ),
        ]);
        let text = doc.to_json_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("99999999999999999999999999").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse("{\"a\": 7, \"b\": [\"x\"]}").unwrap();
        assert_eq!(doc.get("a").and_then(Value::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(Value::as_arr).map(<[Value]>::len), Some(1));
        assert_eq!(doc.get("b").unwrap().as_arr().unwrap()[0].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
