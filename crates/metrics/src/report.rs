//! Structured export of a metrics session.
//!
//! A [`Report`] bundles the aggregated span table with wire statistics
//! rows and free-form metadata, and serializes to JSON (schema below) and
//! CSV. The JSON round-trips through [`Report::from_json`] exactly —
//! every number in the schema is a `u64`.
//!
//! ## JSON schema
//!
//! ```text
//! {
//!   "meta":  { "<key>": "<value>", ... },
//!   "spans": [ { "path": str, "count": u64, "total_ns": u64,
//!                "self_ns": u64, "child_ns": u64,
//!                "ops": { "g_op": u64, "g_pow": u64, "gt_op": u64,
//!                         "gt_pow": u64, "pairings": u64 } }, ... ],
//!   "wire":  [ { "label": str, "frames_sent": u64, "frames_received": u64,
//!                "bytes_sent": u64, "bytes_received": u64,
//!                "round_latency_ns": [u64, ...] }, ... ]
//! }
//! ```
//!
//! `spans` is sorted by path; `self_ns` is redundant (`total_ns -
//! child_ns`) but included so downstream tooling does not have to know the
//! subtraction rule.

use std::collections::BTreeMap;

use dlr_curve::counters::OpsReport;
use dlr_protocol::WireStats;

use crate::json::{self, JsonError, Value};

/// Aggregated measurements for one span name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds, inclusive of nested spans.
    pub total_ns: u64,
    /// Nanoseconds spent in directly-nested child spans.
    pub child_ns: u64,
    /// Group operations performed inside the span (inclusive).
    pub ops: OpsReport,
}

impl SpanStats {
    /// Wall-clock nanoseconds excluding directly-nested child spans.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    /// Fold another aggregate for the same span name into this one.
    pub fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.child_ns += other.child_ns;
        self.ops += other.ops;
    }
}

/// One recorded transport endpoint's wire statistics, labelled by the
/// protocol run it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRow {
    /// Which run produced this row (e.g. `"driver.decrypt"`).
    pub label: String,
    /// The statistics observed at the endpoint.
    pub stats: WireStats,
}

/// A complete metrics session: span table, wire rows and metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Free-form context (curve name, trial counts, ...).
    pub meta: BTreeMap<String, String>,
    /// Aggregated spans, keyed by dotted path.
    pub spans: BTreeMap<String, SpanStats>,
    /// Wire statistics rows, in insertion order.
    pub wire: Vec<WireRow>,
}

impl Report {
    /// Snapshot the global span registry (see
    /// [`snapshot_spans`](crate::snapshot_spans)) into a fresh report.
    pub fn capture() -> Self {
        Report {
            meta: BTreeMap::new(),
            spans: crate::span::snapshot_spans(),
            wire: Vec::new(),
        }
    }

    /// Builder-style metadata entry.
    pub fn with_meta(mut self, key: &str, value: &str) -> Self {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    /// Append a wire statistics row.
    pub fn push_wire(&mut self, label: &str, stats: WireStats) {
        self.wire.push(WireRow {
            label: label.to_string(),
            stats,
        });
    }

    /// Serialize to pretty-printed JSON (schema in the module docs).
    pub fn to_json(&self) -> String {
        let meta = Value::Obj(
            self.meta
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect(),
        );
        let spans = Value::Arr(
            self.spans
                .iter()
                .map(|(path, s)| {
                    Value::Obj(vec![
                        ("path".into(), Value::Str(path.clone())),
                        ("count".into(), Value::Num(s.count)),
                        ("total_ns".into(), Value::Num(s.total_ns)),
                        ("self_ns".into(), Value::Num(s.self_ns())),
                        ("child_ns".into(), Value::Num(s.child_ns)),
                        ("ops".into(), ops_to_value(&s.ops)),
                    ])
                })
                .collect(),
        );
        let wire = Value::Arr(
            self.wire
                .iter()
                .map(|row| {
                    Value::Obj(vec![
                        ("label".into(), Value::Str(row.label.clone())),
                        ("frames_sent".into(), Value::Num(row.stats.frames_sent)),
                        (
                            "frames_received".into(),
                            Value::Num(row.stats.frames_received),
                        ),
                        ("bytes_sent".into(), Value::Num(row.stats.bytes_sent)),
                        (
                            "bytes_received".into(),
                            Value::Num(row.stats.bytes_received),
                        ),
                        (
                            "round_latency_ns".into(),
                            Value::Arr(
                                row.stats
                                    .round_latency_ns
                                    .iter()
                                    .map(|&ns| Value::Num(ns))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Value::Obj(vec![
            ("meta".into(), meta),
            ("spans".into(), spans),
            ("wire".into(), wire),
        ])
        .to_json_pretty()
    }

    /// Parse a report previously written by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let doc = json::parse(text)?;
        let missing = |what: &str| JsonError {
            message: format!("missing or malformed field: {what}"),
            offset: 0,
        };

        let mut meta = BTreeMap::new();
        if let Some(Value::Obj(fields)) = doc.get("meta") {
            for (k, v) in fields {
                let s = v.as_str().ok_or_else(|| missing("meta value"))?;
                meta.insert(k.clone(), s.to_string());
            }
        }

        let mut spans = BTreeMap::new();
        for entry in doc
            .get("spans")
            .and_then(Value::as_arr)
            .ok_or_else(|| missing("spans"))?
        {
            let path = entry
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| missing("spans[].path"))?;
            let num = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| missing(key))
            };
            let ops_value = entry.get("ops").ok_or_else(|| missing("spans[].ops"))?;
            spans.insert(
                path.to_string(),
                SpanStats {
                    count: num("count")?,
                    total_ns: num("total_ns")?,
                    child_ns: num("child_ns")?,
                    ops: ops_from_value(ops_value).ok_or_else(|| missing("spans[].ops"))?,
                },
            );
        }

        let mut wire = Vec::new();
        for entry in doc
            .get("wire")
            .and_then(Value::as_arr)
            .ok_or_else(|| missing("wire"))?
        {
            let label = entry
                .get("label")
                .and_then(Value::as_str)
                .ok_or_else(|| missing("wire[].label"))?;
            let num = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| missing(key))
            };
            let latencies = entry
                .get("round_latency_ns")
                .and_then(Value::as_arr)
                .ok_or_else(|| missing("wire[].round_latency_ns"))?
                .iter()
                .map(|v| v.as_u64().ok_or_else(|| missing("latency entry")))
                .collect::<Result<Vec<u64>, _>>()?;
            wire.push(WireRow {
                label: label.to_string(),
                stats: WireStats {
                    frames_sent: num("frames_sent")?,
                    frames_received: num("frames_received")?,
                    bytes_sent: num("bytes_sent")?,
                    bytes_received: num("bytes_received")?,
                    round_latency_ns: latencies,
                },
            });
        }

        Ok(Report { meta, spans, wire })
    }

    /// Serialize to CSV: one row per span and per wire entry, tagged by a
    /// leading `kind` column so the file stays a single flat table.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "kind,name,count,total_ns,self_ns,g_op,g_pow,gt_op,gt_pow,pairings,\
             frames_sent,frames_received,bytes_sent,bytes_received,rounds,latency_ns_total\n",
        );
        for (path, s) in &self.spans {
            out.push_str(&format!(
                "span,{},{},{},{},{},{},{},{},{},,,,,,\n",
                csv_field(path),
                s.count,
                s.total_ns,
                s.self_ns(),
                s.ops.g_op,
                s.ops.g_pow,
                s.ops.gt_op,
                s.ops.gt_pow,
                s.ops.pairings,
            ));
        }
        for row in &self.wire {
            out.push_str(&format!(
                "wire,{},,,,,,,,,{},{},{},{},{},{}\n",
                csv_field(&row.label),
                row.stats.frames_sent,
                row.stats.frames_received,
                row.stats.bytes_sent,
                row.stats.bytes_received,
                row.stats.rounds(),
                row.stats.total_latency_ns(),
            ));
        }
        out
    }

    /// Render the spans as an indented tree (grouped by dotted path
    /// segments) followed by the wire rows — the `dlr metrics` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.meta.is_empty() {
            for (k, v) in &self.meta {
                out.push_str(&format!("# {k}: {v}\n"));
            }
            out.push('\n');
        }
        out.push_str("spans:\n");
        if self.spans.is_empty() {
            out.push_str("  (none recorded)\n");
        }
        for (path, s) in &self.spans {
            // BTreeMap order sorts parents before their dotted children
            // ("dec" < "dec.p1.start"); indent each span under its longest
            // recorded ancestor.
            let (depth, label) = match longest_ancestor(&self.spans, path) {
                Some(ancestor) => (
                    ancestor.matches('.').count() + 1,
                    path[ancestor.len() + 1..].to_string(),
                ),
                None => (0, path.clone()),
            };
            out.push_str(&format!(
                "  {:indent$}{:<width$} count={:<4} total={:<10} self={:<10} [{}]\n",
                "",
                label,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.self_ns()),
                s.ops,
                indent = depth * 2,
                width = 24usize.saturating_sub(depth * 2),
            ));
        }
        if !self.wire.is_empty() {
            out.push_str("\nwire:\n");
            for row in &self.wire {
                out.push_str(&format!(
                    "  {:<24} frames {}/{} (sent/recv)  bytes {}/{}  rounds={} latency={}\n",
                    row.label,
                    row.stats.frames_sent,
                    row.stats.frames_received,
                    row.stats.bytes_sent,
                    row.stats.bytes_received,
                    row.stats.rounds(),
                    fmt_ns(row.stats.total_latency_ns()),
                ));
            }
        }
        out
    }
}

/// The longest strict dotted prefix of `path` recorded as a span, if any.
fn longest_ancestor<'a>(
    spans: &'a BTreeMap<String, SpanStats>,
    path: &str,
) -> Option<&'a str> {
    let mut prefix = path;
    while let Some((head, _)) = prefix.rsplit_once('.') {
        if let Some((key, _)) = spans.get_key_value(head) {
            return Some(key.as_str());
        }
        prefix = head;
    }
    None
}

fn ops_to_value(ops: &OpsReport) -> Value {
    Value::Obj(vec![
        ("g_op".into(), Value::Num(ops.g_op)),
        ("g_pow".into(), Value::Num(ops.g_pow)),
        ("gt_op".into(), Value::Num(ops.gt_op)),
        ("gt_pow".into(), Value::Num(ops.gt_pow)),
        ("pairings".into(), Value::Num(ops.pairings)),
    ])
}

fn ops_from_value(v: &Value) -> Option<OpsReport> {
    Some(OpsReport {
        g_op: v.get("g_op")?.as_u64()?,
        g_pow: v.get("g_pow")?.as_u64()?,
        gt_op: v.get("gt_op")?.as_u64()?,
        gt_pow: v.get("gt_pow")?.as_u64()?,
        pairings: v.get("pairings")?.as_u64()?,
    })
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Human-readable nanosecond quantity (`412 ns`, `3.21 µs`, `8.10 ms`...).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut report = Report::default().with_meta("curve", "TOY");
        report.spans.insert(
            "dec".into(),
            SpanStats {
                count: 3,
                total_ns: 5_000,
                child_ns: 4_000,
                ops: OpsReport {
                    g_op: 1,
                    g_pow: 2,
                    gt_op: 3,
                    gt_pow: 4,
                    pairings: 5,
                },
            },
        );
        report.spans.insert(
            "dec.p1.start".into(),
            SpanStats {
                count: 3,
                total_ns: 4_000,
                child_ns: 0,
                ops: OpsReport::default(),
            },
        );
        report.push_wire(
            "driver.decrypt",
            WireStats {
                frames_sent: 2,
                frames_received: 2,
                bytes_sent: 210,
                bytes_received: 180,
                round_latency_ns: vec![900, 1_100],
            },
        );
        report
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let report = sample();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn empty_report_roundtrips() {
        let report = Report::default();
        assert_eq!(Report::from_json(&report.to_json()).unwrap(), report);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("{\"spans\": [{}], \"wire\": []}").is_err());
        assert!(Report::from_json("not json").is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 spans + 1 wire
        assert!(lines[0].starts_with("kind,name,count"));
        assert!(lines[1].starts_with("span,dec,3,5000,1000"));
        assert!(lines[3].starts_with("wire,driver.decrypt,"));
        assert!(lines[3].ends_with(",2,2,210,180,2,2000"));
    }

    #[test]
    fn render_indents_children() {
        let text = sample().render();
        assert!(text.contains("# curve: TOY"));
        assert!(text.contains("\n  dec "));
        // child rendered with indentation and shortened label
        assert!(text.contains("    p1.start"));
        assert!(text.contains("rounds=2"));
    }

    #[test]
    fn self_ns_saturates() {
        let s = SpanStats {
            count: 1,
            total_ns: 10,
            child_ns: 25, // clock skew across threads could cause this
            ops: OpsReport::default(),
        };
        assert_eq!(s.self_ns(), 0);
    }
}
