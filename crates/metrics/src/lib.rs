#![warn(missing_docs)]

//! # dlr-metrics — phase-scoped instrumentation for the DLR stack
//!
//! The paper's efficiency claims (§1.1, footnote 3) are about *where* the
//! work happens: how many exponentiations and pairings each device performs
//! per protocol phase, and how much crosses the public channel. This crate
//! turns those questions into data:
//!
//! * [`span()`] — wrap a protocol phase in a named span. Each span records
//!   wall-clock time and the [`OpsReport`](dlr_curve::counters::OpsReport)
//!   delta (group operations performed inside it), aggregated per thread
//!   and merged into a process-wide registry when the outermost span on a
//!   thread exits.
//! * [`Report`] — a snapshot of the registry plus wire-level statistics
//!   ([`WireStats`](dlr_protocol::WireStats) rows from recorded transport
//!   endpoints), serializable to JSON and CSV and renderable as a span
//!   tree.
//!
//! ## Span taxonomy
//!
//! Span names are dotted paths; the segments form the tree shown by
//! `dlr metrics` and the `path` field of the JSON export. The names used
//! by `dlr-core` are:
//!
//! | span | meaning |
//! |------|---------|
//! | `gen` | key generation (`DKG`) |
//! | `enc` | public-key encryption |
//! | `dec` | full two-party decryption (driver/local runner) |
//! | `dec.p1.start` | P1 computes the first decryption message |
//! | `dec.p2.respond` | P2's decryption share |
//! | `dec.p1.finish` | P1 combines shares into the plaintext |
//! | `refresh` | full two-party share refresh |
//! | `refresh.p1.start` | P1 opens the refresh round |
//! | `refresh.p2.respond` | P2's refresh response |
//! | `refresh.p1.finish` | P1 installs the refreshed share |
//! | `hpske.enc` / `hpske.dec` | Π_comm homomorphic PKE operations |
//! | `pss.gen` / `pss.enc` / `pss.dec` | Π_ss proactive secret sharing |
//!
//! Timing and operation counts are **inclusive** (a parent span contains
//! its children); `self_ns` subtracts the directly-nested child time.
//!
//! ## Example
//!
//! ```
//! use dlr_metrics::{span, Report};
//!
//! dlr_metrics::reset();
//! let value = span("outer", || {
//!     span("outer.inner", || 40) + 2
//! });
//! assert_eq!(value, 42);
//! let report = Report::capture();
//! assert_eq!(report.spans["outer"].count, 1);
//! let json = report.to_json();
//! assert_eq!(Report::from_json(&json).unwrap(), report);
//! ```

pub mod json;
pub mod report;
pub mod span;

pub use report::{Report, SpanStats, WireRow};
pub use span::{reset, snapshot_spans, span};
