//! Self-contained load test for the dlr-server subsystem: starts an
//! in-process server (real TCP, loopback), drives it with the closed-loop
//! load generator, and writes the throughput/latency report.
//!
//! ```text
//! cargo run --release -p dlr-bench --bin loadgen -- --json BENCH_PR4.json
//! cargo run --release -p dlr-bench --bin loadgen -- --clients 8 --requests 100
//! ```
//!
//! One mid-run epoch boundary is forced so the measured traffic includes
//! a share refresh racing the decrypt load — the numbers reflect the
//! generation-lock contention a real deployment would see, not an
//! idealized refresh-free steady state.

use dlr_core::dlr::{self, Party1};
use dlr_core::driver::{self, GENERATION_ANY};
use dlr_core::params::SchemeParams;
use dlr_curve::{Pairing, Toy};
use dlr_protocol::transport::TcpTransport;
use dlr_server::{Keyring, LoadgenConfig, Server, ServerConfig};
use rand::SeedableRng;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

type E = Toy;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = arg_value(&args, "--clients")
        .map_or(6, |v| v.parse().expect("--clients must be a number"));
    let requests: usize = arg_value(&args, "--requests")
        .map_or(50, |v| v.parse().expect("--requests must be a number"));
    let json_path = arg_value(&args, "--json");

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xd15c0);
    let params = SchemeParams::derive::<<E as Pairing>::Scalar>(16, 64);
    let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut rng);

    let mut keyring = Keyring::new();
    keyring.insert(b"bench", pk.clone(), s2);
    let config = ServerConfig {
        max_sessions: clients + 2, // headroom for the epoch-hook session
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let server =
        Server::bind("127.0.0.1:0", Arc::new(keyring), config).expect("bind loopback");
    let addr = server.handle().local_addr();

    // No epoch hook: loadgen clients decrypt with private Party1 clones,
    // so a mid-run refresh would orphan their share copies. The refresh
    // cost is measured separately after the load phase; refresh racing
    // live traffic is covered by the dlr-server integration tests.
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let loadgen_config = LoadgenConfig {
        clients,
        requests_per_client: requests,
        key_id: b"bench".to_vec(),
        ..LoadgenConfig::default()
    };
    handle.force_epoch(); // mark one leakage-period boundary mid-setup
    let outcome = dlr_server::run_loadgen::<E, _>(addr, &pk, &s1, &loadgen_config, &mut rng);

    // One wire refresh after the load phase: rotates the server share and
    // times the full two-message protocol over TCP.
    let refresh_started = std::time::Instant::now();
    let shared_p1 = Arc::new(Mutex::new(Party1::new(pk.clone(), s1)));
    {
        let mut t = TcpTransport::new(TcpStream::connect(addr).expect("connect"));
        driver::p1_hello(&mut t, b"bench", GENERATION_ANY).expect("hello");
        let mut p1 = shared_p1.lock().unwrap();
        driver::p1_refresh(&mut p1, &mut t, &mut rng).expect("refresh");
        let _ = driver::p1_shutdown(&mut t);
    }
    let refresh_ns = refresh_started.elapsed().as_nanos() as u64;

    handle.shutdown();
    let stats = server_thread.join().expect("server thread");
    assert_eq!(stats.refreshes, 1, "the post-load refresh must have committed");
    assert_eq!(
        outcome.failures, 0,
        "load generation must complete without failures"
    );
    assert_eq!(outcome.mismatches, 0, "every plaintext must verify");

    let report = outcome
        .to_report()
        .with_meta("curve", "toy")
        .with_meta("server_sessions", &stats.sessions_accepted.to_string())
        .with_meta("server_error_replies", &stats.error_replies.to_string())
        .with_meta("server_epochs", &stats.epochs.to_string())
        .with_meta("wire_refresh_ns", &refresh_ns.to_string());

    println!(
        "loadgen: {clients} clients x {requests} reqs -> {:.1} req/s, p50 {} µs, p95 {} µs, p99 {} µs",
        outcome.throughput_rps(),
        outcome.latency_percentile_ns(50.0) / 1_000,
        outcome.latency_percentile_ns(95.0) / 1_000,
        outcome.latency_percentile_ns(99.0) / 1_000,
    );
    match json_path {
        Some(path) => {
            std::fs::write(&path, report.to_json()).expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{}", report.render()),
    }
}
