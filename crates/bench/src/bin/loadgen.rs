//! Self-contained load test for the dlr-server subsystem: starts an
//! in-process server (real TCP, loopback), drives it with the closed-loop
//! load generator, and writes the throughput/latency report.
//!
//! ```text
//! cargo run --release -p dlr-bench --bin loadgen -- --json BENCH_PR4.json
//! cargo run --release -p dlr-bench --bin loadgen -- --clients 8 --requests 100
//! cargo run --release -p dlr-bench --bin loadgen -- --fleet --json BENCH_PR9.json
//! ```
//!
//! One mid-run epoch boundary is forced so the measured traffic includes
//! a share refresh racing the decrypt load — the numbers reflect the
//! generation-lock contention a real deployment would see, not an
//! idealized refresh-free steady state.
//!
//! `--fleet` runs the identical workload against a 2-replica key-sharded
//! fleet through routed clients (the `BENCH_PR9.json` methodology):
//! same seed, same op-count fingerprint, plus redirect/failover counters
//! and per-shard percentiles in the report metadata.
//!
//! The sessions themselves live in [`dlr_bench::artifact::loadgen_session`]
//! and [`dlr_bench::artifact::fleet_loadgen_session`], shared with the
//! `dlr artifact` harness so the committed `BENCH_PR*.json` and the
//! regenerated `out/L1.json` / `out/L3.json` come from the same code path.

use dlr_bench::artifact::{fleet_loadgen_session, loadgen_session};

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = arg_value(&args, "--clients")
        .map_or(6, |v| v.parse().expect("--clients must be a number"));
    let requests: usize = arg_value(&args, "--requests")
        .map_or(50, |v| v.parse().expect("--requests must be a number"));
    let json_path = arg_value(&args, "--json");
    let fleet = args.iter().any(|a| a == "--fleet");

    let report = if fleet {
        let session = fleet_loadgen_session(clients, requests);
        let outcome = &session.outcome;
        println!(
            "fleet loadgen: {clients} clients x {requests} reqs over {} replicas -> \
             {:.1} req/s, p50 {} µs, p95 {} µs, {} redirects, {} failovers",
            session.topology.replicas.len(),
            outcome.throughput_rps(),
            outcome.latency_percentile_ns(50.0) / 1_000,
            outcome.latency_percentile_ns(95.0) / 1_000,
            outcome.redirects,
            outcome.failovers,
        );
        session.report
    } else {
        let session = loadgen_session(clients, requests);
        let outcome = &session.outcome;
        println!(
            "loadgen: {clients} clients x {requests} reqs -> {:.1} req/s, p50 {} µs, p95 {} µs, p99 {} µs",
            outcome.throughput_rps(),
            outcome.latency_percentile_ns(50.0) / 1_000,
            outcome.latency_percentile_ns(95.0) / 1_000,
            outcome.latency_percentile_ns(99.0) / 1_000,
        );
        session.report
    };
    match json_path {
        Some(path) => {
            std::fs::write(&path, report.to_json()).expect("write report");
            eprintln!("wrote {path}");
        }
        None => println!("{}", report.render()),
    }
}
