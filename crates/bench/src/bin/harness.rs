//! The experiment harness: regenerates every table and figure of
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p dlr-bench --bin harness -- all
//! cargo run --release -p dlr-bench --bin harness -- t1 f3
//! cargo run --release -p dlr-bench --bin harness -- t2 f1 f2 --json BENCH_PR1.json
//! ```
//!
//! `--json <path>` additionally runs the instrumented metrics session
//! (`dlr_bench::metrics_session`) and writes its report as JSON.

use dlr_bench::{experiments as exp, metrics_session};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();

    // Strip `--json <path>` before section matching.
    let mut json_path: Option<String> = None;
    let mut args: Vec<String> = Vec::with_capacity(raw.len());
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            match it.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else {
            args.push(a);
        }
    }

    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |k: &str| all || args.iter().any(|a| a == k);

    // Trial counts: quick mode for CI-ish runs, deeper with --full.
    let full = args.iter().any(|a| a == "--full");
    let trials = if full { 200 } else { 40 };

    let mut ran = 0;
    if want("t1") {
        println!("{}\n", exp::t1_refresh_leakage_comparison());
        ran += 1;
    }
    if want("t2") {
        println!("{}\n", exp::t2_efficiency_comparison());
        ran += 1;
    }
    if want("t3") {
        println!("{}\n", exp::t3_theorem41_bounds());
        ran += 1;
    }
    if want("f1") {
        println!("{}\n", exp::f1_device_work_split());
        ran += 1;
    }
    if want("f2") || json_path.is_some() {
        let report = metrics_session(if full { 50 } else { 10 });
        if want("f2") {
            println!("F2 — instrumented session: per-phase spans, group ops, wire traffic");
            println!("(timing-grade latency figures: cargo bench -p dlr-bench)\n");
            println!("{}\n", report.render());
            ran += 1;
        }
        if let Some(path) = &json_path {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
            ran += 1;
        }
    }
    if want("f3") {
        println!("{}\n", exp::f3_attack_resilience(trials));
        ran += 1;
    }
    if want("f4") {
        println!("{}\n", exp::f4_continual_property(trials));
        ran += 1;
    }
    if want("f5") {
        println!("{}\n", exp::f5_entropy_margins());
        ran += 1;
    }
    if want("f6") {
        println!("{}\n", exp::f6_storage_system());
        ran += 1;
    }
    if want("f7") {
        println!("{}\n", exp::f7_dibe_cca2_overhead());
        ran += 1;
    }
    if want("f8") {
        println!("{}\n", exp::f8_backend_comparison());
        ran += 1;
    }
    if ran == 0 {
        eprintln!(
            "usage: harness [--full] [--json <path>] [all | t1 t2 t3 f1 f2 f3 f4 f5 f6 f7 f8]\n(F2 timing-grade latency figures: cargo bench -p dlr-bench)"
        );
        std::process::exit(2);
    }
}
