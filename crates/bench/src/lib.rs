//! # dlr-bench — the experiment harness
//!
//! Each public function regenerates one table/figure of EXPERIMENTS.md and
//! returns it as preformatted text; the `harness` binary prints them. The
//! timing-grade numbers live in the criterion benches (`benches/`).

pub mod artifact;
pub mod experiments;
pub mod metrics_session;
pub mod table;

pub use experiments::*;
pub use metrics_session::metrics_session;
