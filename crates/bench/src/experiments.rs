//! The experiment implementations — one function per table/figure of
//! EXPERIMENTS.md.
//!
//! All experiments run on the TOY parameter set so the whole suite
//! completes in seconds; the criterion benches cover the larger parameter
//! sets for timing.

use crate::table::Table;
use dlr_baselines::{bitbybit, elgamal, naive, naor_segev};
use dlr_core::params::SchemeParams;
use dlr_core::party::P1Layout;
use dlr_core::{cca2, dibe, dlr, ibe, storage};
use dlr_curve::counters;
use dlr_curve::{Group, Gt, Pairing, Toy, G};
use dlr_hash::ots::{Lamport, OneTimeSignature, Winternitz};
use dlr_leakage::adversaries::BitProbe;
use dlr_leakage::bounds::{LeakageBounds, PRIOR_COSTS, PRIOR_WORK};
use dlr_leakage::entropy::{leak_sigma_prefix, HpskeEntropy};
use dlr_leakage::game::{estimate_win_rate, GameConfig};
use dlr_math::FieldElement;
use rand::rngs::StdRng;
use rand::SeedableRng;

type E = Toy;
type Fr = <E as Pairing>::Scalar;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn toy_params() -> SchemeParams {
    SchemeParams::derive::<Fr>(16, 64)
}

fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// **T1** — tolerated leakage fraction *during key refresh* (§1.2.1 ¶3).
pub fn t1_refresh_leakage_comparison() -> String {
    let mut t = Table::new(["scheme", "refresh leakage fraction", "source"]);
    for prior in PRIOR_WORK {
        t.row([prior.name, prior.display, prior.reference]);
    }
    // Ours, from the implemented memory layout, at growing λ.
    for lambda in [1u32 << 10, 1 << 14, 1 << 20] {
        let params = SchemeParams::derive_for_bits(256, 256, lambda);
        let b = LeakageBounds::theorem41(&params);
        t.row([
            "DLR (this repo)".to_string(),
            format!(
                "P1: {} (→1/2),  P2: {} (proof: 1)",
                f3(b.rho1_refresh()),
                f3(b.rho2_refresh())
            ),
            format!("measured layout, λ=2^{}", lambda.trailing_zeros()),
        ]);
    }
    format!(
        "T1 — tolerated leakage fraction during key refresh\n{}",
        t.render()
    )
}

/// **T2** — per-encryption efficiency (footnote 3), measured via the group
/// operation counters.
pub fn t2_efficiency_comparison() -> String {
    let mut r = rng(1000);
    let params = toy_params();
    let mut t = Table::new([
        "scheme",
        "granularity",
        "ct elements",
        "ct bytes",
        "G-exp",
        "GT-exp",
        "pairings",
    ]);

    // DLR
    let (pk, _s1, _s2) = dlr::keygen::<E, _>(params, &mut r);
    let m = Gt::<E>::random(&mut r);
    let (_ct, ops) = counters::measure(|| dlr::encrypt(&pk, &m, &mut r));
    t.row([
        "DLR (measured)".to_string(),
        "GT element".to_string(),
        "2".to_string(),
        dlr::Ciphertext::<E>::byte_len().to_string(),
        ops.g_pow.to_string(),
        ops.gt_pow.to_string(),
        format!("{} (e(g1,g2) cached in pk)", ops.pairings),
    ]);

    // ElGamal floor over GT
    let (epk, _esk) = elgamal::keygen::<Gt<E>, _>(&mut r);
    let (_c, ops) = counters::measure(|| elgamal::encrypt(&epk, &m, &mut r));
    t.row([
        "ElGamal-GT (measured)".to_string(),
        "GT element".to_string(),
        "2".to_string(),
        (2 * Gt::<E>::byte_len()).to_string(),
        ops.g_pow.to_string(),
        ops.gt_pow.to_string(),
        ops.pairings.to_string(),
    ]);

    // Naor–Segev (bounded leakage, not refreshable)
    let (npk, _nsk) = naor_segev::keygen::<G<E>, _>(params.ell, &mut r);
    let gm = G::<E>::random(&mut r);
    let (nct, ops) = counters::measure(|| naor_segev::encrypt(&npk, &gm, &mut r));
    t.row([
        "Naor-Segev [32] (measured)".to_string(),
        "G element".to_string(),
        (nct.c.len() + 1).to_string(),
        ((nct.c.len() + 1) * G::<E>::byte_len()).to_string(),
        ops.g_pow.to_string(),
        ops.gt_pow.to_string(),
        ops.pairings.to_string(),
    ]);

    // Bit-by-bit ([11]-style cost), per 16-bit message, n_elems = 16
    let n_elems = 16usize;
    let (bpk, _bsk) = bitbybit::keygen::<G<E>, _>(n_elems, &mut r);
    let (bct, ops) = counters::measure(|| bitbybit::encrypt(&bpk, b"ab", &mut r));
    t.row([
        format!("bit-by-bit [11]-style, n={n_elems} (measured)"),
        "bit".to_string(),
        format!("{} for 16 bits", bct.group_elements()),
        (bct.group_elements() * G::<E>::byte_len()).to_string(),
        format!("{} ({}/bit)", ops.g_pow, ops.g_pow / 16),
        ops.gt_pow.to_string(),
        ops.pairings.to_string(),
    ]);

    let mut asym = Table::new(["scheme", "granularity", "ct elements", "exp/enc", "notes"]);
    for c in PRIOR_COSTS {
        asym.row([c.name, c.granularity, c.ct_elements, c.exps_per_enc, c.notes]);
    }

    format!(
        "T2 — per-encryption cost, measured on TOY (ℓ={}, κ={})\n{}\nT2b — asymptotic claims from the paper (footnote 3)\n{}",
        params.ell,
        params.kappa,
        t.render(),
        asym.render()
    )
}

/// **T3** — Theorem 4.1 leakage bounds and rates vs λ, analytic from the
/// implemented layout plus measured device memory sizes.
pub fn t3_theorem41_bounds() -> String {
    let mut t = Table::new([
        "λ", "κ", "ℓ", "m1 (bits)", "b1=λ", "ρ1", "ρ1_ref", "ρ2", "ρ2_ref",
    ]);
    for lambda in [256u32, 1024, 4096, 16384, 1 << 20] {
        let params = SchemeParams::derive_for_bits(256, 128, lambda);
        let b = LeakageBounds::theorem41(&params);
        t.row([
            lambda.to_string(),
            params.kappa.to_string(),
            params.ell.to_string(),
            b.m1_normal_bits.to_string(),
            b.b1_bits.to_string(),
            f3(b.rho1()),
            f3(b.rho1_refresh()),
            f3(b.rho2()),
            format!("{} (proof: 1)", f3(b.rho2_refresh())),
        ]);
    }

    // Measured secret-memory sizes on the implementation (TOY curve).
    let mut m = Table::new([
        "λ",
        "P1 secret bits (streaming)",
        "P1 secret bits (plain)",
        "P2 secret bits",
        "analytic m1+log p",
    ]);
    let mut r = rng(1100);
    for lambda in [64u32, 256, 1024] {
        let params = SchemeParams::derive::<Fr>(16, lambda);
        let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut r);
        let streaming = dlr_core::party::AnyParty1::new(
            P1Layout::Streaming,
            pk.clone(),
            s1.clone(),
            &mut r,
        );
        let plain = dlr_core::party::AnyParty1::new(P1Layout::Plain, pk.clone(), s1, &mut r);
        let p2 = dlr::Party2::new(pk, s2);
        let bounds = LeakageBounds::theorem41(&params);
        m.row([
            lambda.to_string(),
            streaming.device().secret.total_bits().to_string(),
            plain.device().secret.total_bits().to_string(),
            p2.device().secret.total_bits().to_string(),
            bounds.m1_normal_bits.to_string(),
        ]);
    }

    format!(
        "T3 — Theorem 4.1 bounds (log p = 256, n = 128); ρ1 → 1−o(1), ρ1_ref → 1/2−o(1)\n{}\nT3b — measured secret-memory sizes (TOY curve; stored bytes ≥ entropy bits)\n{}",
        t.render(),
        m.render()
    )
}

/// **F1** — the device work split (§1.1 "simplicity of one of the two
/// devices"): P2 does only products-of-powers, never pairs.
pub fn f1_device_work_split() -> String {
    let mut out = String::from("F1 — per-protocol operation counts by device\n");
    let mut r = rng(1200);
    for lambda in [64u32, 256] {
        let params = SchemeParams::derive::<Fr>(16, lambda);
        let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut r);
        let mut p1 = dlr_core::party::AnyParty1::new(P1Layout::Streaming, pk.clone(), s1, &mut r);
        let mut p2 = dlr::Party2::new(pk.clone(), s2);
        let m = Gt::<E>::random(&mut r);
        let ct = dlr::encrypt(&pk, &m, &mut r);

        let mut t = Table::new(["phase", "device", "G-exp", "GT-exp", "pairings", "msg bytes"]);
        let (m1, ops1) = counters::measure(|| p1.dec_start(&ct, &mut r));
        let m1_bytes = m1.to_bytes().len();
        let (m2, ops2) = counters::measure(|| p2.dec_respond(&m1).unwrap());
        let m2_bytes = m2.to_bytes().len();
        let (_mm, ops1b) = counters::measure(|| p1.dec_finish(&m2).unwrap());
        t.row([
            "decrypt".to_string(),
            "P1".to_string(),
            (ops1.g_pow + ops1b.g_pow).to_string(),
            (ops1.gt_pow + ops1b.gt_pow).to_string(),
            (ops1.pairings + ops1b.pairings).to_string(),
            m1_bytes.to_string(),
        ]);
        t.row([
            "decrypt".to_string(),
            "P2".to_string(),
            ops2.g_pow.to_string(),
            ops2.gt_pow.to_string(),
            ops2.pairings.to_string(),
            m2_bytes.to_string(),
        ]);

        let (r1, opsr1) = counters::measure(|| p1.ref_start(&mut r));
        let r1_bytes = r1.to_bytes().len();
        let (r2, opsr2) = counters::measure(|| p2.ref_respond(&r1, &mut r).unwrap());
        let r2_bytes = r2.to_bytes().len();
        let (_, opsr1b) = counters::measure(|| {
            p1.ref_finish(&r2, &mut r).unwrap();
            p1.ref_complete().unwrap();
            p2.ref_complete().unwrap();
        });
        t.row([
            "refresh".to_string(),
            "P1".to_string(),
            (opsr1.g_pow + opsr1b.g_pow).to_string(),
            (opsr1.gt_pow + opsr1b.gt_pow).to_string(),
            (opsr1.pairings + opsr1b.pairings).to_string(),
            r1_bytes.to_string(),
        ]);
        t.row([
            "refresh".to_string(),
            "P2".to_string(),
            opsr2.g_pow.to_string(),
            opsr2.gt_pow.to_string(),
            opsr2.pairings.to_string(),
            r2_bytes.to_string(),
        ]);

        out.push_str(&format!(
            "\nλ = {lambda} (ℓ = {}, κ = {}):\n{}",
            params.ell,
            params.kappa,
            t.render()
        ));
    }
    out.push_str("\nNote: P2 performs zero pairings in every phase — it is the paper's 'auxiliary device' (smart card).\n");
    out
}

/// **F3** — attack resilience: bit-probe win rates against DLR vs the
/// naive single-device baseline, as the per-period leakage rate grows.
pub fn f3_attack_resilience(trials: usize) -> String {
    let mut r = rng(1300);
    let params = toy_params();
    let share2_bits = params.ell * Fr::byte_len() * 8;
    let cfg = GameConfig::theorem_bounds::<E>(params, P1Layout::Streaming);
    let naive_sk_bits = Fr::byte_len() * 8; // 64 on TOY
    let periods = 4u64;

    let mut t = Table::new([
        "rate (fraction/period)",
        "DLR win rate",
        "naive single-device win rate",
    ]);
    for frac in [0.05f64, 0.125, 0.25, 0.5, 1.0] {
        let p2_bits = ((share2_bits as f64) * frac) as usize;
        let p1_bits = ((params.lambda as f64) * frac / periods as f64) as usize;
        let stats = estimate_win_rate::<E, _>(
            &cfg,
            || Box::new(BitProbe::new(p1_bits, p2_bits, periods)),
            trials,
            &mut r,
        );
        let naive_bits = ((naive_sk_bits as f64) * frac) as usize;
        let naive_rate =
            naive::estimate_naive_win_rate::<Gt<E>, _>(naive_bits, periods, trials, &mut r);
        t.row([
            format!("{frac:.3}"),
            format!("{} (aborts {})", f3(stats.win_rate()), stats.aborts),
            f3(naive_rate),
        ]);
    }
    format!(
        "F3 — bit-probe adversary, {periods} periods, {trials} trials/point (TOY)\nDLR stays at ≈ 1/2 at every rate (shares refresh + split); the naive\nscheme collapses once cumulative coverage reaches its key size (rate ≥ 0.25).\n{}",
        t.render()
    )
}

/// **F4** — the continual property: total leaked bits grow without bound
/// while DLR's advantage stays flat.
pub fn f4_continual_property(trials: usize) -> String {
    let mut r = rng(1400);
    let params = toy_params();
    let cfg = GameConfig::theorem_bounds::<E>(params, P1Layout::Streaming);
    let per_period_p2 = 64usize; // well inside b2
    let naive_bits = 16usize; // naive key = 64 bits → covered at 4 periods

    let mut t = Table::new([
        "periods",
        "DLR total leaked (bits)",
        "DLR win rate",
        "naive win rate",
        "NS [32] budget state",
    ]);
    let ns_budget = naor_segev::leakage_bound(params.ell, params.log_p, params.n);
    for periods in [1u64, 2, 4, 8, 16] {
        let stats = estimate_win_rate::<E, _>(
            &cfg,
            || Box::new(BitProbe::new(8, per_period_p2, periods)),
            trials,
            &mut r,
        );
        let total = periods * (8 + per_period_p2 as u64);
        let naive_rate =
            naive::estimate_naive_win_rate::<Gt<E>, _>(naive_bits, periods, trials, &mut r);
        let ns_state = if (total as i64) <= ns_budget {
            format!("ok ({total}/{ns_budget})")
        } else {
            format!("EXHAUSTED ({total}/{ns_budget})")
        };
        t.row([
            periods.to_string(),
            total.to_string(),
            f3(stats.win_rate()),
            f3(naive_rate),
            ns_state,
        ]);
    }
    format!(
        "F4 — advantage vs number of periods at fixed per-period leakage ({trials} trials/point)\nDLR's win rate is flat while its lifetime leakage grows linearly; the\nnon-refreshable baselines have a finite budget (NS) or collapse (naive).\n{}",
        t.render()
    )
}

/// **F5** — exact HPSKE entropy margins on mini groups (Def. 5.1(2)).
pub fn f5_entropy_margins() -> String {
    let mut t = Table::new([
        "κ", "ℓ", "λ (bits)", "prior H∞", "H̃∞(m|c,L)", "loss", "≥ prior−log r−λ ?",
    ]);
    let log_r = 17f64.log2();
    for (kappa, ell, lambdas) in [(1usize, 1usize, &[0u32, 1, 2, 3, 4][..]), (2, 1, &[0, 2, 4])] {
        let exp = HpskeEntropy::<dlr_curve::modgroup::Mini17>::new(kappa, ell);
        let leak = leak_sigma_prefix();
        for &lam in lambdas {
            let res = exp.exact(lam, &leak);
            let floor = res.prior_entropy - log_r - lam as f64;
            t.row([
                kappa.to_string(),
                ell.to_string(),
                lam.to_string(),
                f3(res.prior_entropy),
                f3(res.conditional_entropy),
                f3(res.loss()),
                (res.conditional_entropy >= floor - 1e-9).to_string(),
            ]);
        }
    }
    format!(
        "F5 — exact average min-entropy of HPSKE plaintexts given ciphertexts\nand λ bits of key leakage (MINI17 group, exhaustive enumeration).\nThe ciphertext itself costs ≤ log r bits; leakage costs ≤ λ more — the\nleftover-hash-lemma shape behind Definition 5.1(2).\n{}",
        t.render()
    )
}

/// **F6** — the secure-storage system (§4.4): correctness and churn across
/// periods.
pub fn f6_storage_system() -> String {
    let mut r = rng(1600);
    let params = toy_params();
    let payload = b"long-term secret stored on continually leaky hardware";
    let mut store = storage::LeakyStorage::<E>::store(params, payload, &mut r);
    let mut t = Table::new(["period", "ct bytes", "ct changed", "retrieve ok", "refresh ms"]);
    let mut prev = store
        .storage_device()
        .public
        .get("ciphertext")
        .unwrap()
        .to_vec();
    for period in 1..=6u64 {
        let t0 = std::time::Instant::now();
        store.refresh(&mut r).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let cur = store
            .storage_device()
            .public
            .get("ciphertext")
            .unwrap()
            .to_vec();
        let ok = store.retrieve(&mut r).unwrap() == payload;
        t.row([
            period.to_string(),
            cur.len().to_string(),
            (cur != prev).to_string(),
            ok.to_string(),
            format!("{ms:.1}"),
        ]);
        prev = cur;
    }
    format!(
        "F6 — secure storage on leaky devices: every period re-randomizes the\nstored ciphertext and refreshes the key shares; the payload survives.\n{}",
        t.render()
    )
}

/// **F7** — DIBE + CCA2 overhead: key/ciphertext sizes and operation
/// counts, incl. the OTS choice ablation.
pub fn f7_dibe_cca2_overhead() -> String {
    let mut r = rng(1700);
    let params = toy_params();
    let n_id = 16usize;
    let (ibe_params, ms1, ms2) = dibe::dibe_keygen::<E, _>(params, n_id, &mut r);
    let mut p1 = dibe::DibeParty1::new(ibe_params.clone(), ms1);
    let mut p2 = dibe::DibeParty2::new(ibe_params.clone(), ms2);

    let ((id1, _id2), idops) = counters::measure(|| {
        dibe::idkey_local(&mut p1, &mut p2, b"alice@example.org", &mut r).unwrap()
    });

    let mut t = Table::new(["object", "value"]);
    let g_bytes = G::<E>::byte_len();
    t.row([
        "identity bits n_id".to_string(),
        n_id.to_string(),
    ]);
    t.row([
        "master share sk1 (elements)".to_string(),
        format!("{} G = {} bytes", params.ell + 1, (params.ell + 1) * g_bytes),
    ]);
    t.row([
        "identity share sk1_ID (elements)".to_string(),
        format!(
            "{} G = {} bytes",
            n_id + params.ell + 1,
            (n_id + params.ell + 1) * g_bytes
        ),
    ]);
    t.row([
        "idkey-gen protocol ops".to_string(),
        format!("{idops}"),
    ]);
    let m = Gt::<E>::random(&mut r);
    let ibe_ct = ibe::encrypt(&ibe_params, b"alice@example.org", &m, &mut r);
    t.row([
        "IBE ciphertext bytes".to_string(),
        ibe_ct.to_bytes().len().to_string(),
    ]);
    let _ = id1;

    // CCA2 with three OTS choices
    let mut o = Table::new(["OTS", "vk bytes", "sig bytes", "cca2 ct bytes", "enc ms"]);
    macro_rules! ots_row {
        ($name:expr, $S:ty) => {{
            let t0 = std::time::Instant::now();
            let ct = cca2::encrypt::<E, $S, _>(&ibe_params, &m, &mut r);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(cca2::verify(&ct));
            o.row([
                $name.to_string(),
                <$S>::verify_key_bytes(&ct.vk).len().to_string(),
                <$S>::signature_bytes(&ct.sig).len().to_string(),
                ct.to_bytes().len().to_string(),
                format!("{ms:.1}"),
            ]);
        }};
    }
    ots_row!("Lamport", Lamport);
    ots_row!("WOTS w=16", Winternitz<4>);
    ots_row!("WOTS w=256", Winternitz<8>);

    format!(
        "F7 — DIBE and CCA2 overhead (TOY, n_id = {n_id})\n{}\nOTS ablation inside the BCHK transform:\n{}",
        t.render(),
        o.render()
    )
}

/// **F8** — backend comparison: the same scheme over the faithful Type-1
/// supersingular instantiation vs the Type-3 BLS12-381 production backend.
pub fn f8_backend_comparison() -> String {
    use dlr_bls12::Bls12_381;

    fn row<P: Pairing>(label: &str, n: u32, lambda: u32, t: &mut Table) {
        let mut r = rng(1800);
        let params = SchemeParams::derive::<P::Scalar>(n, lambda);
        let (pk, s1, s2) = dlr::keygen::<P, _>(params, &mut r);
        let mut p1 = dlr::Party1::new(pk.clone(), s1);
        let mut p2 = dlr::Party2::new(pk.clone(), s2);
        let m = <P as Pairing>::Gt::random(&mut r);

        let (ct, enc_ops) = counters::measure(|| dlr::encrypt(&pk, &m, &mut r));
        let t0 = std::time::Instant::now();
        let out = dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap();
        let dec_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out, m);
        let t0 = std::time::Instant::now();
        dlr::refresh_local(&mut p1, &mut p2, &mut r).unwrap();
        let ref_ms = t0.elapsed().as_secs_f64() * 1e3;

        t.row([
            label.to_string(),
            format!("κ={} ℓ={}", params.kappa, params.ell),
            ct.to_bytes().len().to_string(),
            format!("{}G1+{}GT exp", enc_ops.g_pow, enc_ops.gt_pow),
            format!("{dec_ms:.0}"),
            format!("{ref_ms:.0}"),
        ]);
    }

    let mut t = Table::new([
        "backend",
        "params (n=16, λ=64)",
        "ct bytes",
        "enc cost",
        "dec ms",
        "refresh ms",
    ]);
    row::<Toy>("TOY (Type-1 supersingular, 71-bit)", 16, 64, &mut t);
    row::<dlr_curve::Ss512>("SS512 (Type-1 supersingular)", 16, 64, &mut t);
    row::<Bls12_381>("BLS12-381 (Type-3, from scratch)", 16, 64, &mut t);

    format!(
        "F8 — the same generic scheme over both pairing backends (wall-clock,
release-mode single run; BLS12-381 uses the transparent affine-F_q12
Miller loop, so its pairings are deliberately unoptimized)
{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_contains_all_schemes() {
        let s = t1_refresh_leakage_comparison();
        for name in ["BKKV", "LLW", "DLWW", "LRW", "DLR"] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
    }

    #[test]
    fn t2_measures_two_exps_for_dlr() {
        let s = t2_efficiency_comparison();
        assert!(s.contains("DLR (measured)"));
        assert!(s.contains("bit-by-bit"));
    }

    #[test]
    fn t3_rates_move_with_lambda() {
        let s = t3_theorem41_bounds();
        assert!(s.contains("ρ1"));
        assert!(s.contains("0.500 (proof: 1)"));
    }

    #[test]
    fn f1_p2_never_pairs() {
        let s = f1_device_work_split();
        // every P2 row must end with zero pairings — checked in the text
        for line in s.lines().filter(|l| l.contains("| P2")) {
            let cells: Vec<&str> = line.split('|').map(str::trim).collect();
            assert_eq!(cells[cells.len() - 3], "0", "P2 paired! {line}");
        }
    }

    #[test]
    fn f5_floor_always_holds() {
        let s = f5_entropy_margins();
        assert!(!s.contains("false"), "entropy floor violated:\n{s}");
    }

    #[test]
    fn f6_storage_survives() {
        let s = f6_storage_system();
        assert!(!s.contains("| false"), "storage failed:\n{s}");
    }

    #[test]
    #[ignore = "slow: runs full protocols on SS512 and BLS12-381"]
    fn f8_runs_all_backends() {
        let s = f8_backend_comparison();
        assert!(s.contains("BLS12-381"));
        assert!(s.contains("SS512"));
    }

    #[test]
    fn f7_has_ots_ablation() {
        let s = f7_dibe_cca2_overhead();
        assert!(s.contains("Lamport"));
        assert!(s.contains("WOTS w=16"));
    }
}
