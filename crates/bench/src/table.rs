//! Minimal text-table formatter for harness output.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a header row.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
                line.push_str(" | ");
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["xxxx", "y"]);
        let s = t.render();
        assert!(s.contains("| a    | long header |"));
        assert!(s.contains("| xxxx | y           |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
