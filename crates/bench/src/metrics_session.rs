//! An instrumented end-to-end DLR session producing a
//! [`dlr_metrics::Report`] — the data source behind `harness --json` and
//! the `dlr metrics` CLI subcommand.
//!
//! The session runs on the TOY parameter set (like the experiment tables)
//! and exercises both execution styles:
//!
//! * `trials` in-process protocol runs (`decrypt_local` / `refresh_local`)
//!   to populate the span registry with per-phase wall-clock time and
//!   operation counts;
//! * one transport-backed session per protocol over `run_pair` (the
//!   `driver` module, in-memory duplex channel) to collect wire-level
//!   statistics: frames, bytes and per-round latency at `P1`'s endpoint.

use dlr_core::params::SchemeParams;
use dlr_core::{dlr, driver};
use dlr_curve::{Group, Pairing, Toy};
use dlr_metrics::Report;
use dlr_protocol::runtime::run_pair;
use rand::rngs::StdRng;
use rand::SeedableRng;

type E = Toy;
type Fr = <E as Pairing>::Scalar;

/// Run the instrumented session and return the collected report.
///
/// Resets the global span registry first, so the report covers exactly
/// this session. `trials` controls how many decrypt/refresh pairs feed
/// the span aggregates (wire statistics always come from one driver
/// session per protocol).
pub fn metrics_session(trials: u32) -> Report {
    dlr_metrics::reset();
    let mut r = StdRng::seed_from_u64(7);
    let params = SchemeParams::derive::<Fr>(16, 64);

    // Phase spans: keygen / encrypt / local protocol runs.
    let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut r);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);

    let mut p1 = dlr::Party1::new(pk.clone(), s1.clone());
    let mut p2 = dlr::Party2::new(pk.clone(), s2.clone());
    for _ in 0..trials {
        let got = dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut r).expect("decrypt_local");
        assert_eq!(got, m, "instrumented session must still decrypt correctly");
        dlr::refresh_local(&mut p1, &mut p2, &mut r).expect("refresh_local");
    }

    // Wire statistics: one decrypt and one refresh over a real transport.
    let (mut d1, mut d2) = (
        dlr::Party1::new(pk.clone(), s1.clone()),
        dlr::Party2::new(pk.clone(), s2.clone()),
    );
    let ct2 = ct;
    let out = run_pair(
        move |t| {
            let mut rng = StdRng::seed_from_u64(8);
            let got = driver::p1_decrypt(&mut d1, &ct2, t, &mut rng).expect("p1_decrypt");
            driver::p1_shutdown(t).expect("p1_shutdown");
            got
        },
        move |t| {
            let mut rng = StdRng::seed_from_u64(9);
            driver::p2_serve_loop(&mut d2, t, &mut rng).expect("p2_serve_loop")
        },
    );
    assert_eq!(out.p1, m, "driver session must still decrypt correctly");
    let wire_decrypt = out.wire;

    let (mut r1, mut r2) = (
        dlr::Party1::new(pk.clone(), s1),
        dlr::Party2::new(pk, s2),
    );
    let out = run_pair(
        move |t| {
            let mut rng = StdRng::seed_from_u64(10);
            driver::p1_refresh(&mut r1, t, &mut rng).expect("p1_refresh");
            driver::p1_shutdown(t).expect("p1_shutdown");
        },
        move |t| {
            let mut rng = StdRng::seed_from_u64(11);
            driver::p2_serve_loop(&mut r2, t, &mut rng).expect("p2_serve_loop")
        },
    );
    // Capture only after the driver threads have joined, so their spans
    // (flushed at outermost exit on each worker thread) are included.
    let mut report = Report::capture()
        .with_meta("curve", "TOY")
        .with_meta("trials", &trials.to_string());
    report.push_wire("driver.decrypt", wire_decrypt);
    report.push_wire("driver.refresh", out.wire);

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_produces_complete_report() {
        let report = metrics_session(2);
        // Every taxonomy span that the session exercises must be present.
        for path in [
            "gen",
            "enc",
            "dec",
            "dec.p1.start",
            "dec.p2.respond",
            "dec.p1.finish",
            "refresh",
            "refresh.p1.start",
            "refresh.p2.respond",
            "refresh.p1.finish",
            "hpske.enc",
            "hpske.dec",
            "pss.gen",
            "pss.enc",
        ] {
            assert!(report.spans.contains_key(path), "missing span {path}");
        }
        // 2 local trials + 1 driver decrypt (counted on its own thread).
        assert_eq!(report.spans["dec"].count, 3);
        assert_eq!(report.spans["refresh"].count, 3);
        // Decryption does pairings on P1, and P2 never pairs (§1.1).
        assert!(report.spans["dec.p1.start"].ops.pairings > 0);
        assert_eq!(report.spans["dec.p2.respond"].ops.pairings, 0);
        // Wire rows: both protocols, non-trivial traffic, one round each.
        assert_eq!(report.wire.len(), 2);
        for row in &report.wire {
            assert!(row.stats.frames_sent >= 2, "{}", row.label); // request + shutdown
            assert_eq!(row.stats.frames_received, 1, "{}", row.label);
            assert!(row.stats.bytes_sent > 100, "{}", row.label);
            assert!(row.stats.bytes_received > 0, "{}", row.label);
            assert_eq!(row.stats.rounds(), 1, "{}", row.label);
        }
        // The export round-trips.
        let json = report.to_json();
        assert_eq!(dlr_metrics::Report::from_json(&json).unwrap(), report);
    }
}
