//! F2 — latency of Gen/Enc/Dec/Ref vs security level and leakage
//! parameter. The protocol phases run on TOY and SS512; κ/ℓ scaling is
//! shown by sweeping λ on TOY.

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_core::dlr;
use dlr_core::params::SchemeParams;
use dlr_curve::{Group, Pairing, Ss512, Toy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_suite<E: Pairing>(c: &mut Criterion, label: &str, n: u32, lambda: u32) {
    let mut rng = StdRng::seed_from_u64(42);
    let params = SchemeParams::derive::<E::Scalar>(n, lambda);
    let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut rng);
    let mut p1 = dlr::Party1::new(pk.clone(), s1);
    let mut p2 = dlr::Party2::new(pk.clone(), s2);
    let m = E::Gt::random(&mut rng);
    let ct = dlr::encrypt(&pk, &m, &mut rng);

    c.bench_function(&format!("f2/{label}/keygen"), |b| {
        b.iter(|| dlr::keygen::<E, _>(params, &mut rng))
    });
    c.bench_function(&format!("f2/{label}/encrypt"), |b| {
        b.iter(|| dlr::encrypt(&pk, &m, &mut rng))
    });
    c.bench_function(&format!("f2/{label}/decrypt-protocol"), |b| {
        b.iter(|| dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut rng).unwrap())
    });
    c.bench_function(&format!("f2/{label}/refresh-protocol"), |b| {
        b.iter(|| dlr::refresh_local(&mut p1, &mut p2, &mut rng).unwrap())
    });
}

fn benches(c: &mut Criterion) {
    // λ sweep on TOY: ℓ, κ grow linearly in λ / log p
    bench_suite::<Toy>(c, "TOY/lam64", 16, 64);
    bench_suite::<Toy>(c, "TOY/lam256", 16, 256);
    bench_suite::<Toy>(c, "TOY/lam1024", 16, 1024);
    // benchmark-grade curve
    bench_suite::<Ss512>(c, "SS512/lam512", 64, 512);
}

criterion_group! {
    name = f2;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(f2);
