//! A2 — ablation: Straus interleaved multi-exponentiation vs naive
//! per-base exponentiation (the workhorse of `P2`'s protocol role).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_curve::{multiexp, Group, Pairing, Toy, G};
use dlr_math::FieldElement;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(19);
    let mut group = c.benchmark_group("a2/multiexp");
    for n in [4usize, 16, 64] {
        let bases: Vec<G<Toy>> = (0..n).map(|_| G::random(&mut rng)).collect();
        let exps: Vec<<Toy as Pairing>::Scalar> = (0..n)
            .map(|_| <Toy as Pairing>::Scalar::random(&mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("straus", n), &n, |b, _| {
            b.iter(|| multiexp::straus_raw(&bases, &exps))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| multiexp::naive(&bases, &exps))
        });
    }
    group.finish();
}

criterion_group! {
    name = a2;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(a2);
