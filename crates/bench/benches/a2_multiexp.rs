//! A2 — ablation: the multi-exponentiation engines (Pippenger bucket
//! windows, Straus interleaving, naive per-base exponentiation) across the
//! batch widths `P2`'s protocol role produces. The TOY grid shows the
//! small-batch regime; the SS512 `ℓ = 3κ = 1542` case (heavy-leakage
//! profile `derive_for_bits(256, 128, 131072)`, κ = 514) is the wide
//! regime the Pippenger engine targets — expect ≥1.5x over Straus there.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_core::params::SchemeParams;
use dlr_curve::{multiexp, Group, Pairing, Ss512, Toy, G};
use dlr_math::FieldElement;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(19);
    let mut group = c.benchmark_group("a2/multiexp");
    for n in [4usize, 16, 64] {
        let bases: Vec<G<Toy>> = (0..n).map(|_| G::random(&mut rng)).collect();
        let exps: Vec<<Toy as Pairing>::Scalar> = (0..n)
            .map(|_| <Toy as Pairing>::Scalar::random(&mut rng))
            .collect();
        group.bench_with_input(BenchmarkId::new("straus", n), &n, |b, _| {
            b.iter(|| multiexp::straus_raw(&bases, &exps))
        });
        group.bench_with_input(BenchmarkId::new("pippenger", n), &n, |b, _| {
            b.iter(|| multiexp::pippenger_raw(&bases, &exps))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| multiexp::naive(&bases, &exps))
        });
    }
    group.finish();

    // The wide-batch regime on a production-width curve. ℓ = 3κ is the
    // Πss share width of the decryption protocol; the heavy-leakage
    // profile drives κ to 514, far past the Straus/Pippenger crossover.
    let params = SchemeParams::derive_for_bits(256, 128, 131072);
    let n = 3 * params.kappa;
    assert_eq!(n, 1542, "heavy-leakage 3κ moved; update the A8 docs");
    let bases: Vec<G<Ss512>> = (0..n).map(|_| G::random(&mut rng)).collect();
    let exps: Vec<<Ss512 as Pairing>::Scalar> = (0..n)
        .map(|_| <Ss512 as Pairing>::Scalar::random(&mut rng))
        .collect();
    let mut group = c.benchmark_group("a2/multiexp-ss512");
    group.bench_with_input(BenchmarkId::new("straus", n), &n, |b, _| {
        b.iter(|| multiexp::straus_raw(&bases, &exps))
    });
    group.bench_with_input(BenchmarkId::new("pippenger", n), &n, |b, _| {
        b.iter(|| multiexp::pippenger_raw(&bases, &exps))
    });
    group.finish();
}

criterion_group! {
    name = a2;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(a2);
