//! A7 — ablation: the fixed-base exponentiation engine vs naive pow.
//!
//! Four comparisons on the encryption hot-path shape:
//!
//! * `encrypt/fixed` vs `encrypt/naive` — `Enc_pk(m) = (g^t, m·z^t)`
//!   through the cached comb tables (`generator_pow` + `pow_z`) vs the
//!   same formula recomputed with the generic sliding-window `pow`. The
//!   headline claim (≥3× at SS512) lives here; the bench first *asserts*
//!   that both paths produce bit-identical ciphertexts with byte-identical
//!   op counts, so the speedup is pure table reuse, not a changed formula.
//! * `generator_pow/fixed` vs `generator_pow/naive` — the `g^t` half in
//!   isolation, Toy and SS512.
//! * `varbase_pow/window` vs `varbase_pow/ladder` — the sliding-window
//!   variable-base engine vs the Montgomery ladder (no tables for either).
//! * `hpske_pow/tables` vs `hpske_pow/direct` — coordinate-wise ciphertext
//!   powers through [`HpskeTables`] vs `HpskeCiphertext::pow`, the
//!   period-fixed-element shape of `CommMode::Reuse`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_core::dlr::{self, Ciphertext, PublicKey};
use dlr_core::hpske::{self, HpskeKey, HpskeTables};
use dlr_core::params::SchemeParams;
use dlr_curve::counters::measure;
use dlr_curve::{FixedBase, Group, Pairing, Ss512, Toy, G};
use dlr_math::FieldElement;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The same `(g^t, m·z^t)` formula with no fixed-base tables anywhere:
/// generic sliding-window pow on the generator and on `z`.
fn naive_encrypt<E: Pairing>(pk: &PublicKey<E>, m: &E::Gt, t: &E::Scalar) -> Ciphertext<E> {
    Ciphertext {
        big_a: E::G1::generator().pow(t),
        big_b: m.op(&pk.z.pow(t)),
    }
}

/// Both encrypt paths must be indistinguishable to everything but the
/// clock: same ciphertext bytes, same operation counts.
fn assert_encrypt_parity<E: Pairing>(pk: &PublicKey<E>, m: &E::Gt, t: &E::Scalar) {
    pk.warm();
    let (fixed, fixed_ops) = measure(|| dlr::encrypt_with_randomness(pk, m, t));
    let (naive, naive_ops) = measure(|| naive_encrypt(pk, m, t));
    assert_eq!(fixed.to_bytes(), naive.to_bytes(), "ciphertexts diverged");
    assert_eq!(fixed_ops, naive_ops, "op counts diverged");
}

fn keygen<E: Pairing>(seed: u64) -> (PublicKey<E>, E::Scalar, E::Gt) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = SchemeParams::derive::<E::Scalar>(16, 64);
    let (pk, _s1, _s2) = dlr::keygen::<E, _>(params, &mut rng);
    let t = E::Scalar::random(&mut rng);
    let m = E::Gt::random(&mut rng);
    (pk, t, m)
}

fn benches(c: &mut Criterion) {
    // --- encrypt: cached tables vs naive, Toy and SS512 -------------------
    {
        let mut group = c.benchmark_group("a7/encrypt");
        macro_rules! encrypt_pair {
            ($P:ty, $label:literal, $seed:literal) => {{
                let (pk, t, m) = keygen::<$P>($seed);
                assert_encrypt_parity(&pk, &m, &t);
                group.bench_with_input(BenchmarkId::new("naive", $label), &(), |b, _| {
                    b.iter(|| naive_encrypt(&pk, &m, &t))
                });
                group.bench_with_input(BenchmarkId::new("fixed", $label), &(), |b, _| {
                    b.iter(|| dlr::encrypt_with_randomness(&pk, &m, &t))
                });
            }};
        }
        encrypt_pair!(Toy, "toy", 41);
        encrypt_pair!(Ss512, "ss512", 42);
        group.finish();
    }

    // --- generator_pow in isolation --------------------------------------
    {
        let mut group = c.benchmark_group("a7/generator_pow");
        macro_rules! gen_pair {
            ($P:ty, $label:literal, $seed:literal) => {{
                let mut rng = StdRng::seed_from_u64($seed);
                let t = <G<$P> as Group>::Scalar::random(&mut rng);
                <G<$P>>::warm_generator_tables();
                assert_eq!(<G<$P>>::generator_pow(&t), <G<$P>>::generator().pow(&t));
                group.bench_with_input(BenchmarkId::new("naive", $label), &(), |b, _| {
                    b.iter(|| <G<$P>>::generator().pow(&t))
                });
                group.bench_with_input(BenchmarkId::new("fixed", $label), &(), |b, _| {
                    b.iter(|| <G<$P>>::generator_pow(&t))
                });
            }};
        }
        gen_pair!(Toy, "toy", 43);
        gen_pair!(Ss512, "ss512", 44);
        group.finish();
    }

    // --- variable-base: sliding window vs ladder --------------------------
    {
        let mut group = c.benchmark_group("a7/varbase_pow");
        let mut rng = StdRng::seed_from_u64(45);
        let base = G::<Ss512>::random(&mut rng);
        let t = <G<Ss512> as Group>::Scalar::random(&mut rng);
        assert_eq!(base.pow(&t), base.pow_ladder(&t));
        group.bench_with_input(BenchmarkId::new("ladder", "ss512"), &(), |b, _| b.iter(|| base.pow_ladder(&t)));
        group.bench_with_input(BenchmarkId::new("window", "ss512"), &(), |b, _| b.iter(|| base.pow(&t)));
        // table-build cost, for the DESIGN.md break-even discussion
        group.bench_with_input(BenchmarkId::new("comb_build", "ss512"), &(), |b, _| b.iter(|| FixedBase::new(&base)));
        group.bench_with_input(BenchmarkId::new("comb_eval", "ss512"), &(), |b, _| {
            let table = FixedBase::new(&base);
            b.iter(|| table.pow_fixed(&t))
        });
        group.finish();
    }

    // --- HPSKE period-fixed ciphertext powers ------------------------------
    {
        let mut group = c.benchmark_group("a7/hpske_pow");
        let mut rng = StdRng::seed_from_u64(46);
        let key = HpskeKey::generate(4, &mut rng);
        let m = G::<Ss512>::random(&mut rng);
        let ct = hpske::encrypt(&key, &m, &mut rng);
        let tables = HpskeTables::new(&ct);
        let s = <G<Ss512> as Group>::Scalar::random(&mut rng);
        assert_eq!(tables.pow_fixed(&s), ct.pow(&s));
        group.bench_with_input(BenchmarkId::new("direct", "ss512"), &(), |b, _| b.iter(|| ct.pow(&s)));
        group.bench_with_input(BenchmarkId::new("tables", "ss512"), &(), |b, _| b.iter(|| tables.pow_fixed(&s)));
        group.finish();
    }
}

criterion_group! {
    name = a7;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(a7);
