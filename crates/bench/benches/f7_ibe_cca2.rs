//! F7 — DIBE and CCA2 phase latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_core::params::SchemeParams;
use dlr_core::{cca2, dibe, ibe};
use dlr_curve::{Group, Pairing, Toy};
use dlr_hash::ots::Winternitz;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

type W16 = Winternitz<4>;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 64);
    let n_id = 16usize;
    let (ibe_params, ms1, ms2) = dibe::dibe_keygen::<Toy, _>(params, n_id, &mut rng);
    let mut p1 = dibe::DibeParty1::new(ibe_params.clone(), ms1);
    let mut p2 = dibe::DibeParty2::new(ibe_params.clone(), ms2);
    let m = <Toy as Pairing>::Gt::random(&mut rng);

    c.bench_function("f7/dibe-idkey-gen-protocol", |b| {
        b.iter(|| dibe::idkey_local(&mut p1, &mut p2, b"alice", &mut rng).unwrap())
    });

    let (id1, id2) = dibe::idkey_local(&mut p1, &mut p2, b"alice", &mut rng).unwrap();
    let mut ip1 = dibe::IdParty1::new(&ibe_params, id1);
    let mut ip2 = dibe::IdParty2::new(&ibe_params, id2);
    let ct = ibe::encrypt(&ibe_params, b"alice", &m, &mut rng);

    c.bench_function("f7/ibe-encrypt", |b| {
        b.iter(|| ibe::encrypt(&ibe_params, b"alice", &m, &mut rng))
    });
    c.bench_function("f7/dibe-decrypt-protocol", |b| {
        b.iter(|| dibe::dibe_decrypt_local(&mut ip1, &mut ip2, &ct, &mut rng).unwrap())
    });
    c.bench_function("f7/dibe-idkey-refresh", |b| {
        b.iter(|| dibe::dibe_refresh_idkey_local(&mut ip1, &mut ip2, &mut rng).unwrap())
    });

    c.bench_function("f7/cca2-encrypt-wots16", |b| {
        b.iter(|| cca2::encrypt::<Toy, W16, _>(&ibe_params, &m, &mut rng))
    });
    let cct = cca2::encrypt::<Toy, W16, _>(&ibe_params, &m, &mut rng);
    c.bench_function("f7/cca2-verify-wots16", |b| {
        b.iter(|| assert!(cca2::verify(&cct)))
    });
    c.bench_function("f7/cca2-decrypt-distributed", |b| {
        b.iter(|| cca2::decrypt_distributed(&mut p1, &mut p2, &cct, &mut rng).unwrap())
    });
}

criterion_group! {
    name = f7;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(f7);
