//! A6 — ablation: the batched pairing engine vs per-element pairing.
//!
//! Three comparisons on the decryption hot-path shape (`κ+1` second
//! arguments per fixed `A`, ℓ-term pairing products):
//!
//! * `multi/prepared` vs `multi/direct` — cached Miller lines + batched
//!   final exponentiation vs one full `tate_pairing` per element;
//! * `product/shared` vs `product/fold` — shared squaring chain and single
//!   final exponentiation vs folding per-element pairings;
//! * `multi/parallel` — the prepared path with the scoped-thread fan-out
//!   enabled (workers = 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlr_curve::{pairing, Group, Pairing, PreparedPoint, Toy, G};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let a = G::<Toy>::random(&mut rng);

    let mut group = c.benchmark_group("a6/multi_pairing");
    for n in [4usize, 16, 64] {
        let qs: Vec<G<Toy>> = (0..n).map(|_| G::random(&mut rng)).collect();
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| qs.iter().map(|q| pairing::tate_pairing::<Toy>(&a, q)).collect::<Vec<_>>())
        });
        group.bench_with_input(BenchmarkId::new("prepared", n), &n, |b, _| {
            b.iter(|| {
                let prep = PreparedPoint::<Toy>::prepare(&a);
                prep.multi_pairing(&qs)
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            dlr_curve::set_parallel_threads(4);
            b.iter(|| {
                let prep = PreparedPoint::<Toy>::prepare(&a);
                prep.multi_pairing(&qs)
            });
            dlr_curve::set_parallel_threads(0);
        });
    }
    group.finish();

    let mut group = c.benchmark_group("a6/pairing_product");
    for n in [4usize, 16, 64] {
        let pairs: Vec<(G<Toy>, G<Toy>)> = (0..n)
            .map(|_| (G::random(&mut rng), G::random(&mut rng)))
            .collect();
        group.bench_with_input(BenchmarkId::new("fold", n), &n, |b, _| {
            b.iter(|| {
                pairs
                    .iter()
                    .fold(dlr_curve::Gt::<Toy>::identity(), |acc, (p, q)| {
                        acc.op(&Toy::pair(p, q))
                    })
            })
        });
        group.bench_with_input(BenchmarkId::new("shared", n), &n, |b, _| {
            b.iter(|| pairing::pairing_product::<Toy>(&pairs))
        });
    }
    group.finish();
}

criterion_group! {
    name = a6;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(a6);
