//! A1 — ablation: the §5.2 ciphertext-reuse remark vs fresh per-protocol
//! ciphertexts (one full period: decrypt + refresh).

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_core::dlr::{self, CommMode};
use dlr_core::params::SchemeParams;
use dlr_curve::{Group, Pairing, Toy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_mode(c: &mut Criterion, label: &str, mode: CommMode) {
    let mut rng = StdRng::seed_from_u64(17);
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 256);
    let (pk, s1, s2) = dlr::keygen::<Toy, _>(params, &mut rng);
    let mut p1 = dlr::Party1::with_mode(pk.clone(), s1, mode);
    let mut p2 = dlr::Party2::new(pk.clone(), s2);
    let m = <Toy as Pairing>::Gt::random(&mut rng);
    let ct = dlr::encrypt(&pk, &m, &mut rng);

    c.bench_function(&format!("a1/full-period/{label}"), |b| {
        b.iter(|| {
            let out = dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut rng).unwrap();
            dlr::refresh_local(&mut p1, &mut p2, &mut rng).unwrap();
            out
        })
    });
}

fn benches(c: &mut Criterion) {
    bench_mode(c, "reuse", CommMode::Reuse);
    bench_mode(c, "fresh", CommMode::Fresh);
}

criterion_group! {
    name = a1;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(a1);
