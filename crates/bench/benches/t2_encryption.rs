//! T2 — encryption cost across schemes (timing counterpart of
//! `harness t2`'s operation counts).

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_baselines::{bitbybit, elgamal, naor_segev};
use dlr_core::dlr;
use dlr_core::params::SchemeParams;
use dlr_curve::{Group, Gt, Pairing, Ss512, Toy, G};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 64);

    let (pk, _s1, _s2) = dlr::keygen::<Toy, _>(params, &mut rng);
    let m = Gt::<Toy>::random(&mut rng);
    c.bench_function("t2/TOY/dlr-encrypt", |b| {
        b.iter(|| dlr::encrypt(&pk, &m, &mut rng))
    });

    let (epk, _) = elgamal::keygen::<Gt<Toy>, _>(&mut rng);
    c.bench_function("t2/TOY/elgamal-gt-encrypt", |b| {
        b.iter(|| elgamal::encrypt(&epk, &m, &mut rng))
    });

    let (npk, _) = naor_segev::keygen::<G<Toy>, _>(params.ell, &mut rng);
    let gm = G::<Toy>::random(&mut rng);
    c.bench_function("t2/TOY/naor-segev-encrypt", |b| {
        b.iter(|| naor_segev::encrypt(&npk, &gm, &mut rng))
    });

    let (bpk, _) = bitbybit::keygen::<G<Toy>, _>(16, &mut rng);
    c.bench_function("t2/TOY/bitbybit-encrypt-16bits", |b| {
        b.iter(|| bitbybit::encrypt(&bpk, b"ab", &mut rng))
    });

    // headline scheme at benchmark scale
    let params512 = SchemeParams::derive::<<Ss512 as Pairing>::Scalar>(64, 512);
    let (pk512, _, _) = dlr::keygen::<Ss512, _>(params512, &mut rng);
    let m512 = Gt::<Ss512>::random(&mut rng);
    c.bench_function("t2/SS512/dlr-encrypt", |b| {
        b.iter(|| dlr::encrypt(&pk512, &m512, &mut rng))
    });
}

criterion_group! {
    name = t2;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(t2);
