//! A5 — ablation: cyclotomic vs plain squaring in the BLS12-381 target
//! group (the inner loop of the final exponentiation).

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_bls12::fq12::Fq12;
use dlr_bls12::pairing::final_exponentiation;
use dlr_math::FieldElement;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(31);
    let f = Fq12::random(&mut rng);
    let u = final_exponentiation(&f).expect("nonzero"); // unitary, order r

    c.bench_function("a5/fq12-square-plain", |b| b.iter(|| u.square()));
    c.bench_function("a5/fq12-square-cyclotomic", |b| {
        b.iter(|| u.cyclotomic_square())
    });
    c.bench_function("a5/fq12-pow256-plain", |b| {
        b.iter(|| u.pow_vartime(&[u64::MAX, u64::MAX, u64::MAX, u64::MAX]))
    });
    c.bench_function("a5/fq12-pow256-cyclotomic", |b| {
        b.iter(|| u.pow_vartime_unitary(&[u64::MAX, u64::MAX, u64::MAX, u64::MAX]))
    });
    c.bench_function("a5/final-exponentiation", |b| {
        b.iter(|| final_exponentiation(&f).unwrap())
    });
}

criterion_group! {
    name = a5;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(a5);
