//! F1 — wall-clock split between the main processor `P1` and the auxiliary
//! device `P2` per protocol phase.

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_core::dlr;
use dlr_core::params::SchemeParams;
use dlr_curve::{Group, Pairing, Toy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 256);
    let (pk, s1, s2) = dlr::keygen::<Toy, _>(params, &mut rng);
    let mut p1 = dlr::Party1::new(pk.clone(), s1);
    let mut p2 = dlr::Party2::new(pk.clone(), s2);
    let m = <Toy as Pairing>::Gt::random(&mut rng);
    let ct = dlr::encrypt(&pk, &m, &mut rng);

    // pre-build messages so each side is timed in isolation
    let msg1 = p1.dec_start(&ct, &mut rng);
    c.bench_function("f1/dec/p2-respond", |b| {
        b.iter(|| p2.dec_respond(&msg1).unwrap())
    });
    c.bench_function("f1/dec/p1-start", |b| {
        b.iter(|| p1.dec_start(&ct, &mut rng))
    });

    let rmsg1 = p1.ref_start(&mut rng);
    c.bench_function("f1/ref/p2-respond", |b| {
        b.iter(|| {
            let out = p2.ref_respond(&rmsg1, &mut rng).unwrap();
            // drop the staged share so the state machine stays reusable
            p2.ref_complete().unwrap();
            out
        })
    });
    c.bench_function("f1/ref/p1-start", |b| {
        b.iter(|| p1.ref_start(&mut rng))
    });
}

criterion_group! {
    name = f1;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(f1);
