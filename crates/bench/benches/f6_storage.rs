//! F6 — secure-storage throughput: refresh and retrieve latency.

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_core::params::SchemeParams;
use dlr_core::storage::LeakyStorage;
use dlr_curve::{Pairing, Toy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let params = SchemeParams::derive::<<Toy as Pairing>::Scalar>(16, 64);
    let mut store = LeakyStorage::<Toy>::store(params, &[0xabu8; 256], &mut rng);

    c.bench_function("f6/storage-refresh-period", |b| {
        b.iter(|| store.refresh(&mut rng).unwrap())
    });
    c.bench_function("f6/storage-retrieve", |b| {
        b.iter(|| store.retrieve(&mut rng).unwrap())
    });
    c.bench_function("f6/storage-store-1kb", |b| {
        b.iter(|| LeakyStorage::<Toy>::store(params, &[1u8; 1024], &mut rng))
    });
}

criterion_group! {
    name = f6;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(f6);
