//! A4 — primitive costs across all curve parameter sets: pairing, G/GT
//! exponentiation, hash-to-curve. These are the atoms every protocol
//! figure decomposes into.

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_curve::{Group, Pairing, Ss1024, Ss512, Ss768, Toy};
use dlr_math::FieldElement;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_curve<E: Pairing>(c: &mut Criterion, label: &str) {
    let mut rng = StdRng::seed_from_u64(29);
    let g = E::G1::generator();
    let gt = E::Gt::generator();
    let s = E::Scalar::random(&mut rng);
    let p = E::G1::random(&mut rng);
    let q = E::G2::random(&mut rng);

    c.bench_function(&format!("a4/{label}/pairing"), |b| {
        b.iter(|| E::pair(&p, &q))
    });
    c.bench_function(&format!("a4/{label}/g-exp"), |b| b.iter(|| g.pow(&s)));
    c.bench_function(&format!("a4/{label}/gt-exp"), |b| b.iter(|| gt.pow(&s)));
    c.bench_function(&format!("a4/{label}/g1-random"), |b| {
        b.iter(|| E::G1::random(&mut rng))
    });
    c.bench_function(&format!("a4/{label}/g2-random"), |b| {
        b.iter(|| E::G2::random(&mut rng))
    });
    c.bench_function(&format!("a4/{label}/gt-random"), |b| {
        b.iter(|| E::Gt::random(&mut rng))
    });
}

fn benches(c: &mut Criterion) {
    bench_curve::<Toy>(c, "TOY");
    bench_curve::<Ss512>(c, "SS512");
    bench_curve::<Ss768>(c, "SS768");
    bench_curve::<Ss1024>(c, "SS1024");
    bench_curve::<dlr_bls12::Bls12_381>(c, "BLS12-381");
}

criterion_group! {
    name = a4;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(a4);
