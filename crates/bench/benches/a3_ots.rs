//! A3 — ablation: one-time signature choices inside the BCHK transform.

use criterion::{criterion_group, criterion_main, Criterion};
use dlr_hash::ots::{Lamport, OneTimeSignature, Winternitz};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_ots<S: OneTimeSignature>(c: &mut Criterion, label: &str) {
    let mut rng = StdRng::seed_from_u64(23);
    c.bench_function(&format!("a3/{label}/generate"), |b| {
        b.iter(|| S::generate(&mut rng))
    });
    let msg = b"the ciphertext bytes to be signed";
    c.bench_function(&format!("a3/{label}/sign"), |b| {
        b.iter(|| {
            let (sk, _vk) = S::generate(&mut rng);
            S::sign(sk, msg)
        })
    });
    let (sk, vk) = S::generate(&mut rng);
    let sig = S::sign(sk, msg);
    c.bench_function(&format!("a3/{label}/verify"), |b| {
        b.iter(|| assert!(S::verify(&vk, msg, &sig)))
    });
}

fn benches(c: &mut Criterion) {
    bench_ots::<Lamport>(c, "lamport");
    bench_ots::<Winternitz<4>>(c, "wots16");
    bench_ots::<Winternitz<8>>(c, "wots256");
}

criterion_group! {
    name = a3;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = benches
}
criterion_main!(a3);
