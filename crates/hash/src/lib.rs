//! # dlr-hash — SHA-2, HMAC, HKDF and one-time signatures from scratch
//!
//! Symmetric-crypto substrate for the DLR workspace:
//!
//! * [`sha256`] / [`sha512`] — FIPS 180-4 hash functions (validated against
//!   the FIPS test vectors);
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104 / 4231 vectors);
//! * [`hkdf`] — HKDF (RFC 5869 vectors), used to derive arbitrary-length
//!   digest streams for hash-to-curve and identity hashing;
//! * [`ots`] — Lamport and Winternitz one-time signatures, the ingredient
//!   the BCHK transform needs to lift the paper's DIBE to a CCA2-secure
//!   DPKE (§4.3).
//!
//! ```
//! let d = dlr_hash::sha256::digest(b"abc");
//! assert_eq!(d[0], 0xba);
//! ```

pub mod hkdf;
pub mod hmac;
pub mod ots;
pub mod sha256;
pub mod sha512;

pub use ots::OneTimeSignature;
