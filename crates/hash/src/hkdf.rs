//! HKDF (RFC 5869) over HMAC-SHA-256 — used to derive expandable digest
//! streams (e.g. hashing identities to `n`-bit strings, deriving
//! try-and-increment counters for hash-to-curve).

use crate::hmac::{hmac_sha256, HmacKey};
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: compress input keying material into a pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// An extracted pseudorandom key with its HMAC midstates prepared, for
/// callers that expand the same `(salt, ikm)` under many `info` values
/// (e.g. try-and-increment hash-to-curve): the extract and the per-block
/// key schedule are paid once instead of once per attempt. `Prk::expand`
/// returns byte-identical output to [`hkdf`].
#[derive(Clone, Debug)]
pub struct Prk {
    key: HmacKey,
}

impl Prk {
    /// Extract-then-prepare: equivalent to keying HMAC with
    /// `extract(salt, ikm)`.
    pub fn new(salt: &[u8], ikm: &[u8]) -> Self {
        Self {
            key: HmacKey::new(&extract(salt, ikm)),
        }
    }

    /// HKDF-Expand under this pseudorandom key.
    ///
    /// # Panics
    ///
    /// Panics if `len > 255 · 32` (the RFC 5869 maximum).
    pub fn expand(&self, info: &[u8], len: usize) -> Vec<u8> {
        assert!(len <= 255 * DIGEST_LEN, "hkdf expand length too large");
        let mut okm = Vec::with_capacity(len);
        let mut t: Vec<u8> = Vec::new();
        let mut counter = 1u8;
        while okm.len() < len {
            let mut h = self.key.begin();
            h.update(&t);
            h.update(info);
            h.update(&[counter]);
            t = h.finalize().to_vec();
            let take = (len - okm.len()).min(DIGEST_LEN);
            okm.extend_from_slice(&t[..take]);
            counter = counter.checked_add(1).expect("hkdf counter overflow");
        }
        okm
    }
}

/// HKDF-Expand: derive `len` output bytes from a pseudorandom key.
///
/// # Panics
///
/// Panics if `len > 255 · 32` (the RFC 5869 maximum).
pub fn expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    Prk {
        key: HmacKey::new(prk),
    }
    .expand(info, len)
}

/// Extract-then-expand in one call.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc5869_tc1() {
        let ikm = vec![0x0bu8; 22];
        let salt = hex("000102030405060708090a0b0c");
        let info = hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            prk.to_vec(),
            hex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            okm,
            hex("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
        );
    }

    #[test]
    fn rfc5869_tc3_empty_salt_info() {
        let ikm = vec![0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            okm,
            hex("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
        );
    }

    #[test]
    fn expand_lengths() {
        let prk = extract(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            let okm = expand(&prk, b"info", len);
            assert_eq!(okm.len(), len);
        }
        // prefix property: shorter outputs are prefixes of longer ones
        let long = expand(&prk, b"info", 100);
        let short = expand(&prk, b"info", 40);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn expand_rejects_huge_len() {
        expand(&[0u8; 32], b"", 255 * 32 + 1);
    }

    #[test]
    fn prk_expand_matches_one_shot_hkdf() {
        let prk = Prk::new(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            for info in [&b"info"[..], b"", b"dlr-h2c\x00\x00\x00\x07"] {
                assert_eq!(prk.expand(info, len), hkdf(b"salt", b"ikm", info, len));
            }
        }
    }
}
