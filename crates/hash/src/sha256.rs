//! SHA-256 (FIPS 180-4), implemented from scratch.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes (relevant to HMAC).
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 state.
///
/// ```
/// let mut h = dlr_hash::sha256::Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), dlr_hash::sha256::digest(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&data[..BLOCK_LEN]);
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Produce the digest, consuming the state.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // padding: 0x80, zeros, 8-byte big-endian bit length
        self.buf[self.buf_len] = 0x80;
        for b in &mut self.buf[self.buf_len + 1..] {
            *b = 0;
        }
        if self.buf_len + 1 + 8 > BLOCK_LEN {
            let block = self.buf;
            self.compress(&block);
            self.buf = [0u8; BLOCK_LEN];
        }
        self.buf[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        #[cfg(target_arch = "x86_64")]
        if ni::available() {
            // SAFETY: `available` checked the sha/ssse3/sse4.1 CPUID bits.
            unsafe { ni::compress(&mut self.state, block) };
            return;
        }
        self.compress_soft(block);
    }

    fn compress_soft(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, item) in w.iter_mut().take(16).enumerate() {
            *item = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hardware compression via the SHA-NI extension (`sha256rnds2` /
/// `sha256msg1` / `sha256msg2`), selected at runtime. Produces the same
/// state transition as [`Sha256::compress_soft`]; the `ni_matches_soft`
/// test checks them against each other on every length class.
#[cfg(target_arch = "x86_64")]
mod ni {
    use super::{BLOCK_LEN, K};
    #[allow(clippy::wildcard_imports)] // the intrinsics module is the API
    use core::arch::x86_64::*;

    pub fn available() -> bool {
        // `is_x86_feature_detected!` caches in an atomic, so this is a
        // relaxed load after the first call.
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Next four schedule words `w[i..i+4]` from the previous sixteen.
    #[inline(always)]
    unsafe fn schedule(w0: __m128i, w1: __m128i, w2: __m128i, w3: __m128i) -> __m128i {
        let t = _mm_add_epi32(_mm_sha256msg1_epu32(w0, w1), _mm_alignr_epi8(w3, w2, 4));
        _mm_sha256msg2_epu32(t, w3)
    }

    /// Four rounds: two `sha256rnds2` steps, role-swapping the ABEF/CDGH
    /// halves (after two rounds the old ABEF lanes *are* the new CDGH).
    #[inline(always)]
    unsafe fn rounds4(abef: &mut __m128i, cdgh: &mut __m128i, wk: __m128i) {
        *cdgh = _mm_sha256rnds2_epu32(*cdgh, *abef, wk);
        *abef = _mm_sha256rnds2_epu32(*abef, *cdgh, _mm_shuffle_epi32(wk, 0x0E));
    }

    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        // Repack [a,b,c,d] / [e,f,g,h] into the ABEF / CDGH lane order the
        // rnds2 instruction wants (lane 3 = A resp. C).
        let dcba = _mm_loadu_si128(state.as_ptr().cast());
        let hgfe = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let cdab = _mm_shuffle_epi32(dcba, 0xB1);
        let efgh = _mm_shuffle_epi32(hgfe, 0x1B);
        let mut abef = _mm_alignr_epi8(cdab, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, cdab, 0xF0);
        let abef_in = abef;
        let cdgh_in = cdgh;

        // Message load with per-word byte swap (input is big-endian).
        let bswap = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0b, 0x0405_0607_0001_0203);
        let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), bswap);
        let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), bswap);
        let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), bswap);
        let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), bswap);

        let k = |i: usize| _mm_loadu_si128(K.as_ptr().add(4 * i).cast());
        rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w0, k(0)));
        rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w1, k(1)));
        rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w2, k(2)));
        rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w3, k(3)));
        for i in 1..4 {
            w0 = schedule(w0, w1, w2, w3);
            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w0, k(4 * i)));
            w1 = schedule(w1, w2, w3, w0);
            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w1, k(4 * i + 1)));
            w2 = schedule(w2, w3, w0, w1);
            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w2, k(4 * i + 2)));
            w3 = schedule(w3, w0, w1, w2);
            rounds4(&mut abef, &mut cdgh, _mm_add_epi32(w3, k(4 * i + 3)));
        }

        abef = _mm_add_epi32(abef, abef_in);
        cdgh = _mm_add_epi32(cdgh, cdgh_in);
        // Repack ABEF / CDGH back to memory order.
        let feba = _mm_shuffle_epi32(abef, 0x1B);
        let dchg = _mm_shuffle_epi32(cdgh, 0xB1);
        let dcba = _mm_blend_epi16(feba, dchg, 0xF0);
        let hgfe = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(state.as_mut_ptr().cast(), dcba);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), hgfe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            digest(b"").to_vec(),
            hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        );
        assert_eq!(
            digest(b"abc").to_vec(),
            hex("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        );
        assert_eq!(
            digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_vec(),
            hex("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_vec(),
            hex("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 128, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn ni_matches_soft() {
        if !ni::available() {
            return;
        }
        // Differential: the hardware compression must produce the exact
        // state transition of the portable one, chained over many blocks.
        let data: Vec<u8> = (0u32..4096).map(|i| (i * 31 + i / 7) as u8).collect();
        let mut soft = Sha256::new();
        let mut hw = Sha256::new();
        for chunk in data.chunks(BLOCK_LEN) {
            let mut block = [0u8; BLOCK_LEN];
            block[..chunk.len()].copy_from_slice(chunk);
            soft.compress_soft(&block);
            unsafe { ni::compress(&mut hw.state, &block) };
            assert_eq!(soft.state, hw.state);
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56-byte padding boundary must all differ.
        let mut seen = std::collections::HashSet::new();
        for len in 0..130 {
            let d = digest(&vec![0xabu8; len]);
            assert!(seen.insert(d), "collision at length {len}");
        }
    }
}
