//! One-time signatures over SHA-256: Lamport and Winternitz (WOTS).
//!
//! The DLRCCA2 scheme (§4.3 of the paper) applies the Boneh–Canetti–Halevi–
//! Katz transform, which needs a **strongly unforgeable one-time signature**:
//! the IBE identity is the OTS verification key and the OTS signs the
//! ciphertext. Both schemes here are hash-based (no extra assumptions
//! beyond SHA-256 behaving as a one-way function), built from scratch.
//!
//! `sign` consumes the signing key — the type system enforces the
//! *one-time* property.

use crate::sha256::{self, DIGEST_LEN};
use rand::RngCore;

/// A one-time signature scheme.
pub trait OneTimeSignature {
    /// Signing key (consumed by signing).
    type SigningKey;
    /// Verification key.
    type VerifyKey: Clone + PartialEq + core::fmt::Debug;
    /// Signature.
    type Signature: Clone + PartialEq + core::fmt::Debug;

    /// Generate a fresh key pair.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> (Self::SigningKey, Self::VerifyKey);
    /// Sign a message, consuming the key.
    fn sign(sk: Self::SigningKey, message: &[u8]) -> Self::Signature;
    /// Verify a signature.
    fn verify(vk: &Self::VerifyKey, message: &[u8], sig: &Self::Signature) -> bool;
    /// Serialize the verification key (input to the IBE identity hash).
    fn verify_key_bytes(vk: &Self::VerifyKey) -> Vec<u8>;
    /// Serialize a signature.
    fn signature_bytes(sig: &Self::Signature) -> Vec<u8>;
    /// Parse a verification key.
    fn verify_key_from_bytes(bytes: &[u8]) -> Option<Self::VerifyKey>;
    /// Parse a signature.
    fn signature_from_bytes(bytes: &[u8]) -> Option<Self::Signature>;
}

// ---------------------------------------------------------------------------
// Lamport
// ---------------------------------------------------------------------------

/// Lamport one-time signature over SHA-256.
///
/// Keys are 2×256 preimages of 32 bytes; a signature reveals one preimage
/// per bit of `SHA-256(message)`.
#[derive(Debug)]
pub struct Lamport;

/// Lamport signing key: `sk[b][i]` is revealed when bit `i` of the message
/// digest equals `b`.
pub struct LamportSigningKey {
    sk: Box<[[[u8; DIGEST_LEN]; 256]; 2]>,
}

impl core::fmt::Debug for LamportSigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LamportSigningKey(<secret>)")
    }
}

/// Lamport verification key: hashes of all preimages.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportVerifyKey {
    pk: Box<[[[u8; DIGEST_LEN]; 256]; 2]>,
}

impl core::fmt::Debug for LamportVerifyKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let d = sha256::digest(&Lamport::verify_key_bytes(self));
        write!(f, "LamportVerifyKey(#{:02x}{:02x}{:02x}{:02x}…)", d[0], d[1], d[2], d[3])
    }
}

/// Lamport signature: 256 revealed preimages.
#[derive(Clone, PartialEq, Eq)]
pub struct LamportSignature {
    reveals: Box<[[u8; DIGEST_LEN]; 256]>,
}

impl core::fmt::Debug for LamportSignature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LamportSignature(256 preimages)")
    }
}

fn digest_bit(digest: &[u8; DIGEST_LEN], i: usize) -> usize {
    ((digest[i / 8] >> (7 - i % 8)) & 1) as usize
}

impl OneTimeSignature for Lamport {
    type SigningKey = LamportSigningKey;
    type VerifyKey = LamportVerifyKey;
    type Signature = LamportSignature;

    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> (Self::SigningKey, Self::VerifyKey) {
        let mut sk = Box::new([[[0u8; DIGEST_LEN]; 256]; 2]);
        let mut pk = Box::new([[[0u8; DIGEST_LEN]; 256]; 2]);
        for b in 0..2 {
            for i in 0..256 {
                rng.fill_bytes(&mut sk[b][i]);
                pk[b][i] = sha256::digest(&sk[b][i]);
            }
        }
        (LamportSigningKey { sk }, LamportVerifyKey { pk })
    }

    fn sign(sk: Self::SigningKey, message: &[u8]) -> Self::Signature {
        let d = sha256::digest(message);
        let mut reveals = Box::new([[0u8; DIGEST_LEN]; 256]);
        for i in 0..256 {
            reveals[i] = sk.sk[digest_bit(&d, i)][i];
        }
        LamportSignature { reveals }
    }

    fn verify(vk: &Self::VerifyKey, message: &[u8], sig: &Self::Signature) -> bool {
        let d = sha256::digest(message);
        let mut ok = true;
        for i in 0..256 {
            let expect = &vk.pk[digest_bit(&d, i)][i];
            ok &= crate::hmac::ct_eq(&sha256::digest(&sig.reveals[i]), expect);
        }
        ok
    }

    fn verify_key_bytes(vk: &Self::VerifyKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 * 256 * DIGEST_LEN);
        for b in 0..2 {
            for i in 0..256 {
                out.extend_from_slice(&vk.pk[b][i]);
            }
        }
        out
    }

    fn signature_bytes(sig: &Self::Signature) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 * DIGEST_LEN);
        for i in 0..256 {
            out.extend_from_slice(&sig.reveals[i]);
        }
        out
    }

    fn verify_key_from_bytes(bytes: &[u8]) -> Option<Self::VerifyKey> {
        if bytes.len() != 2 * 256 * DIGEST_LEN {
            return None;
        }
        let mut pk = Box::new([[[0u8; DIGEST_LEN]; 256]; 2]);
        let mut off = 0;
        for b in 0..2 {
            for i in 0..256 {
                pk[b][i].copy_from_slice(&bytes[off..off + DIGEST_LEN]);
                off += DIGEST_LEN;
            }
        }
        Some(LamportVerifyKey { pk })
    }

    fn signature_from_bytes(bytes: &[u8]) -> Option<Self::Signature> {
        if bytes.len() != 256 * DIGEST_LEN {
            return None;
        }
        let mut reveals = Box::new([[0u8; DIGEST_LEN]; 256]);
        for (i, chunk) in bytes.chunks_exact(DIGEST_LEN).enumerate() {
            reveals[i].copy_from_slice(chunk);
        }
        Some(LamportSignature { reveals })
    }
}

// ---------------------------------------------------------------------------
// Winternitz (WOTS)
// ---------------------------------------------------------------------------

/// Winternitz parameter: digits are processed in base `2^LOG_W`.
/// Larger `LOG_W` → shorter signatures, more hashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WinternitzParam {
    /// w = 4 (2-bit digits)
    W4,
    /// w = 16 (4-bit digits) — the usual sweet spot
    W16,
    /// w = 256 (8-bit digits)
    W256,
}

impl WinternitzParam {
    fn log_w(self) -> usize {
        match self {
            WinternitzParam::W4 => 2,
            WinternitzParam::W16 => 4,
            WinternitzParam::W256 => 8,
        }
    }
    fn w(self) -> usize {
        1 << self.log_w()
    }
    /// Number of message digits.
    pub fn len1(self) -> usize {
        256usize.div_ceil(self.log_w())
    }
    /// Number of checksum digits.
    pub fn len2(self) -> usize {
        let max_checksum = self.len1() * (self.w() - 1);
        let mut bits = 0usize;
        while (1usize << bits) <= max_checksum {
            bits += 1;
        }
        bits.div_ceil(self.log_w())
    }
    /// Total chain count.
    pub fn chains(self) -> usize {
        self.len1() + self.len2()
    }
}

/// Winternitz one-time signature with runtime parameter `w`.
#[derive(Debug)]
pub struct Winternitz<const LOG_W: usize>;

/// Convenience alias: WOTS with w = 16.
pub type Wots16 = Winternitz<4>;

fn wots_param<const LOG_W: usize>() -> WinternitzParam {
    match LOG_W {
        2 => WinternitzParam::W4,
        4 => WinternitzParam::W16,
        8 => WinternitzParam::W256,
        _ => panic!("unsupported Winternitz LOG_W (use 2, 4 or 8)"),
    }
}

/// Domain-separated chaining function: `F(chain_index, step, x)`.
fn chain_step(chain: usize, step: usize, x: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
    let mut h = sha256::Sha256::new();
    h.update(b"dlr-wots-chain");
    h.update(&(chain as u32).to_be_bytes());
    h.update(&(step as u32).to_be_bytes());
    h.update(x);
    h.finalize()
}

fn apply_chain(chain: usize, from: usize, steps: usize, x: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
    let mut cur = *x;
    for s in from..from + steps {
        cur = chain_step(chain, s, &cur);
    }
    cur
}

/// Base-w digits of the message digest plus checksum digits.
fn wots_digits(param: WinternitzParam, message: &[u8]) -> Vec<usize> {
    let d = sha256::digest(message);
    let log_w = param.log_w();
    let mut digits = Vec::with_capacity(param.chains());
    // message digits, MSB-first
    let mut acc: u32 = 0;
    let mut acc_bits = 0usize;
    for &byte in d.iter() {
        acc = (acc << 8) | byte as u32;
        acc_bits += 8;
        while acc_bits >= log_w {
            acc_bits -= log_w;
            digits.push(((acc >> acc_bits) as usize) & (param.w() - 1));
        }
    }
    debug_assert_eq!(digits.len(), param.len1());
    // checksum: sum of (w-1 - digit), encoded base w, len2 digits MSB-first
    let checksum: usize = digits.iter().map(|&d| param.w() - 1 - d).sum();
    let mut cs_digits = vec![0usize; param.len2()];
    let mut cs = checksum;
    for slot in cs_digits.iter_mut().rev() {
        *slot = cs & (param.w() - 1);
        cs >>= log_w;
    }
    debug_assert_eq!(cs, 0, "checksum must fit in len2 digits");
    digits.extend_from_slice(&cs_digits);
    digits
}

/// WOTS signing key.
pub struct WotsSigningKey {
    param: WinternitzParam,
    sk: Vec<[u8; DIGEST_LEN]>,
}

impl core::fmt::Debug for WotsSigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "WotsSigningKey({:?}, <secret>)", self.param)
    }
}

/// WOTS verification key (chain endpoints).
#[derive(Clone, PartialEq, Eq)]
pub struct WotsVerifyKey {
    param: WinternitzParam,
    pk: Vec<[u8; DIGEST_LEN]>,
}

impl core::fmt::Debug for WotsVerifyKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "WotsVerifyKey({:?}, {} chains)", self.param, self.pk.len())
    }
}

/// WOTS signature (intermediate chain values).
#[derive(Clone, PartialEq, Eq)]
pub struct WotsSignature {
    param: WinternitzParam,
    sig: Vec<[u8; DIGEST_LEN]>,
}

impl core::fmt::Debug for WotsSignature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "WotsSignature({:?}, {} chains)", self.param, self.sig.len())
    }
}

impl<const LOG_W: usize> OneTimeSignature for Winternitz<LOG_W> {
    type SigningKey = WotsSigningKey;
    type VerifyKey = WotsVerifyKey;
    type Signature = WotsSignature;

    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> (Self::SigningKey, Self::VerifyKey) {
        let param = wots_param::<LOG_W>();
        let chains = param.chains();
        let mut sk = Vec::with_capacity(chains);
        let mut pk = Vec::with_capacity(chains);
        for c in 0..chains {
            let mut seed = [0u8; DIGEST_LEN];
            rng.fill_bytes(&mut seed);
            pk.push(apply_chain(c, 0, param.w() - 1, &seed));
            sk.push(seed);
        }
        (WotsSigningKey { param, sk }, WotsVerifyKey { param, pk })
    }

    fn sign(sk: Self::SigningKey, message: &[u8]) -> Self::Signature {
        let digits = wots_digits(sk.param, message);
        let sig = digits
            .iter()
            .enumerate()
            .map(|(c, &d)| apply_chain(c, 0, d, &sk.sk[c]))
            .collect();
        WotsSignature {
            param: sk.param,
            sig,
        }
    }

    fn verify(vk: &Self::VerifyKey, message: &[u8], sig: &Self::Signature) -> bool {
        if sig.param != vk.param || sig.sig.len() != vk.pk.len() {
            return false;
        }
        let param = vk.param;
        let digits = wots_digits(param, message);
        let mut ok = true;
        for (c, &d) in digits.iter().enumerate() {
            let end = apply_chain(c, d, param.w() - 1 - d, &sig.sig[c]);
            ok &= crate::hmac::ct_eq(&end, &vk.pk[c]);
        }
        ok
    }

    fn verify_key_bytes(vk: &Self::VerifyKey) -> Vec<u8> {
        let mut out = vec![vk.param.log_w() as u8];
        for p in &vk.pk {
            out.extend_from_slice(p);
        }
        out
    }

    fn signature_bytes(sig: &Self::Signature) -> Vec<u8> {
        let mut out = vec![sig.param.log_w() as u8];
        for s in &sig.sig {
            out.extend_from_slice(s);
        }
        out
    }

    fn verify_key_from_bytes(bytes: &[u8]) -> Option<Self::VerifyKey> {
        let param = wots_param::<LOG_W>();
        if bytes.first() != Some(&(param.log_w() as u8)) {
            return None;
        }
        let body = &bytes[1..];
        if body.len() != param.chains() * DIGEST_LEN {
            return None;
        }
        let pk = body
            .chunks_exact(DIGEST_LEN)
            .map(|c| {
                let mut a = [0u8; DIGEST_LEN];
                a.copy_from_slice(c);
                a
            })
            .collect();
        Some(WotsVerifyKey { param, pk })
    }

    fn signature_from_bytes(bytes: &[u8]) -> Option<Self::Signature> {
        let param = wots_param::<LOG_W>();
        if bytes.first() != Some(&(param.log_w() as u8)) {
            return None;
        }
        let body = &bytes[1..];
        if body.len() != param.chains() * DIGEST_LEN {
            return None;
        }
        let sig = body
            .chunks_exact(DIGEST_LEN)
            .map(|c| {
                let mut a = [0u8; DIGEST_LEN];
                a.copy_from_slice(c);
                a
            })
            .collect();
        Some(WotsSignature { param, sig })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn lamport_roundtrip() {
        let mut r = rng();
        let (sk, vk) = Lamport::generate(&mut r);
        let sig = Lamport::sign(sk, b"hello world");
        assert!(Lamport::verify(&vk, b"hello world", &sig));
        assert!(!Lamport::verify(&vk, b"hello worle", &sig));
    }

    #[test]
    fn lamport_wrong_key_rejected() {
        let mut r = rng();
        let (sk, _vk) = Lamport::generate(&mut r);
        let (_, vk2) = Lamport::generate(&mut r);
        let sig = Lamport::sign(sk, b"msg");
        assert!(!Lamport::verify(&vk2, b"msg", &sig));
    }

    #[test]
    fn lamport_serialization() {
        let mut r = rng();
        let (sk, vk) = Lamport::generate(&mut r);
        let sig = Lamport::sign(sk, b"m");
        let vkb = Lamport::verify_key_bytes(&vk);
        let sigb = Lamport::signature_bytes(&sig);
        let vk2 = Lamport::verify_key_from_bytes(&vkb).unwrap();
        let sig2 = Lamport::signature_from_bytes(&sigb).unwrap();
        assert!(Lamport::verify(&vk2, b"m", &sig2));
        assert!(Lamport::verify_key_from_bytes(&vkb[1..]).is_none());
    }

    #[test]
    fn wots_roundtrip_all_params() {
        fn run<const LOG_W: usize>() {
            let mut r = rng();
            let (sk, vk) = Winternitz::<LOG_W>::generate(&mut r);
            let sig = Winternitz::<LOG_W>::sign(sk, b"the message");
            assert!(Winternitz::<LOG_W>::verify(&vk, b"the message", &sig));
            assert!(!Winternitz::<LOG_W>::verify(&vk, b"the messagf", &sig));
        }
        run::<2>();
        run::<4>();
        run::<8>();
    }

    #[test]
    fn wots_signature_sizes() {
        // w=16: 64 message digits + 3 checksum digits = 67 chains
        assert_eq!(WinternitzParam::W16.chains(), 67);
        // w=256: 32 + 2 = 34 chains
        assert_eq!(WinternitzParam::W256.chains(), 34);
        // w=4: 128 + 4 checksum digits
        assert_eq!(WinternitzParam::W4.len1(), 128);
    }

    #[test]
    fn wots_serialization_roundtrip() {
        let mut r = rng();
        let (sk, vk) = Wots16::generate(&mut r);
        let sig = Wots16::sign(sk, b"x");
        let vk2 = Wots16::verify_key_from_bytes(&Wots16::verify_key_bytes(&vk)).unwrap();
        let sig2 = Wots16::signature_from_bytes(&Wots16::signature_bytes(&sig)).unwrap();
        assert!(Wots16::verify(&vk2, b"x", &sig2));
    }

    #[test]
    fn wots_tampered_signature_rejected() {
        let mut r = rng();
        let (sk, vk) = Wots16::generate(&mut r);
        let mut sig = Wots16::sign(sk, b"x");
        sig.sig[0][0] ^= 1;
        assert!(!Wots16::verify(&vk, b"x", &sig));
    }

    #[test]
    fn digits_checksum_invariant() {
        // For every message, sum(digits) + checksum-value is the constant
        // len1*(w-1): flipping any message digit down forces a checksum
        // digit up — the core WOTS security property.
        let p = WinternitzParam::W16;
        for msg in [&b"a"[..], b"b", b"hello", b""] {
            let digits = wots_digits(p, msg);
            let msg_sum: usize = digits[..p.len1()].iter().sum();
            let mut cs_val = 0usize;
            for &d in &digits[p.len1()..] {
                cs_val = (cs_val << p.log_w()) | d;
            }
            assert_eq!(msg_sum + cs_val, p.len1() * (p.w() - 1));
        }
    }
}
