//! HMAC-SHA-256 (RFC 2104), implemented from scratch.

use crate::sha256::{self, Sha256, BLOCK_LEN, DIGEST_LEN};

/// A prepared HMAC key: the SHA-256 midstates after absorbing the
/// `ipad`/`opad` blocks. Deriving these costs two compressions; every MAC
/// under the same key then starts from a clone instead of re-hashing the
/// padded key — the win that makes HKDF-Expand (one key, many blocks) and
/// try-and-increment hashing cheap.
#[derive(Clone, Debug)]
pub struct HmacKey {
    inner_mid: Sha256,
    outer_mid: Sha256,
}

impl HmacKey {
    /// Prepare a key of any length (keys longer than the block size are
    /// hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = sha256::digest(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner_mid = Sha256::new();
        inner_mid.update(&ipad);
        let mut outer_mid = Sha256::new();
        outer_mid.update(&opad);
        Self {
            inner_mid,
            outer_mid,
        }
    }

    /// Start an incremental MAC under this key.
    pub fn begin(&self) -> HmacSha256 {
        HmacSha256 {
            inner: self.inner_mid.clone(),
            outer_mid: self.outer_mid.clone(),
        }
    }

    /// One-shot MAC under this key.
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.begin();
        h.update(data);
        h.finalize()
    }
}

/// Incremental HMAC-SHA-256 state.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_mid: Sha256,
}

impl HmacSha256 {
    /// Initialise with a key of any length (keys longer than the block size
    /// are hashed first, per RFC 2104). For repeated MACs under one key,
    /// prepare an [`HmacKey`] once and use [`HmacKey::begin`] instead.
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the MAC tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer_mid;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(data);
    h.finalize()
}

/// Constant-time equality of two byte strings (used to verify tags without
/// an early-exit timing channel).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc4231_tc1() {
        let key = vec![0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_vec(),
            hex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        );
    }

    #[test]
    fn rfc4231_tc2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_vec(),
            hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
    }

    #[test]
    fn rfc4231_tc3() {
        let key = vec![0xaau8; 20];
        let data = vec![0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_vec(),
            hex("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe")
        );
    }

    #[test]
    fn rfc4231_tc6_long_key() {
        let key = vec![0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_vec(),
            hex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"key");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), hmac_sha256(b"key", b"hello world"));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
