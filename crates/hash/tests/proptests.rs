//! Property-based tests for the hash/MAC/KDF/OTS layer.

use dlr_hash::ots::{Lamport, OneTimeSignature, Winternitz};
use dlr_hash::{hkdf, hmac, sha256, sha512};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        split in 0usize..500,
    ) {
        let split = split.min(data.len());
        let mut h = sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256::digest(&data));
    }

    #[test]
    fn sha512_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        split in 0usize..500,
    ) {
        let split = split.min(data.len());
        let mut h = sha512::Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha512::digest(&data));
    }

    #[test]
    fn digests_separate_inputs(
        a in proptest::collection::vec(any::<u8>(), 0..100),
        b in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256::digest(&a), sha256::digest(&b));
        prop_assert_ne!(sha512::digest(&a), sha512::digest(&b));
    }

    #[test]
    fn hmac_key_and_message_sensitivity(
        key in proptest::collection::vec(any::<u8>(), 0..80),
        msg in proptest::collection::vec(any::<u8>(), 0..120),
        flip in any::<u8>(),
    ) {
        let tag = hmac::hmac_sha256(&key, &msg);
        prop_assert!(hmac::ct_eq(&tag, &hmac::hmac_sha256(&key, &msg)));
        let mut msg2 = msg.clone();
        if !msg2.is_empty() {
            let i = flip as usize % msg2.len();
            msg2[i] ^= 1;
            prop_assert!(!hmac::ct_eq(&tag, &hmac::hmac_sha256(&key, &msg2)));
        }
    }

    #[test]
    fn hkdf_prefix_property(
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        len1 in 1usize..200,
        len2 in 1usize..200,
    ) {
        let short = len1.min(len2);
        let long = len1.max(len2);
        let a = hkdf::hkdf(b"salt", &ikm, b"info", short);
        let b = hkdf::hkdf(b"salt", &ikm, b"info", long);
        prop_assert_eq!(&b[..short], &a[..]);
        // info separates outputs
        let c = hkdf::hkdf(b"salt", &ikm, b"other", short);
        prop_assert_ne!(a, c);
    }

    #[test]
    fn wots_sign_verify_any_message(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let (sk, vk) = Winternitz::<4>::generate(&mut r);
        let sig = Winternitz::<4>::sign(sk, &msg);
        prop_assert!(Winternitz::<4>::verify(&vk, &msg, &sig));
        // any other message must fail
        let mut other = msg.clone();
        other.push(0x55);
        prop_assert!(!Winternitz::<4>::verify(&vk, &other, &sig));
    }

    #[test]
    fn lamport_forgery_resistance_sample(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 1..100),
        tamper in any::<u8>(),
    ) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let (sk, vk) = Lamport::generate(&mut r);
        let sig = Lamport::sign(sk, &msg);
        let mut forged = msg.clone();
        let i = tamper as usize % forged.len();
        forged[i] = forged[i].wrapping_add(1);
        prop_assert!(!Lamport::verify(&vk, &forged, &sig));
    }

    #[test]
    fn ots_serialization_total(bytes in proptest::collection::vec(any::<u8>(), 0..3000)) {
        // parsers must never panic on garbage
        let _ = Lamport::verify_key_from_bytes(&bytes);
        let _ = Lamport::signature_from_bytes(&bytes);
        let _ = Winternitz::<4>::verify_key_from_bytes(&bytes);
        let _ = Winternitz::<8>::signature_from_bytes(&bytes);
    }
}
