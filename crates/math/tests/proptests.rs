//! Property-based tests for the arithmetic layer: field axioms, limb
//! identities, and serialization invariants under random inputs.

use dlr_math::{define_prime_field, limbs, FieldElement, PrimeField};
use proptest::prelude::*;
use rand::SeedableRng;

define_prime_field!(
    /// Single-limb field with the top bit set: p = 2^64 - 59.
    pub struct F64, 1, "0xffffffffffffffc5"
);
define_prime_field!(
    /// Two-limb field (the TOY base field).
    pub struct FToy, 2, "0x42ae6467338a04eeeb"
);
define_prime_field!(
    /// Four-limb field (the shared 256-bit scalar field).
    pub struct F256, 4, "0x9c7b55f33f4a555666c8d7baaa676515d2f48907cb57039e9d59f778aec33793"
);

fn felt<F: FieldElement>(seed: u64) -> F {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    F::random(&mut r)
}

macro_rules! field_properties {
    ($modname:ident, $F:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(64))]

                #[test]
                fn ring_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (a, b, c) = (felt::<$F>(a), felt::<$F>(b), felt::<$F>(c));
                    prop_assert_eq!(a + b, b + a);
                    prop_assert_eq!((a + b) + c, a + (b + c));
                    prop_assert_eq!(a * b, b * a);
                    prop_assert_eq!((a * b) * c, a * (b * c));
                    prop_assert_eq!(a * (b + c), a * b + a * c);
                    prop_assert_eq!(a - a, <$F>::zero());
                    prop_assert_eq!(a.square(), a * a);
                    prop_assert_eq!(a.double(), a + a);
                }

                #[test]
                fn inverse_and_division(a in any::<u64>()) {
                    let a = felt::<$F>(a);
                    if a.is_zero() {
                        prop_assert!(a.inverse().is_none());
                    } else {
                        let inv = a.inverse().unwrap();
                        prop_assert_eq!(a * inv, <$F>::one());
                        prop_assert_eq!(inv.inverse().unwrap(), a);
                    }
                }

                #[test]
                fn pow_laws(a in any::<u64>(), x in 0u64..1000, y in 0u64..1000) {
                    let a = felt::<$F>(a);
                    prop_assert_eq!(
                        a.pow_vartime(&[x]) * a.pow_vartime(&[y]),
                        a.pow_vartime(&[x + y])
                    );
                    prop_assert_eq!(
                        a.pow_vartime(&[x]).pow_vartime(&[y]),
                        a.pow_vartime(&[x * y])
                    );
                }

                #[test]
                fn bytes_roundtrip(a in any::<u64>()) {
                    let a = felt::<$F>(a);
                    let bytes = a.to_bytes_be();
                    prop_assert_eq!(bytes.len(), <$F>::byte_len());
                    prop_assert_eq!(<$F>::from_bytes_be(&bytes), Some(a));
                }

                #[test]
                fn sqrt_of_square(a in any::<u64>()) {
                    if <$F>::modulus_is_3_mod_4() {
                        let a = felt::<$F>(a);
                        let sq = a.square();
                        let root = sq.sqrt().expect("square has root");
                        prop_assert!(root == a || root == -a);
                    }
                }

                #[test]
                fn reduced_parser_consistent(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
                    // from_bytes_be_reduced is a homomorphism from base-256
                    // strings: appending a zero byte multiplies by 256
                    let x = <$F>::from_bytes_be_reduced(&bytes);
                    let mut shifted = bytes.clone();
                    shifted.push(0);
                    prop_assert_eq!(
                        <$F>::from_bytes_be_reduced(&shifted),
                        x * <$F>::from_u64(256)
                    );
                }
            }
        }
    };
}

field_properties!(f64_props, F64);
field_properties!(ftoy_props, FToy);
field_properties!(f256_props, F256);

mod fp2_props {
    use super::*;
    use dlr_math::Fp2;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn field_axioms(a in any::<u64>(), b in any::<u64>()) {
            let mut r = rand::rngs::StdRng::seed_from_u64(a);
            let x = Fp2::<FToy>::random(&mut r);
            let mut r = rand::rngs::StdRng::seed_from_u64(b);
            let y = Fp2::<FToy>::random(&mut r);
            prop_assert_eq!(x * y, y * x);
            prop_assert_eq!(x.square(), x * x);
            if !x.is_zero() {
                prop_assert_eq!(x * x.inverse().unwrap(), Fp2::one());
            }
            prop_assert_eq!((x * y).conjugate(), x.conjugate() * y.conjugate());
            prop_assert_eq!((x * y).norm(), x.norm() * y.norm());
        }
    }
}

mod limb_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn add_sub_inverse(a in any::<[u64; 3]>(), b in any::<[u64; 3]>()) {
            let (sum, carry) = limbs::add_carry(&a, &b);
            let (back, borrow) = limbs::sub_borrow(&sum, &b);
            prop_assert_eq!(back, a);
            prop_assert_eq!(carry, borrow);
        }

        #[test]
        fn cmp_antisymmetric(a in any::<[u64; 2]>(), b in any::<[u64; 2]>()) {
            prop_assert_eq!(limbs::cmp(&a, &b), -limbs::cmp(&b, &a));
            prop_assert_eq!(limbs::cmp(&a, &a), 0);
        }

        #[test]
        fn bytes_roundtrip(a in any::<[u64; 4]>()) {
            let be = limbs::to_bytes_be(&a);
            prop_assert_eq!(limbs::from_bytes_be::<4>(&be), Some(a));
        }

        #[test]
        fn shr1_halves(a in any::<[u64; 2]>()) {
            let half = limbs::shr1(&a);
            let (doubled, carry) = limbs::add_carry(&half, &half);
            // doubling the half recovers a with the low bit cleared
            let mut expect = a;
            expect[0] &= !1;
            prop_assert_eq!(doubled, expect);
            prop_assert_eq!(carry, 0);
        }

        #[test]
        fn inv_mod_is_inverse(a in any::<u64>()) {
            // modulus = 2^64 - 59 (prime)
            let m = [0xffff_ffff_ffff_ffc5u64];
            let a = [a % m[0]];
            match limbs::inv_mod(&a, &m) {
                None => prop_assert_eq!(a[0], 0),
                Some(inv) => {
                    let prod = ((a[0] as u128) * (inv[0] as u128)) % (m[0] as u128);
                    prop_assert_eq!(prod, 1u128);
                }
            }
        }
    }
}
