#![warn(missing_docs)]
//! # dlr-math — fixed-width big integers and Montgomery prime fields
//!
//! Foundation crate of the DLR workspace (a from-scratch reproduction of
//! *Akavia–Goldwasser–Hazay, "Distributed Public Key Schemes Secure against
//! Continual Leakage", PODC 2012*). Everything here is built without
//! external arithmetic dependencies:
//!
//! * [`limbs`] — `const fn` little-endian limb arithmetic incl. CIOS
//!   Montgomery multiplication;
//! * [`field`] — the [`FieldElement`] /
//!   [`PrimeField`] traits and the
//!   [`define_prime_field!`] macro that bakes Montgomery constants at
//!   compile time;
//! * [`fp2`] — the quadratic extension `F_{p²}` hosting the pairing target
//!   group;
//! * [`mont`] — runtime Montgomery contexts and Miller–Rabin, used to
//!   validate the hardcoded curve parameters;
//! * [`erase`] — volatile secure-zeroisation used by the refresh protocol's
//!   erasure requirement.
//!
//! ## Example
//!
//! ```
//! dlr_math::define_prime_field!(pub struct F61, 1, "0x1fffffffffffffff");
//! use dlr_math::field::{FieldElement, PrimeField};
//!
//! let a = F61::from_u64(12345);
//! let inv = a.inverse().expect("nonzero");
//! assert_eq!(a * inv, F61::one());
//! ```

pub mod bignum;
pub mod erase;
pub mod field;
pub mod fp2;
pub mod limbs;
pub mod mont;

pub use erase::Erase;
pub use field::{batch_inverse, FieldElement, PrimeField};
pub use fp2::Fp2;
