//! Field abstractions and the [`define_prime_field!`](crate::define_prime_field) macro.
//!
//! # Side-channel posture
//!
//! Low-level modular add/sub/select are branchless, but exponentiation and
//! inversion are **variable-time** (`pow_vartime`). This mirrors the paper's
//! threat model: the adversary obtains *memory* leakage (shrinking functions
//! of the secret state, Def. 3.2), not a timing oracle. Production use
//! against timing adversaries would swap in a constant-time ladder; the
//! leakage framework in `dlr-leakage` is orthogonal to that choice.

use core::fmt::Debug;
use core::hash::Hash;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Operations shared by prime fields and their extensions.
pub trait FieldElement:
    Sized
    + Copy
    + Clone
    + Debug
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + Default
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// True iff this is the additive identity.
    fn is_zero(&self) -> bool;
    /// `self²` — may be specialised by implementations.
    fn square(&self) -> Self {
        *self * *self
    }
    /// `2·self`.
    fn double(&self) -> Self {
        *self + *self
    }
    /// Multiplicative inverse; `None` for zero.
    fn inverse(&self) -> Option<Self>;
    /// Exponentiation by a little-endian limb slice (variable time).
    fn pow_vartime(&self, exp: &[u64]) -> Self {
        let mut nbits = 0u32;
        for (i, w) in exp.iter().enumerate() {
            if *w != 0 {
                nbits = i as u32 * 64 + (64 - w.leading_zeros());
            }
        }
        let mut acc = Self::one();
        let mut i = nbits;
        while i > 0 {
            i -= 1;
            acc = acc.square();
            if (exp[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
                acc *= *self;
            }
        }
        acc
    }
    /// Uniformly random element.
    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self;
    /// Canonical big-endian serialization.
    fn to_bytes_be(&self) -> Vec<u8>;
    /// Parse the canonical serialization; `None` on malformed input.
    fn from_bytes_be(bytes: &[u8]) -> Option<Self>;
    /// Serialized length in bytes.
    fn byte_len() -> usize;
}

/// A prime field `F_p` with `p` odd, exposing modulus metadata.
pub trait PrimeField: FieldElement + PartialOrd + Ord {
    /// Number of 64-bit limbs in an element.
    const LIMBS: usize;
    /// Unreduced double-width Montgomery accumulator
    /// ([`limbs::Wide`](crate::limbs::Wide) at `2·LIMBS`): holds sums of
    /// products of field elements so a chain of multiply-accumulate steps
    /// pays **one** Montgomery reduction at the end instead of one per
    /// product. All lazy operations are exact — [`Self::wide_reduce`]
    /// returns the same canonical representative the eager path produces,
    /// bit for bit.
    type Wide: Copy + Clone + Debug + Send + Sync + 'static;
    /// Full double-width product `self·rhs`, unreduced.
    fn mul_wide(&self, rhs: &Self) -> Self::Wide;
    /// Full double-width square `self²`, unreduced.
    fn square_wide(&self) -> Self::Wide;
    /// The zero accumulator.
    fn wide_zero() -> Self::Wide;
    /// Accumulator addition `a + b`.
    fn wide_add(a: Self::Wide, b: Self::Wide) -> Self::Wide;
    /// Lazy subtraction `a − b` of a **single product** `b` (one
    /// [`Self::mul_wide`]/[`Self::square_wide`] result, not an accumulated
    /// sum), realised as `a + (p² − b)` so no borrow can occur.
    fn wide_sub(a: Self::Wide, b: Self::Wide) -> Self::Wide;
    /// Fold a reduced (Montgomery-form) element into the accumulator:
    /// `a + x·R`, so that reduction yields `reduce(a) + x`.
    fn wide_add_shifted(a: Self::Wide, x: &Self) -> Self::Wide;
    /// Montgomery-reduce the accumulator to a canonical field element.
    fn wide_reduce(a: Self::Wide) -> Self;
    /// Fused multiply-add `self·rhs + add` with a single reduction.
    ///
    /// Width-gated: at narrow moduli the wide-accumulator fuse measures
    /// well ahead of multiply-then-add, but past ~4 limbs the separate
    /// SOS reduction pass falls behind the register-resident CIOS multiply,
    /// so wide fields take the eager route. (The branch constant-folds per
    /// monomorphisation.) Both routes return the same canonical element.
    fn mul_add(&self, rhs: &Self, add: &Self) -> Self {
        if Self::modulus_bits() <= 256 {
            Self::wide_reduce(Self::wide_add_shifted(self.mul_wide(rhs), add))
        } else {
            *self * *rhs + *add
        }
    }
    /// Bit length of the modulus.
    fn modulus_bits() -> u32;
    /// Modulus as canonical big-endian bytes.
    fn modulus_be_bytes() -> Vec<u8>;
    /// Construct from a small integer.
    fn from_u64(v: u64) -> Self;
    /// Canonical little-endian limb representation (out of Montgomery form).
    fn to_canonical_limbs(&self) -> Vec<u64>;
    /// Interpret arbitrary-length big-endian bytes as an integer and reduce
    /// modulo `p` (used to hash into the field).
    fn from_bytes_be_reduced(bytes: &[u8]) -> Self;
    /// Square root for `p ≡ 3 (mod 4)`; `None` if not a quadratic residue.
    fn sqrt(&self) -> Option<Self>;
    /// Legendre symbol: `1` (QR), `-1` (non-residue), `0` (zero).
    fn legendre(&self) -> i32;
    /// True iff `p ≡ 3 (mod 4)` (so `-1` is a quadratic non-residue and the
    /// `F_{p²} = F_p[i]/(i²+1)` tower applies).
    fn modulus_is_3_mod_4() -> bool;
}

/// Montgomery's simultaneous-inversion trick: invert every element of
/// `xs` at the cost of **one** field inversion plus `3(n−1)`
/// multiplications.
///
/// Prefix products `m_k = x_0 · … · x_k` are accumulated forwards, the
/// single inverse `m_{n−1}^{-1}` is computed, and the individual inverses
/// are peeled off backwards: `x_k^{-1} = m_{k−1} · (x_k · … · x_{n−1})^{-1}`.
///
/// Returns `None` if any element is zero (matching [`FieldElement::inverse`]
/// on a single zero element); callers that tolerate zeros should filter
/// first.
pub fn batch_inverse<F: FieldElement>(xs: &[F]) -> Option<Vec<F>> {
    if xs.is_empty() {
        return Some(Vec::new());
    }
    let mut prefix = Vec::with_capacity(xs.len());
    let mut acc = F::one();
    for x in xs {
        if x.is_zero() {
            return None;
        }
        prefix.push(acc);
        acc *= *x;
    }
    let mut inv = acc.inverse()?;
    let mut out = vec![F::zero(); xs.len()];
    for k in (0..xs.len()).rev() {
        out[k] = prefix[k] * inv;
        inv *= xs[k];
    }
    Some(out)
}

/// Define a prime-field type with compile-time Montgomery constants.
///
/// ```
/// dlr_math::define_prime_field!(
///     /// A 61-bit Mersenne-prime field (docs attach to the type).
///     pub struct F61, 1, "0x1fffffffffffffff"
/// );
/// use dlr_math::field::FieldElement;
/// let a = F61::one() + F61::one();
/// assert_eq!(a * a.inverse().unwrap(), F61::one());
/// ```
#[macro_export]
macro_rules! define_prime_field {
    ($(#[$attr:meta])* pub struct $name:ident, $limbs:literal, $hex:expr) => {
        $(#[$attr])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name([u64; $limbs]);

        impl $name {
            /// The field modulus, little-endian limbs.
            pub const MODULUS: [u64; $limbs] = $crate::limbs::parse_hex($hex);
            const N0INV: u64 = $crate::limbs::mont_n0inv(Self::MODULUS[0]);
            const R: [u64; $limbs] = $crate::limbs::compute_r(&Self::MODULUS);
            const R2: [u64; $limbs] = $crate::limbs::compute_r2(&Self::MODULUS);
            const MODULUS_SQUARED: [u64; 2 * $limbs] =
                $crate::limbs::wide_mul::<$limbs, { 2 * $limbs }>(
                    &Self::MODULUS,
                    &Self::MODULUS,
                )
                .lo;

            /// Construct from little-endian limbs of a canonical
            /// (non-Montgomery) reduced integer.
            ///
            /// # Panics
            ///
            /// Panics if the value is not reduced modulo the modulus.
            #[allow(dead_code)]
            pub fn from_canonical(limbs: [u64; $limbs]) -> Self {
                assert!(
                    $crate::limbs::cmp(&limbs, &Self::MODULUS) < 0,
                    "value not reduced"
                );
                Self($crate::limbs::mont_mul(
                    &limbs,
                    &Self::R2,
                    &Self::MODULUS,
                    Self::N0INV,
                ))
            }

            /// Raw Montgomery limbs (for serialization-free interop in this
            /// workspace; not part of the stable wire format).
            #[allow(dead_code)]
            pub fn mont_limbs(&self) -> &[u64; $limbs] {
                &self.0
            }

            fn canonical(&self) -> [u64; $limbs] {
                let mut one = [0u64; $limbs];
                one[0] = 1;
                $crate::limbs::mont_mul(&self.0, &one, &Self::MODULUS, Self::N0INV)
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                let c = self.canonical();
                write!(f, concat!(stringify!($name), "(0x"))?;
                let mut seen = false;
                for i in (0..$limbs).rev() {
                    if seen {
                        write!(f, "{:016x}", c[i])?;
                    } else if c[i] != 0 || i == 0 {
                        write!(f, "{:x}", c[i])?;
                        seen = true;
                    }
                }
                write!(f, ")")
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                core::fmt::Debug::fmt(self, f)
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $name {
            fn cmp(&self, other: &Self) -> core::cmp::Ordering {
                let a = self.canonical();
                let b = other.canonical();
                match $crate::limbs::cmp(&a, &b) {
                    -1 => core::cmp::Ordering::Less,
                    0 => core::cmp::Ordering::Equal,
                    _ => core::cmp::Ordering::Greater,
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self($crate::limbs::add_mod(&self.0, &rhs.0, &Self::MODULUS))
            }
        }
        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self($crate::limbs::sub_mod(&self.0, &rhs.0, &Self::MODULUS))
            }
        }
        impl core::ops::Mul for $name {
            type Output = Self;
            fn mul(self, rhs: Self) -> Self {
                Self($crate::limbs::mont_mul(
                    &self.0,
                    &rhs.0,
                    &Self::MODULUS,
                    Self::N0INV,
                ))
            }
        }
        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self($crate::limbs::neg_mod(&self.0, &Self::MODULUS))
            }
        }
        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }
        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }
        impl core::ops::MulAssign for $name {
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl $crate::field::FieldElement for $name {
            fn zero() -> Self {
                Self([0u64; $limbs])
            }
            fn one() -> Self {
                Self(Self::R)
            }
            fn is_zero(&self) -> bool {
                $crate::limbs::is_zero(&self.0)
            }
            fn square(&self) -> Self {
                // CIOS beats the wide-square + SOS route for standalone
                // squarings at these widths (the interleaved reduction
                // stays in registers); the wide path pays off only when
                // reductions are *deferred* — see `mul_add` and the
                // `F_{p²}` tower.
                Self($crate::limbs::mont_mul(
                    &self.0,
                    &self.0,
                    &Self::MODULUS,
                    Self::N0INV,
                ))
            }
            fn inverse(&self) -> Option<Self> {
                // Binary extended GCD on the canonical value, then back to
                // Montgomery form (much cheaper than Fermat exponentiation).
                let canon = self.canonical();
                let inv = $crate::limbs::inv_mod(&canon, &Self::MODULUS)?;
                Some(Self($crate::limbs::mont_mul(
                    &inv,
                    &Self::R2,
                    &Self::MODULUS,
                    Self::N0INV,
                )))
            }
            fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
                loop {
                    let mut limbs = [0u64; $limbs];
                    for l in limbs.iter_mut() {
                        *l = rng.next_u64();
                    }
                    // Mask the top limb down to the modulus bit length to
                    // keep the rejection rate below 1/2.
                    let top_bits = $crate::limbs::bits(&Self::MODULUS) as usize - ($limbs - 1) * 64;
                    if top_bits < 64 {
                        limbs[$limbs - 1] &= (1u64 << top_bits) - 1;
                    }
                    if $crate::limbs::cmp(&limbs, &Self::MODULUS) < 0 {
                        // `limbs` is a canonical value; convert to Montgomery.
                        return Self($crate::limbs::mont_mul(
                            &limbs,
                            &Self::R2,
                            &Self::MODULUS,
                            Self::N0INV,
                        ));
                    }
                }
            }
            fn to_bytes_be(&self) -> Vec<u8> {
                $crate::limbs::to_bytes_be(&self.canonical())
            }
            fn from_bytes_be(bytes: &[u8]) -> Option<Self> {
                if bytes.len() != $limbs * 8 {
                    return None;
                }
                let limbs = $crate::limbs::from_bytes_be::<$limbs>(bytes)?;
                if $crate::limbs::cmp(&limbs, &Self::MODULUS) >= 0 {
                    return None;
                }
                Some(Self($crate::limbs::mont_mul(
                    &limbs,
                    &Self::R2,
                    &Self::MODULUS,
                    Self::N0INV,
                )))
            }
            fn byte_len() -> usize {
                $limbs * 8
            }
        }

        impl $crate::field::PrimeField for $name {
            const LIMBS: usize = $limbs;
            type Wide = $crate::limbs::Wide<{ 2 * $limbs }>;

            fn mul_wide(&self, rhs: &Self) -> Self::Wide {
                $crate::limbs::wide_mul(&self.0, &rhs.0)
            }
            fn square_wide(&self) -> Self::Wide {
                $crate::limbs::wide_sqr(&self.0)
            }
            fn wide_zero() -> Self::Wide {
                $crate::limbs::Wide::zero()
            }
            fn wide_add(a: Self::Wide, b: Self::Wide) -> Self::Wide {
                $crate::limbs::wide_add(&a, &b)
            }
            fn wide_sub(a: Self::Wide, b: Self::Wide) -> Self::Wide {
                $crate::limbs::wide_sub_from(&a, &b, &Self::MODULUS_SQUARED)
            }
            fn wide_add_shifted(a: Self::Wide, x: &Self) -> Self::Wide {
                $crate::limbs::wide_add_shifted(&a, &x.0)
            }
            fn wide_reduce(a: Self::Wide) -> Self {
                Self($crate::limbs::mont_reduce_wide(
                    &a.lo,
                    a.hi,
                    &Self::MODULUS,
                    Self::N0INV,
                ))
            }

            fn modulus_bits() -> u32 {
                $crate::limbs::bits(&Self::MODULUS)
            }
            fn modulus_be_bytes() -> Vec<u8> {
                $crate::limbs::to_bytes_be(&Self::MODULUS)
            }
            fn from_u64(v: u64) -> Self {
                let mut limbs = [0u64; $limbs];
                limbs[0] = v;
                if $limbs == 1 {
                    limbs[0] %= Self::MODULUS[0];
                }
                Self($crate::limbs::mont_mul(
                    &limbs,
                    &Self::R2,
                    &Self::MODULUS,
                    Self::N0INV,
                ))
            }
            fn to_canonical_limbs(&self) -> Vec<u64> {
                self.canonical().to_vec()
            }
            fn from_bytes_be_reduced(bytes: &[u8]) -> Self {
                use $crate::field::FieldElement;
                // Horner over 8-byte limbs: acc = acc·2⁶⁴ + limb — two
                // multiplications per limb instead of one per byte. Same
                // exact value (and therefore the same canonical element) as
                // the byte-at-a-time recurrence.
                let shift32 = Self::from_u64(1u64 << 32);
                let shift64 = shift32 * shift32;
                let lead = bytes.len() % 8;
                let mut acc = Self::zero();
                for &b in &bytes[..lead] {
                    acc = acc * Self::from_u64(256) + Self::from_u64(b as u64);
                }
                for chunk in bytes[lead..].chunks_exact(8) {
                    let limb = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
                    acc = acc * shift64 + Self::from_u64(limb);
                }
                acc
            }
            fn sqrt(&self) -> Option<Self> {
                use $crate::field::FieldElement;
                assert!(
                    Self::modulus_is_3_mod_4(),
                    "sqrt implemented for p ≡ 3 (mod 4) only"
                );
                if self.is_zero() {
                    return Some(*self);
                }
                // exponent (p+1)/4 = (p >> 2) + 1 for p ≡ 3 (mod 4)
                let e = $crate::limbs::add_u64(
                    &$crate::limbs::shr1(&$crate::limbs::shr1(&Self::MODULUS)),
                    1,
                );
                let cand = self.pow_vartime(&e);
                if cand.square() == *self {
                    Some(cand)
                } else {
                    None
                }
            }
            fn legendre(&self) -> i32 {
                use $crate::field::FieldElement;
                if self.is_zero() {
                    return 0;
                }
                // (p-1)/2
                let e = $crate::limbs::shr1(&$crate::limbs::sub_u64(&Self::MODULUS, 1));
                let v = self.pow_vartime(&e);
                if v == Self::one() {
                    1
                } else {
                    -1
                }
            }
            fn modulus_is_3_mod_4() -> bool {
                Self::MODULUS[0] & 3 == 3
            }
        }

        impl $crate::erase::Erase for $name {
            fn erase(&mut self) {
                $crate::erase::erase_limbs(&mut self.0);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    crate::define_prime_field!(
        /// 61-bit Mersenne test field.
        pub struct F61, 1, "0x1fffffffffffffff"
    );
    crate::define_prime_field!(
        /// Full-width single-limb field: p = 2^64 - 59.
        pub struct F64, 1, "0xffffffffffffffc5"
    );
    crate::define_prime_field!(
        /// Small field (p = 1000003 ≡ 3 mod 4) for exhaustive checks.
        pub struct FSmall, 1, "0xf4243"
    );

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn axioms_f61() {
        let mut r = rng();
        for _ in 0..50 {
            let a = F61::random(&mut r);
            let b = F61::random(&mut r);
            let c = F61::random(&mut r);
            assert_eq!(a + b, b + a);
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a + F61::zero(), a);
            assert_eq!(a * F61::one(), a);
            assert_eq!(a + (-a), F61::zero());
            assert_eq!(a.square(), a * a);
            assert_eq!(a.double(), a + a);
        }
    }

    #[test]
    fn inverse_f64_full_width() {
        let mut r = rng();
        for _ in 0..50 {
            let a = F64::random(&mut r);
            if a.is_zero() {
                continue;
            }
            let inv = a.inverse().unwrap();
            assert_eq!(a * inv, F64::one());
            // cross-check binary-GCD inverse against Fermat
            let fermat = a.pow_vartime(&crate::limbs::sub_u64(&F64::MODULUS, 2));
            assert_eq!(inv, fermat);
        }
        assert!(F64::zero().inverse().is_none());
        assert_eq!(F64::one().inverse(), Some(F64::one()));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = F61::from_u64(3);
        let mut acc = F61::one();
        for e in 0u64..20 {
            assert_eq!(a.pow_vartime(&[e]), acc);
            acc *= a;
        }
    }

    #[test]
    fn fermat_little() {
        let mut r = rng();
        let a = F61::random(&mut r);
        let pm1 = crate::limbs::sub_u64(&F61::MODULUS, 1);
        assert_eq!(a.pow_vartime(&pm1), F61::one());
    }

    #[test]
    fn sqrt_small_field() {
        assert!(FSmall::modulus_is_3_mod_4());
        let mut r = rng();
        let mut found_qr = 0;
        let mut found_nqr = 0;
        for _ in 0..60 {
            let a = FSmall::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == -a);
            assert_eq!(sq.legendre(), if sq.is_zero() { 0 } else { 1 });
            match a.legendre() {
                1 => {
                    found_qr += 1;
                    assert!(a.sqrt().is_some());
                }
                -1 => {
                    found_nqr += 1;
                    assert!(a.sqrt().is_none());
                }
                _ => {}
            }
        }
        assert!(found_qr > 5 && found_nqr > 5, "legendre should split ~evenly");
    }

    #[test]
    fn bytes_roundtrip_and_validation() {
        let mut r = rng();
        let a = F64::random(&mut r);
        let b = a.to_bytes_be();
        assert_eq!(b.len(), F64::byte_len());
        assert_eq!(F64::from_bytes_be(&b), Some(a));
        // modulus itself must be rejected
        assert_eq!(F64::from_bytes_be(&F64::modulus_be_bytes()), None);
        // wrong length rejected
        assert_eq!(F64::from_bytes_be(&b[1..]), None);
    }

    #[test]
    fn from_bytes_be_reduced_wraps() {
        // 2^64 mod (2^64 - 59) = 59
        let mut bytes = vec![1u8];
        bytes.extend_from_slice(&[0u8; 8]);
        assert_eq!(F64::from_bytes_be_reduced(&bytes), F64::from_u64(59));
        assert_eq!(F64::from_bytes_be_reduced(&[]), F64::zero());
    }

    #[test]
    fn from_bytes_be_reduced_matches_byte_horner() {
        // The limb-chunked Horner must agree with the byte-at-a-time
        // recurrence at every length class, especially lengths that are
        // not multiples of 8 (the leading-partial path).
        fn byte_horner<F: PrimeField>(bytes: &[u8]) -> F {
            let mut acc = F::zero();
            for &b in bytes {
                acc = acc * F::from_u64(256) + F::from_u64(b as u64);
            }
            acc
        }
        let data: Vec<u8> = (0u32..96).map(|i| (i * 37 + 11) as u8).collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 24, 31, 40, 80, 96] {
            let bytes = &data[..len];
            assert_eq!(
                F64::from_bytes_be_reduced(bytes),
                byte_horner::<F64>(bytes),
                "len {len}"
            );
            assert_eq!(
                F61::from_bytes_be_reduced(bytes),
                byte_horner::<F61>(bytes),
                "len {len}"
            );
        }
    }

    #[test]
    fn ordering_is_canonical() {
        assert!(F61::from_u64(2) < F61::from_u64(3));
        assert!(F61::from_u64(0) < -F61::from_u64(1));
    }

    #[test]
    fn debug_format_shows_canonical_hex() {
        let s = format!("{:?}", F61::from_u64(0xab));
        assert_eq!(s, "F61(0xab)");
        assert_eq!(format!("{:?}", F61::zero()), "F61(0x0)");
    }

    #[test]
    fn batch_inverse_matches_individual() {
        let mut r = rng();
        for n in [0usize, 1, 2, 7, 33] {
            let xs: Vec<F61> = (0..n).map(|_| F61::random(&mut r)).collect();
            let got = batch_inverse(&xs).expect("random elements are nonzero w.h.p.");
            assert_eq!(got.len(), n);
            for (x, inv) in xs.iter().zip(&got) {
                assert_eq!(*x * *inv, F61::one(), "n={n}");
            }
        }
    }

    #[test]
    fn batch_inverse_rejects_zero() {
        let mut r = rng();
        let xs = [F61::random(&mut r), F61::zero(), F61::random(&mut r)];
        assert_eq!(batch_inverse(&xs), None);
    }

    #[test]
    fn batch_inverse_works_over_fp2() {
        let mut r = rng();
        let xs: Vec<crate::Fp2<FSmall>> = (0..9)
            .map(|_| crate::Fp2::new(FSmall::random(&mut r), FSmall::random(&mut r)))
            .collect();
        let got = batch_inverse(&xs).unwrap();
        for (x, inv) in xs.iter().zip(&got) {
            assert_eq!(*x * *inv, crate::Fp2::one());
        }
    }
}
