//! Fixed-width little-endian limb arithmetic on `[u64; L]` arrays.
//!
//! Every routine here is `const fn` where the const evaluator allows it so
//! that per-field Montgomery constants can be derived at compile time by the
//! [`define_prime_field!`](crate::define_prime_field) macro. The same
//! routines back the runtime [`MontCtx`](crate::mont::MontCtx) used by
//! tooling (primality testing, parameter validation).
//!
//! Conventions:
//! * limb order is little-endian (`a[0]` is least significant);
//! * all modular routines assume operands are already reduced (`< modulus`)
//!   unless stated otherwise;
//! * reduction steps use branchless conditional subtraction so the memory
//!   access pattern does not depend on secret values. Exponentiation is
//!   provided in variable-time form only (see [`crate::field`] for the
//!   side-channel discussion).

/// Add with carry: returns `(sum, carry)` for `a + b + carry`.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: returns `(diff, borrow)` for `a - b - borrow`,
/// where `borrow` is `0` or `1` on input and output.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Multiply-accumulate: returns `(lo, hi)` of `acc + a * b + carry`.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = acc as u128 + (a as u128) * (b as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a + b`, returning the sum and the outgoing carry bit.
pub const fn add_carry<const L: usize>(a: &[u64; L], b: &[u64; L]) -> ([u64; L], u64) {
    let mut out = [0u64; L];
    let mut carry = 0u64;
    let mut i = 0;
    while i < L {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
        i += 1;
    }
    (out, carry)
}

/// `a - b`, returning the difference and the outgoing borrow bit.
pub const fn sub_borrow<const L: usize>(a: &[u64; L], b: &[u64; L]) -> ([u64; L], u64) {
    let mut out = [0u64; L];
    let mut borrow = 0u64;
    let mut i = 0;
    while i < L {
        let (d, bo) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
        i += 1;
    }
    (out, borrow)
}

/// Three-way comparison. Returns `-1`, `0`, or `1`.
pub const fn cmp<const L: usize>(a: &[u64; L], b: &[u64; L]) -> i32 {
    let mut i = L;
    while i > 0 {
        i -= 1;
        if a[i] < b[i] {
            return -1;
        }
        if a[i] > b[i] {
            return 1;
        }
    }
    0
}

/// True iff every limb is zero.
pub const fn is_zero<const L: usize>(a: &[u64; L]) -> bool {
    let mut acc = 0u64;
    let mut i = 0;
    while i < L {
        acc |= a[i];
        i += 1;
    }
    acc == 0
}

/// Branchless select: returns `b` if `choice == 1`, `a` if `choice == 0`.
#[inline(always)]
pub const fn select<const L: usize>(a: &[u64; L], b: &[u64; L], choice: u64) -> [u64; L] {
    let mask = choice.wrapping_neg(); // 0 or all-ones
    let mut out = [0u64; L];
    let mut i = 0;
    while i < L {
        out[i] = (a[i] & !mask) | (b[i] & mask);
        i += 1;
    }
    out
}

/// Modular addition for reduced operands: `(a + b) mod m`.
///
/// Correct even when the modulus occupies the full `64·L` bits (the carry
/// bit out of the raw addition is folded into the conditional subtraction).
pub const fn add_mod<const L: usize>(a: &[u64; L], b: &[u64; L], m: &[u64; L]) -> [u64; L] {
    let (sum, carry) = add_carry(a, b);
    let (diff, borrow) = sub_borrow(&sum, m);
    // If the raw addition overflowed, the subtraction of m is definitely
    // needed (sum >= 2^{64L} > m). Otherwise it is needed iff sum >= m,
    // i.e. iff the trial subtraction did not borrow.
    let need = carry | (1 - borrow);
    select(&sum, &diff, need & 1)
}

/// Modular subtraction for reduced operands: `(a - b) mod m`.
pub const fn sub_mod<const L: usize>(a: &[u64; L], b: &[u64; L], m: &[u64; L]) -> [u64; L] {
    let (diff, borrow) = sub_borrow(a, b);
    let (fixed, _) = add_carry(&diff, m);
    select(&diff, &fixed, borrow)
}

/// Modular negation for a reduced operand: `(-a) mod m`.
pub const fn neg_mod<const L: usize>(a: &[u64; L], m: &[u64; L]) -> [u64; L] {
    let (diff, _) = sub_borrow(m, a);
    let zero = [0u64; L];
    let az = if is_zero(a) { 1u64 } else { 0u64 };
    select(&diff, &zero, az)
}

/// Modular doubling for a reduced operand.
pub const fn double_mod<const L: usize>(a: &[u64; L], m: &[u64; L]) -> [u64; L] {
    add_mod(a, a, m)
}

/// `-m[0]^{-1} mod 2^64` — the Montgomery reduction constant.
///
/// # Panics
///
/// Panics (at compile time when used in const context) if `m0` is even.
pub const fn mont_n0inv(m0: u64) -> u64 {
    assert!(m0 & 1 == 1, "montgomery modulus must be odd");
    // Newton iteration: each step doubles the number of correct low bits.
    let mut inv = m0; // correct to 3 bits for odd m0 (actually to 2^3)
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Montgomery multiplication (CIOS): returns `a · b · R^{-1} mod m` where
/// `R = 2^{64·L}`. Operands must be reduced; the result is reduced.
pub const fn mont_mul<const L: usize>(
    a: &[u64; L],
    b: &[u64; L],
    m: &[u64; L],
    n0inv: u64,
) -> [u64; L] {
    // t holds L+2 limbs of running state: t[0..L], t_hi, t_top.
    let mut t = [0u64; L];
    let mut t_hi = 0u64;
    let mut t_top = 0u64;

    let mut i = 0;
    while i < L {
        // t += a[i] * b
        let mut carry = 0u64;
        let mut j = 0;
        while j < L {
            let (lo, hi) = mac(t[j], a[i], b[j], carry);
            t[j] = lo;
            carry = hi;
            j += 1;
        }
        let (lo, c2) = adc(t_hi, carry, 0);
        t_hi = lo;
        t_top += c2;

        // reduce: u = t[0] * n0inv; t += u * m; t >>= 64
        let u = t[0].wrapping_mul(n0inv);
        let (_, mut carry) = mac(t[0], u, m[0], 0);
        let mut j = 1;
        while j < L {
            let (lo, hi) = mac(t[j], u, m[j], carry);
            t[j - 1] = lo;
            carry = hi;
            j += 1;
        }
        let (lo, c2) = adc(t_hi, carry, 0);
        t[L - 1] = lo;
        t_hi = t_top + c2;
        t_top = 0;
        i += 1;
    }

    // Final reduction: the invariant guarantees t < 2m, with t_hi the
    // 2^{64L} bit.
    let (diff, borrow) = sub_borrow(&t, m);
    let need = t_hi | (1 - borrow);
    select(&t, &diff, need & 1)
}

/// Montgomery squaring: symmetric schoolbook square ([`wide_sqr`], about
/// half the limb products of a general multiply) followed by one
/// [`mont_reduce_wide`]. Returns exactly `mont_mul(a, a, m, n0inv)` —
/// both paths end on the canonical representative.
/// Callers must pass `L2 = 2·L` explicitly (const-generic arithmetic
/// cannot derive it); the field macro monomorphises both from `$limbs`.
pub const fn mont_sqr<const L: usize, const L2: usize>(
    a: &[u64; L],
    m: &[u64; L],
    n0inv: u64,
) -> [u64; L] {
    let wide: Wide<L2> = wide_sqr(a);
    mont_reduce_wide(&wide.lo, wide.hi, m, n0inv)
}

/// An **unreduced** double-width Montgomery accumulator: the value
/// `lo + hi·2^{64·L2}` where `lo` is `L2 = 2L` little-endian limbs and
/// `hi` an explicit overflow limb.
///
/// A product of two reduced Montgomery operands (`< p`) always fits in
/// `lo`; `hi` buys headroom to *accumulate* many such products (and
/// modulus-squared complements for lazy subtraction) before paying a
/// single [`mont_reduce_wide`]. With `p ≈ 2^{64·L−1}` (the 0x8000…
/// supersingular moduli) each accumulated term is at most `p² ≈ 2^{128·L}/4`,
/// so `hi` overflows only after ~2⁶⁶ additions — far beyond any
/// accumulation the `F_{p²}` tower performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wide<const L2: usize> {
    /// Low `2L` limbs, little-endian.
    pub lo: [u64; L2],
    /// Overflow beyond `2^{64·L2}`.
    pub hi: u64,
}

impl<const L2: usize> Wide<L2> {
    /// The zero accumulator.
    pub const fn zero() -> Self {
        Self {
            lo: [0u64; L2],
            hi: 0,
        }
    }
}

/// Full double-width schoolbook product `a·b` (no reduction).
///
/// `L2` must equal `2·L` (compile-time asserted); the result's `hi` is
/// always zero but is carried so products feed directly into the
/// accumulator algebra ([`wide_add`], [`wide_sub_from`]).
pub const fn wide_mul<const L: usize, const L2: usize>(a: &[u64; L], b: &[u64; L]) -> Wide<L2> {
    assert!(L2 == 2 * L, "wide product needs exactly 2L limbs");
    let mut t = [0u64; L2];
    let mut i = 0;
    while i < L {
        let mut carry = 0u64;
        let mut j = 0;
        while j < L {
            let (lo, hi) = mac(t[i + j], a[i], b[j], carry);
            t[i + j] = lo;
            carry = hi;
            j += 1;
        }
        t[i + L] = carry;
        i += 1;
    }
    Wide { lo: t, hi: 0 }
}

/// Double-width **squaring**: computes the `i < j` cross products once,
/// doubles them with a shift, and adds the diagonal squares — `L(L+1)/2`
/// limb multiplications instead of the `L²` of [`wide_mul`].
pub const fn wide_sqr<const L: usize, const L2: usize>(a: &[u64; L]) -> Wide<L2> {
    assert!(L2 == 2 * L, "wide square needs exactly 2L limbs");
    let mut t = [0u64; L2];
    // Cross terms a[i]·a[j] for i < j, accumulated at positions i+j.
    let mut i = 0;
    while i < L {
        let mut carry = 0u64;
        let mut j = i + 1;
        while j < L {
            let (lo, hi) = mac(t[i + j], a[i], a[j], carry);
            t[i + j] = lo;
            carry = hi;
            j += 1;
        }
        if i + L < L2 {
            t[i + L] = carry;
        }
        i += 1;
    }
    // Double the cross terms (shift left one bit; the square fits 2L limbs,
    // so the outgoing bit is provably zero).
    let mut shifted_out = 0u64;
    let mut k = 0;
    while k < L2 {
        let next_out = t[k] >> 63;
        t[k] = (t[k] << 1) | shifted_out;
        shifted_out = next_out;
        k += 1;
    }
    // Add the diagonal squares a[i]² at positions 2i.
    let mut carry = 0u64;
    let mut i = 0;
    while i < L {
        let (lo, hi) = mac(t[2 * i], a[i], a[i], carry);
        t[2 * i] = lo;
        let (lo2, c2) = adc(t[2 * i + 1], hi, 0);
        t[2 * i + 1] = lo2;
        carry = c2;
        i += 1;
    }
    Wide { lo: t, hi: 0 }
}

/// Accumulator addition `a + b` (carries into `hi`).
pub const fn wide_add<const L2: usize>(a: &Wide<L2>, b: &Wide<L2>) -> Wide<L2> {
    let (lo, carry) = add_carry(&a.lo, &b.lo);
    Wide {
        lo,
        hi: a.hi + b.hi + carry,
    }
}

/// Lazy subtraction of a **single product** from an accumulator:
/// `a + (m² − b)` where `m2` is the squared modulus as `2L` limbs.
/// Because `b` is one product of reduced operands, `b ≤ (p−1)² < p² = m²`,
/// so the complement never borrows and the result's residue class mod `p`
/// equals `a − b`.
pub const fn wide_sub_from<const L2: usize>(
    a: &Wide<L2>,
    b: &Wide<L2>,
    m2: &[u64; L2],
) -> Wide<L2> {
    let (comp, borrow) = sub_borrow(m2, &b.lo);
    assert!(borrow == 0 && b.hi == 0, "lazy subtrahend must be a single product < m²");
    let (lo, carry) = add_carry(&a.lo, &comp);
    Wide {
        lo,
        hi: a.hi + carry,
    }
}

/// Add a Montgomery-form field element `x` (as `L` limbs) **shifted by
/// `R = 2^{64·L}`** into the accumulator: `a + x·R`. Since `REDC` divides
/// by `R`, this folds a fully-reduced addend into an unreduced product sum
/// for free: `REDC(ā·b̄ + x̄·R) = (a·b + x)·R mod p`.
pub const fn wide_add_shifted<const L2: usize>(a: &Wide<L2>, x: &[u64]) -> Wide<L2> {
    let l = L2 / 2;
    assert!(x.len() == l, "shifted addend must be L limbs");
    let mut lo = a.lo;
    let mut carry = 0u64;
    let mut i = 0;
    while i < l {
        let (s, c) = adc(lo[l + i], x[i], carry);
        lo[l + i] = s;
        carry = c;
        i += 1;
    }
    Wide {
        lo,
        hi: a.hi + carry,
    }
}

/// Generalized Montgomery reduction of an unreduced accumulator:
/// returns `(lo + hi·2^{64·L2}) · R^{-1} mod m`, fully reduced
/// (canonical), for **any** accumulator value — not just the `T < p·R`
/// bound of textbook REDC.
///
/// SOS shape: `L` rounds of `u = t[i]·n0inv; t += u·m << 64i`, carries
/// propagated through the upper limbs into the overflow word, then a
/// trailing subtract-while-≥m loop. The loop runs at most
/// `⌈T / (R·m)⌉ + 1` times — bounded by half the number of accumulated
/// products, independent of how small `m` is relative to `R` (variable
/// time, consistent with this crate's vartime arithmetic posture).
pub const fn mont_reduce_wide<const L: usize, const L2: usize>(
    lo: &[u64; L2],
    hi: u64,
    m: &[u64; L],
    n0inv: u64,
) -> [u64; L] {
    assert!(L2 == 2 * L, "wide reduction needs exactly 2L limbs");
    let mut t = *lo;
    let mut t_hi = hi;
    let mut i = 0;
    while i < L {
        let u = t[i].wrapping_mul(n0inv);
        let mut carry = 0u64;
        let mut j = 0;
        while j < L {
            let (lo_, hi_) = mac(t[i + j], u, m[j], carry);
            t[i + j] = lo_;
            carry = hi_;
            j += 1;
        }
        // Propagate into the upper half and, past it, the overflow word.
        let mut k = i + L;
        while k < L2 && carry != 0 {
            let (s, c) = adc(t[k], carry, 0);
            t[k] = s;
            carry = c;
            k += 1;
        }
        t_hi += carry;
        i += 1;
    }
    // The reduced value is the upper half plus the overflow word.
    let mut r = [0u64; L];
    let mut i = 0;
    while i < L {
        r[i] = t[i + L];
        i += 1;
    }
    loop {
        if t_hi == 0 && cmp(&r, m) < 0 {
            return r;
        }
        let (d, borrow) = sub_borrow(&r, m);
        r = d;
        t_hi -= borrow;
    }
}

/// `2^{64·L} mod m`, i.e. the Montgomery representation of 1.
pub const fn compute_r<const L: usize>(m: &[u64; L]) -> [u64; L] {
    // Start from m-complement trick: 2^{64L} mod m == (2^{64L} - m) mod m
    // because m < 2^{64L} <= 2m (top limb of m need not be set, so instead
    // compute by repeated doubling of 1, 64·L times).
    let mut acc = [0u64; L];
    acc[0] = 1;
    // Reduce the initial 1 (always < m for m > 1).
    let mut i = 0;
    while i < 64 * L {
        acc = double_mod(&acc, m);
        i += 1;
    }
    acc
}

/// `2^{128·L} mod m`, the constant used to convert into Montgomery form.
pub const fn compute_r2<const L: usize>(m: &[u64; L]) -> [u64; L] {
    let r = compute_r(m);
    let mut acc = r;
    let mut i = 0;
    while i < 64 * L {
        acc = double_mod(&acc, m);
        i += 1;
    }
    acc
}

/// Parse a hex string (optionally prefixed by `0x`) into limbs.
///
/// # Panics
///
/// Panics if the value does not fit in `L` limbs or a non-hex character is
/// encountered. Intended for compile-time parsing of hardcoded parameters.
pub const fn parse_hex<const L: usize>(s: &str) -> [u64; L] {
    let bytes = s.as_bytes();
    let mut start = 0;
    if bytes.len() >= 2 && bytes[0] == b'0' && (bytes[1] == b'x' || bytes[1] == b'X') {
        start = 2;
    }
    let mut out = [0u64; L];
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i];
        let digit = match c {
            b'0'..=b'9' => (c - b'0') as u64,
            b'a'..=b'f' => (c - b'a' + 10) as u64,
            b'A'..=b'F' => (c - b'A' + 10) as u64,
            b'_' => {
                i += 1;
                continue;
            }
            _ => panic!("invalid hex digit in field constant"),
        };
        // out = out * 16 + digit
        assert!(out[L - 1] >> 60 == 0, "hex constant does not fit in L limbs");
        let mut j = L;
        while j > 1 {
            j -= 1;
            out[j] = (out[j] << 4) | (out[j - 1] >> 60);
        }
        out[0] = (out[0] << 4) | digit;
        i += 1;
    }
    out
}

/// Number of significant bits (position of the highest set bit).
pub const fn bits<const L: usize>(a: &[u64; L]) -> u32 {
    let mut i = L;
    while i > 0 {
        i -= 1;
        if a[i] != 0 {
            return i as u32 * 64 + (64 - a[i].leading_zeros());
        }
    }
    0
}

/// Test bit `k` (little-endian numbering).
#[inline]
pub const fn bit<const L: usize>(a: &[u64; L], k: u32) -> bool {
    let limb = (k / 64) as usize;
    if limb >= L {
        return false;
    }
    (a[limb] >> (k % 64)) & 1 == 1
}

/// Number of significant bits of a little-endian limb **slice** (the
/// dynamically-sized counterpart of [`bits`], for exponents that arrive as
/// `&[u64]` — cofactors, scalar canonical limbs, subgroup orders).
pub const fn bits_slice(a: &[u64]) -> u32 {
    let mut i = a.len();
    while i > 0 {
        i -= 1;
        if a[i] != 0 {
            return i as u32 * 64 + (64 - a[i].leading_zeros());
        }
    }
    0
}

/// Extract the `width`-bit window starting at bit `bit_pos` (little-endian
/// numbering) from a limb slice, spanning limb boundaries and zero-padding
/// past the top. `width` must be at most 32 so the window always fits a
/// `usize` even with the cross-limb carry. This is the digit-decoding
/// primitive shared by windowed exponentiation (fixed-base combs, sliding
/// windows, Straus interleaving).
#[inline]
pub const fn window(a: &[u64], bit_pos: usize, width: usize) -> usize {
    assert!(width >= 1 && width <= 32, "window width out of range");
    let limb = bit_pos / 64;
    if limb >= a.len() {
        return 0;
    }
    let shift = bit_pos % 64;
    let mask = (1u64 << width) - 1;
    let mut w = (a[limb] >> shift) & mask;
    // Bits spilling into the next limb (if the window straddles a boundary).
    if shift + width > 64 && limb + 1 < a.len() {
        w |= (a[limb + 1] << (64 - shift)) & mask;
    }
    w as usize
}

/// Width-`w` non-adjacent form (wNAF) of a little-endian limb slice.
///
/// Returns signed digits `d_i` with `value = Σ d_i · 2^i`, where every
/// nonzero digit is odd, `|d_i| < 2^{w−1}`, and a nonzero digit is
/// followed by at least `w − 1` zeros. Digit order is little-endian
/// (index = bit position); the result has at most `bits_slice(a) + 1`
/// entries. This is the recoding behind signed-window exponentiation:
/// in groups where inversion is cheap (curve point negation) it cuts the
/// expected nonzero-digit density from `1 − 2^{−w}` per window to
/// `1/(w+1)` per bit while halving the table to odd multiples only.
///
/// # Panics
///
/// Panics if `w` is outside `2..=8` (digits must fit an `i8`).
pub fn wnaf_digits(a: &[u64], w: usize) -> Vec<i8> {
    assert!((2..=8).contains(&w), "wnaf width out of range");
    let mut e = a.to_vec();
    let mut digits = Vec::with_capacity(bits_slice(a) as usize + 1);
    let half = 1i64 << (w - 1);
    let full = 1i64 << w;
    let mask = (full - 1) as u64;
    while bits_slice(&e) != 0 {
        if e[0] & 1 == 1 {
            // Centered residue mods 2^w: odd, in (−2^{w−1}, 2^{w−1}).
            let low = (e[0] & mask) as i64;
            let d = if low >= half { low - full } else { low };
            if d > 0 {
                // d ≤ low ≤ e, so the borrow chain always terminates.
                let (diff, mut borrow) = sbb(e[0], d as u64, 0);
                e[0] = diff;
                let mut i = 1;
                while borrow != 0 {
                    let (diff, bo) = sbb(e[i], 0, borrow);
                    e[i] = diff;
                    borrow = bo;
                    i += 1;
                }
            } else {
                let (sum, mut carry) = adc(e[0], (-d) as u64, 0);
                e[0] = sum;
                let mut i = 1;
                while carry != 0 && i < e.len() {
                    let (sum, c) = adc(e[i], 0, carry);
                    e[i] = sum;
                    carry = c;
                    i += 1;
                }
                if carry != 0 {
                    e.push(carry);
                }
            }
            digits.push(d as i8);
        } else {
            digits.push(0);
        }
        // e is now even; shift out the processed bit.
        for i in 0..e.len() {
            e[i] >>= 1;
            if i + 1 < e.len() {
                e[i] |= e[i + 1] << 63;
            }
        }
    }
    digits
}

/// Logical right shift by one bit.
pub const fn shr1<const L: usize>(a: &[u64; L]) -> [u64; L] {
    let mut out = [0u64; L];
    let mut i = 0;
    while i < L {
        out[i] = a[i] >> 1;
        if i + 1 < L {
            out[i] |= a[i + 1] << 63;
        }
        i += 1;
    }
    out
}

/// Wrapping subtraction of a small `u64` constant (used to build `p - 2` and
/// similar exponents from a modulus).
pub const fn sub_u64<const L: usize>(a: &[u64; L], b: u64) -> [u64; L] {
    let mut out = *a;
    let (d, mut borrow) = sbb(out[0], b, 0);
    out[0] = d;
    let mut i = 1;
    while i < L && borrow != 0 {
        let (d, bo) = sbb(out[i], 0, borrow);
        out[i] = d;
        borrow = bo;
        i += 1;
    }
    assert!(borrow == 0, "sub_u64 underflow");
    out
}

/// Wrapping addition of a small `u64` constant.
pub const fn add_u64<const L: usize>(a: &[u64; L], b: u64) -> [u64; L] {
    let mut out = *a;
    let (s, mut carry) = adc(out[0], b, 0);
    out[0] = s;
    let mut i = 1;
    while i < L && carry != 0 {
        let (s, c) = adc(out[i], 0, carry);
        out[i] = s;
        carry = c;
        i += 1;
    }
    assert!(carry == 0, "add_u64 overflow");
    out
}

/// Logical right shift by one of an `L+1`-bit value `(carry, a)`.
const fn shr1_with_carry<const L: usize>(a: &[u64; L], carry: u64) -> [u64; L] {
    let mut out = shr1(a);
    out[L - 1] |= carry << 63;
    out
}

/// Modular inverse via the binary extended-GCD algorithm.
///
/// `a` is a **canonical** (non-Montgomery) value reduced mod the odd modulus
/// `m`. Returns `None` when `a` is zero (for prime `m`, every nonzero value
/// is invertible). Variable-time.
pub fn inv_mod<const L: usize>(a: &[u64; L], m: &[u64; L]) -> Option<[u64; L]> {
    if is_zero(a) {
        return None;
    }
    debug_assert!(m[0] & 1 == 1, "modulus must be odd");
    let mut u = *a;
    let mut v = *m;
    let mut x1 = [0u64; L];
    x1[0] = 1;
    let mut x2 = [0u64; L];

    let one = x1;
    while cmp(&u, &one) != 0 && cmp(&v, &one) != 0 {
        while u[0] & 1 == 0 {
            u = shr1(&u);
            if x1[0] & 1 == 0 {
                x1 = shr1(&x1);
            } else {
                let (s, c) = add_carry(&x1, m);
                x1 = shr1_with_carry(&s, c);
            }
        }
        while v[0] & 1 == 0 {
            v = shr1(&v);
            if x2[0] & 1 == 0 {
                x2 = shr1(&x2);
            } else {
                let (s, c) = add_carry(&x2, m);
                x2 = shr1_with_carry(&s, c);
            }
        }
        if cmp(&u, &v) >= 0 {
            (u, _) = sub_borrow(&u, &v);
            x1 = sub_mod(&x1, &x2, m);
        } else {
            (v, _) = sub_borrow(&v, &u);
            x2 = sub_mod(&x2, &x1, m);
        }
    }
    Some(if cmp(&u, &one) == 0 { x1 } else { x2 })
}

/// Convert limbs to canonical big-endian bytes (`8·L` bytes).
pub fn to_bytes_be<const L: usize>(a: &[u64; L]) -> Vec<u8> {
    let mut out = Vec::with_capacity(L * 8);
    for i in (0..L).rev() {
        out.extend_from_slice(&a[i].to_be_bytes());
    }
    out
}

/// Parse big-endian bytes into limbs. Input longer than `8·L` bytes is
/// rejected (returns `None`); shorter input is zero-padded on the left.
#[allow(clippy::needless_range_loop)]
pub fn from_bytes_be<const L: usize>(bytes: &[u8]) -> Option<[u64; L]> {
    if bytes.len() > L * 8 {
        return None;
    }
    let mut padded = vec![0u8; L * 8 - bytes.len()];
    padded.extend_from_slice(bytes);
    let mut out = [0u64; L];
    for i in 0..L {
        let start = (L - 1 - i) * 8;
        let mut limb = [0u8; 8];
        limb.copy_from_slice(&padded[start..start + 8]);
        out[i] = u64::from_be_bytes(limb);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: [u64; 2] = [0xffff_ffff_ffff_fff1, 0x7fff_ffff_ffff_ffff]; // odd, not prime; fine for limb tests

    #[test]
    fn adc_sbb_roundtrip() {
        let (s, c) = adc(u64::MAX, 1, 0);
        assert_eq!((s, c), (0, 1));
        let (d, b) = sbb(0, 1, 0);
        assert_eq!((d, b), (u64::MAX, 1));
        let (d, b) = sbb(5, 3, 1);
        assert_eq!((d, b), (1, 0));
    }

    #[test]
    fn mac_full_range() {
        // acc + a*b + carry with everything maxed must not overflow u128 math
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        // u64::MAX + u64::MAX^2 + u64::MAX = 2^128 - 1 exactly
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn add_sub_mod_inverse_each_other() {
        let a = [7u64, 9u64];
        let b = [11u64, 3u64];
        let s = add_mod(&a, &b, &M);
        let back = sub_mod(&s, &b, &M);
        assert_eq!(back, a);
    }

    #[test]
    fn add_mod_handles_full_width_modulus() {
        // modulus with top bit set
        let m: [u64; 1] = [0xffff_ffff_ffff_ffc5]; // prime 2^64 - 59
        let a = [m[0] - 1];
        let s = add_mod(&a, &a, &m);
        // (m-1)+(m-1) = 2m-2 ≡ m-2
        assert_eq!(s, [m[0] - 2]);
    }

    #[test]
    fn neg_mod_zero_is_zero() {
        let z = [0u64, 0u64];
        assert_eq!(neg_mod(&z, &M), z);
        let a = [5u64, 0u64];
        let n = neg_mod(&a, &M);
        assert_eq!(add_mod(&a, &n, &M), z);
    }

    #[test]
    fn n0inv_is_correct() {
        for m0 in [1u64, 3, 0xffff_ffff_ffff_ffc5, 0x9c7b_55f3_3f4a_5557] {
            let inv = mont_n0inv(m0);
            assert_eq!(m0.wrapping_mul(inv.wrapping_neg()), 1);
        }
    }

    #[test]
    fn mont_mul_matches_u128_reference() {
        // Single-limb field: p = 2^61 - 1 (Mersenne prime)
        let p: [u64; 1] = [(1u64 << 61) - 1];
        let n0 = mont_n0inv(p[0]);
        let r2 = compute_r2(&p);
        let to_mont = |x: u64| mont_mul(&[x], &r2, &p, n0);
        let from_mont = |x: [u64; 1]| mont_mul(&x, &[1], &p, n0)[0];
        for (a, b) in [(3u64, 5u64), (1 << 60, 12345), (p[0] - 1, p[0] - 1)] {
            let am = to_mont(a);
            let bm = to_mont(b);
            let cm = mont_mul(&am, &bm, &p, n0);
            let c = from_mont(cm);
            let expect = ((a as u128 * b as u128) % p[0] as u128) as u64;
            assert_eq!(c, expect, "a={a} b={b}");
        }
    }

    #[test]
    fn mont_mul_full_width_modulus() {
        // p = 2^64 - 59 (top bit set), exercises the extra-carry path.
        let p: [u64; 1] = [0xffff_ffff_ffff_ffc5];
        let n0 = mont_n0inv(p[0]);
        let r2 = compute_r2(&p);
        let a = p[0] - 1;
        let am = mont_mul(&[a], &r2, &p, n0);
        let sq = mont_mul(&am, &am, &p, n0);
        let out = mont_mul(&sq, &[1], &p, n0)[0];
        // (p-1)^2 ≡ 1 mod p
        assert_eq!(out, 1);
    }

    #[test]
    fn parse_hex_roundtrip() {
        let v: [u64; 2] = parse_hex("0x5ed5e420ff583487");
        assert_eq!(v, [0x5ed5_e420_ff58_3487, 0]);
        let v: [u64; 2] = parse_hex("42ae6467338a04eeeb");
        assert_eq!(v, [0xae64_6733_8a04_eeeb, 0x42]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn parse_hex_overflow_panics() {
        let _: [u64; 1] = parse_hex("10000000000000000");
    }

    #[test]
    fn bits_and_bit() {
        let v: [u64; 2] = [0, 1];
        assert_eq!(bits(&v), 65);
        assert!(bit(&v, 64));
        assert!(!bit(&v, 63));
        assert!(!bit(&v, 200));
        assert_eq!(bits(&[0u64, 0]), 0);
    }

    #[test]
    fn bits_slice_matches_array_bits() {
        assert_eq!(bits_slice(&[0, 1]), bits(&[0u64, 1]));
        assert_eq!(bits_slice(&[]), 0);
        assert_eq!(bits_slice(&[0, 0, 0]), 0);
        assert_eq!(bits_slice(&[0x8000_0000_0000_0000]), 64);
        assert_eq!(bits_slice(&[u64::MAX, u64::MAX, 1]), 129);
    }

    #[test]
    fn window_extracts_digits() {
        let v = [0xfedc_ba98_7654_3210u64, 0x0123_4567_89ab_cdefu64];
        // Aligned nibbles read straight out of the hex digits.
        assert_eq!(window(&v, 0, 4), 0x0);
        assert_eq!(window(&v, 4, 4), 0x1);
        assert_eq!(window(&v, 60, 4), 0xf);
        assert_eq!(window(&v, 64, 4), 0xf);
        assert_eq!(window(&v, 124, 4), 0x0);
        // Cross-limb window: bits 62..67 = top two bits of limb0 (11) plus
        // low three bits of limb1 (111) -> 0b11111.
        assert_eq!(window(&v, 62, 5), 0b11111);
        // Past the end: zero-padded.
        assert_eq!(window(&v, 128, 4), 0);
        assert_eq!(window(&v, 120, 8), 0x01);
        // Reference check against per-bit extraction for many positions.
        for pos in 0..130 {
            for width in [1usize, 2, 3, 5, 7, 8] {
                let mut expect = 0usize;
                for k in (0..width).rev() {
                    let b = pos + k;
                    let limb = b / 64;
                    let set = limb < v.len() && (v[limb] >> (b % 64)) & 1 == 1;
                    expect = (expect << 1) | usize::from(set);
                }
                assert_eq!(window(&v, pos, width), expect, "pos={pos} width={width}");
            }
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let v: [u64; 2] = [0x0123_4567_89ab_cdef, 0xfeed];
        let b = to_bytes_be(&v);
        assert_eq!(b.len(), 16);
        assert_eq!(from_bytes_be::<2>(&b), Some(v));
        // short input zero-pads
        assert_eq!(from_bytes_be::<2>(&[1]), Some([1, 0]));
        // long input rejected
        assert_eq!(from_bytes_be::<1>(&[0; 9]), None);
    }

    #[test]
    fn shr1_and_sub_u64() {
        let v: [u64; 2] = [1, 1];
        assert_eq!(shr1(&v), [0x8000_0000_0000_0000, 0]);
        assert_eq!(sub_u64(&[0, 1], 1), [u64::MAX, 0]);
        assert_eq!(add_u64(&[u64::MAX, 0], 1), [0, 1]);
    }

    #[test]
    fn wide_mul_matches_u128_reference() {
        for (a, b) in [
            (0u64, 0u64),
            (1, u64::MAX),
            (u64::MAX, u64::MAX),
            (0xdead_beef_1234_5678, 0x9abc_def0_8765_4321),
        ] {
            let w: Wide<2> = wide_mul(&[a], &[b]);
            let expect = a as u128 * b as u128;
            assert_eq!(w.lo, [expect as u64, (expect >> 64) as u64]);
            assert_eq!(w.hi, 0);
            let sq: Wide<2> = wide_sqr(&[a]);
            assert_eq!(sq, wide_mul(&[a], &[a]), "square a={a}");
        }
    }

    #[test]
    fn wide_sqr_matches_wide_mul_multilimb() {
        let vals: [[u64; 2]; 4] = [
            [0, 0],
            [u64::MAX, u64::MAX],
            [0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210],
            [1, u64::MAX],
        ];
        for a in vals {
            let sq: Wide<4> = wide_sqr(&a);
            assert_eq!(sq, wide_mul(&a, &a), "a={a:?}");
        }
    }

    #[test]
    fn mont_sqr_matches_mont_mul() {
        let p: [u64; 1] = [0xffff_ffff_ffff_ffc5];
        let n0 = mont_n0inv(p[0]);
        for a in [0u64, 1, 59, p[0] - 1, 0x1234_5678_9abc_def0] {
            assert_eq!(
                mont_sqr::<1, 2>(&[a], &p, n0),
                mont_mul(&[a], &[a], &p, n0),
                "a={a}"
            );
        }
        let p2: [u64; 2] = [0xae64_6733_8a04_eeeb, 0x42]; // Toy 71-bit modulus
        let n02 = mont_n0inv(p2[0]);
        for a in [[0u64, 0], [1, 0], [0xae64_6733_8a04_eeea, 0x42], [u64::MAX, 0x41]] {
            assert_eq!(
                mont_sqr::<2, 4>(&a, &p2, n02),
                mont_mul(&a, &a, &p2, n02),
                "a={a:?}"
            );
        }
    }

    #[test]
    fn mont_reduce_wide_accumulated_sum_matches_reduced_path() {
        // Full-width single-limb modulus: products approach R², so a few
        // accumulated terms push the sum past 2^128 into the overflow limb.
        let p: [u64; 1] = [0xffff_ffff_ffff_ffc5];
        let n0 = mont_n0inv(p[0]);
        let terms: [(u64, u64); 5] = [
            (p[0] - 1, p[0] - 1),
            (p[0] - 1, p[0] - 2),
            (0x1234_5678_9abc_def0, p[0] - 1),
            (p[0] - 3, p[0] - 59),
            (1, 1),
        ];
        let mut acc = Wide::<2>::zero();
        let mut expect = [0u64; 1];
        for (a, b) in terms {
            acc = wide_add(&acc, &wide_mul(&[a], &[b]));
            expect = add_mod(&expect, &mont_mul(&[a], &[b], &p, n0), &p);
        }
        assert!(acc.hi > 0, "test should exercise the overflow limb");
        assert_eq!(mont_reduce_wide(&acc.lo, acc.hi, &p, n0), expect);
    }

    #[test]
    fn wide_sub_from_is_exact_subtraction() {
        let p: [u64; 1] = [0xffff_ffff_ffff_ffc5];
        let n0 = mont_n0inv(p[0]);
        let m2: Wide<2> = wide_mul(&p, &p);
        let a = [p[0] - 1];
        let b = [0x9999_8888_7777_6666];
        let prod_a = wide_mul(&a, &a);
        let prod_b = wide_mul(&b, &b);
        let diff = wide_sub_from(&prod_a, &prod_b, &m2.lo);
        let expect = sub_mod(
            &mont_mul(&a, &a, &p, n0),
            &mont_mul(&b, &b, &p, n0),
            &p,
        );
        assert_eq!(mont_reduce_wide(&diff.lo, diff.hi, &p, n0), expect);
    }

    #[test]
    fn wide_add_shifted_folds_reduced_addend() {
        // REDC(a·b + x·R) must equal mont_mul(a,b) + x.
        let p: [u64; 2] = [0xae64_6733_8a04_eeeb, 0x42];
        let n0 = mont_n0inv(p[0]);
        let a = [0x1111_2222_3333_4444u64, 0x12];
        let b = [0x5555_6666_7777_8888u64, 0x3f];
        let x = [0xaaaa_bbbb_cccc_ddddu64, 0x01];
        let w: Wide<4> = wide_add_shifted(&wide_mul(&a, &b), &x);
        let expect = add_mod(&mont_mul(&a, &b, &p, n0), &x, &p);
        assert_eq!(mont_reduce_wide(&w.lo, w.hi, &p, n0), expect);
    }

    #[test]
    fn wnaf_digits_reconstruct_and_satisfy_naf_property() {
        // Deterministic value grid: small constants, limb-boundary
        // straddlers, and saturated two-limb values.
        let values: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![2],
            vec![7],
            vec![0xdead_beef],
            vec![u64::MAX],
            vec![u64::MAX, 1],
            vec![u64::MAX, 0x3fff_ffff_ffff],
            vec![0x0123_4567_89ab_cdef, 0x1fff_ffff_ffff],
        ];
        for v in &values {
            for w in 2..=8usize {
                let digits = wnaf_digits(v, w);
                assert!(digits.len() <= bits_slice(v) as usize + 1, "len w={w}");
                // Reconstruct Σ d_i 2^i in i128 (all grid values fit).
                let value = v.iter().rev().fold(0i128, |acc, &l| (acc << 64) | l as i128);
                let mut recon = 0i128;
                for (i, &d) in digits.iter().enumerate() {
                    recon += (d as i128) << i;
                }
                assert_eq!(recon, value, "reconstruct v={v:?} w={w}");
                let half = 1i16 << (w - 1);
                for (i, &d) in digits.iter().enumerate() {
                    if d == 0 {
                        continue;
                    }
                    assert!(d % 2 != 0, "digit parity");
                    assert!((d as i16).abs() < half, "digit magnitude w={w}");
                    for (j, &dj) in digits.iter().enumerate().take(i + w).skip(i + 1) {
                        assert_eq!(dj, 0, "naf spacing w={w} i={i} j={j}");
                    }
                }
            }
        }
    }

    #[test]
    fn compute_r_small() {
        // p = 97: 2^64 mod 97
        let p: [u64; 1] = [97];
        let r = compute_r(&p);
        let expect = ((1u128 << 64) % 97) as u64;
        assert_eq!(r[0], expect);
        let r2 = compute_r2(&p);
        let expect2 = {
            let r128 = (1u128 << 64) % 97;
            ((r128 * r128) % 97) as u64
        };
        assert_eq!(r2[0], expect2);
    }
}
