//! Fixed-width little-endian limb arithmetic on `[u64; L]` arrays.
//!
//! Every routine here is `const fn` where the const evaluator allows it so
//! that per-field Montgomery constants can be derived at compile time by the
//! [`define_prime_field!`](crate::define_prime_field) macro. The same
//! routines back the runtime [`MontCtx`](crate::mont::MontCtx) used by
//! tooling (primality testing, parameter validation).
//!
//! Conventions:
//! * limb order is little-endian (`a[0]` is least significant);
//! * all modular routines assume operands are already reduced (`< modulus`)
//!   unless stated otherwise;
//! * reduction steps use branchless conditional subtraction so the memory
//!   access pattern does not depend on secret values. Exponentiation is
//!   provided in variable-time form only (see [`crate::field`] for the
//!   side-channel discussion).

/// Add with carry: returns `(sum, carry)` for `a + b + carry`.
#[inline(always)]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: returns `(diff, borrow)` for `a - b - borrow`,
/// where `borrow` is `0` or `1` on input and output.
#[inline(always)]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Multiply-accumulate: returns `(lo, hi)` of `acc + a * b + carry`.
#[inline(always)]
pub const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = acc as u128 + (a as u128) * (b as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `a + b`, returning the sum and the outgoing carry bit.
pub const fn add_carry<const L: usize>(a: &[u64; L], b: &[u64; L]) -> ([u64; L], u64) {
    let mut out = [0u64; L];
    let mut carry = 0u64;
    let mut i = 0;
    while i < L {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
        i += 1;
    }
    (out, carry)
}

/// `a - b`, returning the difference and the outgoing borrow bit.
pub const fn sub_borrow<const L: usize>(a: &[u64; L], b: &[u64; L]) -> ([u64; L], u64) {
    let mut out = [0u64; L];
    let mut borrow = 0u64;
    let mut i = 0;
    while i < L {
        let (d, bo) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
        i += 1;
    }
    (out, borrow)
}

/// Three-way comparison. Returns `-1`, `0`, or `1`.
pub const fn cmp<const L: usize>(a: &[u64; L], b: &[u64; L]) -> i32 {
    let mut i = L;
    while i > 0 {
        i -= 1;
        if a[i] < b[i] {
            return -1;
        }
        if a[i] > b[i] {
            return 1;
        }
    }
    0
}

/// True iff every limb is zero.
pub const fn is_zero<const L: usize>(a: &[u64; L]) -> bool {
    let mut acc = 0u64;
    let mut i = 0;
    while i < L {
        acc |= a[i];
        i += 1;
    }
    acc == 0
}

/// Branchless select: returns `b` if `choice == 1`, `a` if `choice == 0`.
#[inline(always)]
pub const fn select<const L: usize>(a: &[u64; L], b: &[u64; L], choice: u64) -> [u64; L] {
    let mask = choice.wrapping_neg(); // 0 or all-ones
    let mut out = [0u64; L];
    let mut i = 0;
    while i < L {
        out[i] = (a[i] & !mask) | (b[i] & mask);
        i += 1;
    }
    out
}

/// Modular addition for reduced operands: `(a + b) mod m`.
///
/// Correct even when the modulus occupies the full `64·L` bits (the carry
/// bit out of the raw addition is folded into the conditional subtraction).
pub const fn add_mod<const L: usize>(a: &[u64; L], b: &[u64; L], m: &[u64; L]) -> [u64; L] {
    let (sum, carry) = add_carry(a, b);
    let (diff, borrow) = sub_borrow(&sum, m);
    // If the raw addition overflowed, the subtraction of m is definitely
    // needed (sum >= 2^{64L} > m). Otherwise it is needed iff sum >= m,
    // i.e. iff the trial subtraction did not borrow.
    let need = carry | (1 - borrow);
    select(&sum, &diff, need & 1)
}

/// Modular subtraction for reduced operands: `(a - b) mod m`.
pub const fn sub_mod<const L: usize>(a: &[u64; L], b: &[u64; L], m: &[u64; L]) -> [u64; L] {
    let (diff, borrow) = sub_borrow(a, b);
    let (fixed, _) = add_carry(&diff, m);
    select(&diff, &fixed, borrow)
}

/// Modular negation for a reduced operand: `(-a) mod m`.
pub const fn neg_mod<const L: usize>(a: &[u64; L], m: &[u64; L]) -> [u64; L] {
    let (diff, _) = sub_borrow(m, a);
    let zero = [0u64; L];
    let az = if is_zero(a) { 1u64 } else { 0u64 };
    select(&diff, &zero, az)
}

/// Modular doubling for a reduced operand.
pub const fn double_mod<const L: usize>(a: &[u64; L], m: &[u64; L]) -> [u64; L] {
    add_mod(a, a, m)
}

/// `-m[0]^{-1} mod 2^64` — the Montgomery reduction constant.
///
/// # Panics
///
/// Panics (at compile time when used in const context) if `m0` is even.
pub const fn mont_n0inv(m0: u64) -> u64 {
    assert!(m0 & 1 == 1, "montgomery modulus must be odd");
    // Newton iteration: each step doubles the number of correct low bits.
    let mut inv = m0; // correct to 3 bits for odd m0 (actually to 2^3)
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Montgomery multiplication (CIOS): returns `a · b · R^{-1} mod m` where
/// `R = 2^{64·L}`. Operands must be reduced; the result is reduced.
pub const fn mont_mul<const L: usize>(
    a: &[u64; L],
    b: &[u64; L],
    m: &[u64; L],
    n0inv: u64,
) -> [u64; L] {
    // t holds L+2 limbs of running state: t[0..L], t_hi, t_top.
    let mut t = [0u64; L];
    let mut t_hi = 0u64;
    let mut t_top = 0u64;

    let mut i = 0;
    while i < L {
        // t += a[i] * b
        let mut carry = 0u64;
        let mut j = 0;
        while j < L {
            let (lo, hi) = mac(t[j], a[i], b[j], carry);
            t[j] = lo;
            carry = hi;
            j += 1;
        }
        let (lo, c2) = adc(t_hi, carry, 0);
        t_hi = lo;
        t_top += c2;

        // reduce: u = t[0] * n0inv; t += u * m; t >>= 64
        let u = t[0].wrapping_mul(n0inv);
        let (_, mut carry) = mac(t[0], u, m[0], 0);
        let mut j = 1;
        while j < L {
            let (lo, hi) = mac(t[j], u, m[j], carry);
            t[j - 1] = lo;
            carry = hi;
            j += 1;
        }
        let (lo, c2) = adc(t_hi, carry, 0);
        t[L - 1] = lo;
        t_hi = t_top + c2;
        t_top = 0;
        i += 1;
    }

    // Final reduction: the invariant guarantees t < 2m, with t_hi the
    // 2^{64L} bit.
    let (diff, borrow) = sub_borrow(&t, m);
    let need = t_hi | (1 - borrow);
    select(&t, &diff, need & 1)
}

/// Montgomery squaring (currently delegates to [`mont_mul`]).
pub const fn mont_sqr<const L: usize>(a: &[u64; L], m: &[u64; L], n0inv: u64) -> [u64; L] {
    mont_mul(a, a, m, n0inv)
}

/// `2^{64·L} mod m`, i.e. the Montgomery representation of 1.
pub const fn compute_r<const L: usize>(m: &[u64; L]) -> [u64; L] {
    // Start from m-complement trick: 2^{64L} mod m == (2^{64L} - m) mod m
    // because m < 2^{64L} <= 2m (top limb of m need not be set, so instead
    // compute by repeated doubling of 1, 64·L times).
    let mut acc = [0u64; L];
    acc[0] = 1;
    // Reduce the initial 1 (always < m for m > 1).
    let mut i = 0;
    while i < 64 * L {
        acc = double_mod(&acc, m);
        i += 1;
    }
    acc
}

/// `2^{128·L} mod m`, the constant used to convert into Montgomery form.
pub const fn compute_r2<const L: usize>(m: &[u64; L]) -> [u64; L] {
    let r = compute_r(m);
    let mut acc = r;
    let mut i = 0;
    while i < 64 * L {
        acc = double_mod(&acc, m);
        i += 1;
    }
    acc
}

/// Parse a hex string (optionally prefixed by `0x`) into limbs.
///
/// # Panics
///
/// Panics if the value does not fit in `L` limbs or a non-hex character is
/// encountered. Intended for compile-time parsing of hardcoded parameters.
pub const fn parse_hex<const L: usize>(s: &str) -> [u64; L] {
    let bytes = s.as_bytes();
    let mut start = 0;
    if bytes.len() >= 2 && bytes[0] == b'0' && (bytes[1] == b'x' || bytes[1] == b'X') {
        start = 2;
    }
    let mut out = [0u64; L];
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i];
        let digit = match c {
            b'0'..=b'9' => (c - b'0') as u64,
            b'a'..=b'f' => (c - b'a' + 10) as u64,
            b'A'..=b'F' => (c - b'A' + 10) as u64,
            b'_' => {
                i += 1;
                continue;
            }
            _ => panic!("invalid hex digit in field constant"),
        };
        // out = out * 16 + digit
        assert!(out[L - 1] >> 60 == 0, "hex constant does not fit in L limbs");
        let mut j = L;
        while j > 1 {
            j -= 1;
            out[j] = (out[j] << 4) | (out[j - 1] >> 60);
        }
        out[0] = (out[0] << 4) | digit;
        i += 1;
    }
    out
}

/// Number of significant bits (position of the highest set bit).
pub const fn bits<const L: usize>(a: &[u64; L]) -> u32 {
    let mut i = L;
    while i > 0 {
        i -= 1;
        if a[i] != 0 {
            return i as u32 * 64 + (64 - a[i].leading_zeros());
        }
    }
    0
}

/// Test bit `k` (little-endian numbering).
#[inline]
pub const fn bit<const L: usize>(a: &[u64; L], k: u32) -> bool {
    let limb = (k / 64) as usize;
    if limb >= L {
        return false;
    }
    (a[limb] >> (k % 64)) & 1 == 1
}

/// Number of significant bits of a little-endian limb **slice** (the
/// dynamically-sized counterpart of [`bits`], for exponents that arrive as
/// `&[u64]` — cofactors, scalar canonical limbs, subgroup orders).
pub const fn bits_slice(a: &[u64]) -> u32 {
    let mut i = a.len();
    while i > 0 {
        i -= 1;
        if a[i] != 0 {
            return i as u32 * 64 + (64 - a[i].leading_zeros());
        }
    }
    0
}

/// Extract the `width`-bit window starting at bit `bit_pos` (little-endian
/// numbering) from a limb slice, spanning limb boundaries and zero-padding
/// past the top. `width` must be at most 32 so the window always fits a
/// `usize` even with the cross-limb carry. This is the digit-decoding
/// primitive shared by windowed exponentiation (fixed-base combs, sliding
/// windows, Straus interleaving).
#[inline]
pub const fn window(a: &[u64], bit_pos: usize, width: usize) -> usize {
    assert!(width >= 1 && width <= 32, "window width out of range");
    let limb = bit_pos / 64;
    if limb >= a.len() {
        return 0;
    }
    let shift = bit_pos % 64;
    let mask = (1u64 << width) - 1;
    let mut w = (a[limb] >> shift) & mask;
    // Bits spilling into the next limb (if the window straddles a boundary).
    if shift + width > 64 && limb + 1 < a.len() {
        w |= (a[limb + 1] << (64 - shift)) & mask;
    }
    w as usize
}

/// Logical right shift by one bit.
pub const fn shr1<const L: usize>(a: &[u64; L]) -> [u64; L] {
    let mut out = [0u64; L];
    let mut i = 0;
    while i < L {
        out[i] = a[i] >> 1;
        if i + 1 < L {
            out[i] |= a[i + 1] << 63;
        }
        i += 1;
    }
    out
}

/// Wrapping subtraction of a small `u64` constant (used to build `p - 2` and
/// similar exponents from a modulus).
pub const fn sub_u64<const L: usize>(a: &[u64; L], b: u64) -> [u64; L] {
    let mut out = *a;
    let (d, mut borrow) = sbb(out[0], b, 0);
    out[0] = d;
    let mut i = 1;
    while i < L && borrow != 0 {
        let (d, bo) = sbb(out[i], 0, borrow);
        out[i] = d;
        borrow = bo;
        i += 1;
    }
    assert!(borrow == 0, "sub_u64 underflow");
    out
}

/// Wrapping addition of a small `u64` constant.
pub const fn add_u64<const L: usize>(a: &[u64; L], b: u64) -> [u64; L] {
    let mut out = *a;
    let (s, mut carry) = adc(out[0], b, 0);
    out[0] = s;
    let mut i = 1;
    while i < L && carry != 0 {
        let (s, c) = adc(out[i], 0, carry);
        out[i] = s;
        carry = c;
        i += 1;
    }
    assert!(carry == 0, "add_u64 overflow");
    out
}

/// Logical right shift by one of an `L+1`-bit value `(carry, a)`.
const fn shr1_with_carry<const L: usize>(a: &[u64; L], carry: u64) -> [u64; L] {
    let mut out = shr1(a);
    out[L - 1] |= carry << 63;
    out
}

/// Modular inverse via the binary extended-GCD algorithm.
///
/// `a` is a **canonical** (non-Montgomery) value reduced mod the odd modulus
/// `m`. Returns `None` when `a` is zero (for prime `m`, every nonzero value
/// is invertible). Variable-time.
pub fn inv_mod<const L: usize>(a: &[u64; L], m: &[u64; L]) -> Option<[u64; L]> {
    if is_zero(a) {
        return None;
    }
    debug_assert!(m[0] & 1 == 1, "modulus must be odd");
    let mut u = *a;
    let mut v = *m;
    let mut x1 = [0u64; L];
    x1[0] = 1;
    let mut x2 = [0u64; L];

    let one = x1;
    while cmp(&u, &one) != 0 && cmp(&v, &one) != 0 {
        while u[0] & 1 == 0 {
            u = shr1(&u);
            if x1[0] & 1 == 0 {
                x1 = shr1(&x1);
            } else {
                let (s, c) = add_carry(&x1, m);
                x1 = shr1_with_carry(&s, c);
            }
        }
        while v[0] & 1 == 0 {
            v = shr1(&v);
            if x2[0] & 1 == 0 {
                x2 = shr1(&x2);
            } else {
                let (s, c) = add_carry(&x2, m);
                x2 = shr1_with_carry(&s, c);
            }
        }
        if cmp(&u, &v) >= 0 {
            (u, _) = sub_borrow(&u, &v);
            x1 = sub_mod(&x1, &x2, m);
        } else {
            (v, _) = sub_borrow(&v, &u);
            x2 = sub_mod(&x2, &x1, m);
        }
    }
    Some(if cmp(&u, &one) == 0 { x1 } else { x2 })
}

/// Convert limbs to canonical big-endian bytes (`8·L` bytes).
pub fn to_bytes_be<const L: usize>(a: &[u64; L]) -> Vec<u8> {
    let mut out = Vec::with_capacity(L * 8);
    for i in (0..L).rev() {
        out.extend_from_slice(&a[i].to_be_bytes());
    }
    out
}

/// Parse big-endian bytes into limbs. Input longer than `8·L` bytes is
/// rejected (returns `None`); shorter input is zero-padded on the left.
#[allow(clippy::needless_range_loop)]
pub fn from_bytes_be<const L: usize>(bytes: &[u8]) -> Option<[u64; L]> {
    if bytes.len() > L * 8 {
        return None;
    }
    let mut padded = vec![0u8; L * 8 - bytes.len()];
    padded.extend_from_slice(bytes);
    let mut out = [0u64; L];
    for i in 0..L {
        let start = (L - 1 - i) * 8;
        let mut limb = [0u8; 8];
        limb.copy_from_slice(&padded[start..start + 8]);
        out[i] = u64::from_be_bytes(limb);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: [u64; 2] = [0xffff_ffff_ffff_fff1, 0x7fff_ffff_ffff_ffff]; // odd, not prime; fine for limb tests

    #[test]
    fn adc_sbb_roundtrip() {
        let (s, c) = adc(u64::MAX, 1, 0);
        assert_eq!((s, c), (0, 1));
        let (d, b) = sbb(0, 1, 0);
        assert_eq!((d, b), (u64::MAX, 1));
        let (d, b) = sbb(5, 3, 1);
        assert_eq!((d, b), (1, 0));
    }

    #[test]
    fn mac_full_range() {
        // acc + a*b + carry with everything maxed must not overflow u128 math
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        // u64::MAX + u64::MAX^2 + u64::MAX = 2^128 - 1 exactly
        assert_eq!(lo, u64::MAX);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn add_sub_mod_inverse_each_other() {
        let a = [7u64, 9u64];
        let b = [11u64, 3u64];
        let s = add_mod(&a, &b, &M);
        let back = sub_mod(&s, &b, &M);
        assert_eq!(back, a);
    }

    #[test]
    fn add_mod_handles_full_width_modulus() {
        // modulus with top bit set
        let m: [u64; 1] = [0xffff_ffff_ffff_ffc5]; // prime 2^64 - 59
        let a = [m[0] - 1];
        let s = add_mod(&a, &a, &m);
        // (m-1)+(m-1) = 2m-2 ≡ m-2
        assert_eq!(s, [m[0] - 2]);
    }

    #[test]
    fn neg_mod_zero_is_zero() {
        let z = [0u64, 0u64];
        assert_eq!(neg_mod(&z, &M), z);
        let a = [5u64, 0u64];
        let n = neg_mod(&a, &M);
        assert_eq!(add_mod(&a, &n, &M), z);
    }

    #[test]
    fn n0inv_is_correct() {
        for m0 in [1u64, 3, 0xffff_ffff_ffff_ffc5, 0x9c7b_55f3_3f4a_5557] {
            let inv = mont_n0inv(m0);
            assert_eq!(m0.wrapping_mul(inv.wrapping_neg()), 1);
        }
    }

    #[test]
    fn mont_mul_matches_u128_reference() {
        // Single-limb field: p = 2^61 - 1 (Mersenne prime)
        let p: [u64; 1] = [(1u64 << 61) - 1];
        let n0 = mont_n0inv(p[0]);
        let r2 = compute_r2(&p);
        let to_mont = |x: u64| mont_mul(&[x], &r2, &p, n0);
        let from_mont = |x: [u64; 1]| mont_mul(&x, &[1], &p, n0)[0];
        for (a, b) in [(3u64, 5u64), (1 << 60, 12345), (p[0] - 1, p[0] - 1)] {
            let am = to_mont(a);
            let bm = to_mont(b);
            let cm = mont_mul(&am, &bm, &p, n0);
            let c = from_mont(cm);
            let expect = ((a as u128 * b as u128) % p[0] as u128) as u64;
            assert_eq!(c, expect, "a={a} b={b}");
        }
    }

    #[test]
    fn mont_mul_full_width_modulus() {
        // p = 2^64 - 59 (top bit set), exercises the extra-carry path.
        let p: [u64; 1] = [0xffff_ffff_ffff_ffc5];
        let n0 = mont_n0inv(p[0]);
        let r2 = compute_r2(&p);
        let a = p[0] - 1;
        let am = mont_mul(&[a], &r2, &p, n0);
        let sq = mont_mul(&am, &am, &p, n0);
        let out = mont_mul(&sq, &[1], &p, n0)[0];
        // (p-1)^2 ≡ 1 mod p
        assert_eq!(out, 1);
    }

    #[test]
    fn parse_hex_roundtrip() {
        let v: [u64; 2] = parse_hex("0x5ed5e420ff583487");
        assert_eq!(v, [0x5ed5_e420_ff58_3487, 0]);
        let v: [u64; 2] = parse_hex("42ae6467338a04eeeb");
        assert_eq!(v, [0xae64_6733_8a04_eeeb, 0x42]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn parse_hex_overflow_panics() {
        let _: [u64; 1] = parse_hex("10000000000000000");
    }

    #[test]
    fn bits_and_bit() {
        let v: [u64; 2] = [0, 1];
        assert_eq!(bits(&v), 65);
        assert!(bit(&v, 64));
        assert!(!bit(&v, 63));
        assert!(!bit(&v, 200));
        assert_eq!(bits(&[0u64, 0]), 0);
    }

    #[test]
    fn bits_slice_matches_array_bits() {
        assert_eq!(bits_slice(&[0, 1]), bits(&[0u64, 1]));
        assert_eq!(bits_slice(&[]), 0);
        assert_eq!(bits_slice(&[0, 0, 0]), 0);
        assert_eq!(bits_slice(&[0x8000_0000_0000_0000]), 64);
        assert_eq!(bits_slice(&[u64::MAX, u64::MAX, 1]), 129);
    }

    #[test]
    fn window_extracts_digits() {
        let v = [0xfedc_ba98_7654_3210u64, 0x0123_4567_89ab_cdefu64];
        // Aligned nibbles read straight out of the hex digits.
        assert_eq!(window(&v, 0, 4), 0x0);
        assert_eq!(window(&v, 4, 4), 0x1);
        assert_eq!(window(&v, 60, 4), 0xf);
        assert_eq!(window(&v, 64, 4), 0xf);
        assert_eq!(window(&v, 124, 4), 0x0);
        // Cross-limb window: bits 62..67 = top two bits of limb0 (11) plus
        // low three bits of limb1 (111) -> 0b11111.
        assert_eq!(window(&v, 62, 5), 0b11111);
        // Past the end: zero-padded.
        assert_eq!(window(&v, 128, 4), 0);
        assert_eq!(window(&v, 120, 8), 0x01);
        // Reference check against per-bit extraction for many positions.
        for pos in 0..130 {
            for width in [1usize, 2, 3, 5, 7, 8] {
                let mut expect = 0usize;
                for k in (0..width).rev() {
                    let b = pos + k;
                    let limb = b / 64;
                    let set = limb < v.len() && (v[limb] >> (b % 64)) & 1 == 1;
                    expect = (expect << 1) | usize::from(set);
                }
                assert_eq!(window(&v, pos, width), expect, "pos={pos} width={width}");
            }
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let v: [u64; 2] = [0x0123_4567_89ab_cdef, 0xfeed];
        let b = to_bytes_be(&v);
        assert_eq!(b.len(), 16);
        assert_eq!(from_bytes_be::<2>(&b), Some(v));
        // short input zero-pads
        assert_eq!(from_bytes_be::<2>(&[1]), Some([1, 0]));
        // long input rejected
        assert_eq!(from_bytes_be::<1>(&[0; 9]), None);
    }

    #[test]
    fn shr1_and_sub_u64() {
        let v: [u64; 2] = [1, 1];
        assert_eq!(shr1(&v), [0x8000_0000_0000_0000, 0]);
        assert_eq!(sub_u64(&[0, 1], 1), [u64::MAX, 0]);
        assert_eq!(add_u64(&[u64::MAX, 0], 1), [0, 1]);
    }

    #[test]
    fn compute_r_small() {
        // p = 97: 2^64 mod 97
        let p: [u64; 1] = [97];
        let r = compute_r(&p);
        let expect = ((1u128 << 64) % 97) as u64;
        assert_eq!(r[0], expect);
        let r2 = compute_r2(&p);
        let expect2 = {
            let r128 = (1u128 << 64) % 97;
            ((r128 * r128) % 97) as u64
        };
        assert_eq!(r2[0], expect2);
    }
}
