//! Quadratic extension `F_{p²} = F_p[i]/(i² + 1)`.
//!
//! Valid whenever `p ≡ 3 (mod 4)` (then `-1` is a quadratic non-residue, so
//! `i² + 1` is irreducible). All the supersingular-curve fields in
//! `dlr-curve` satisfy this; the constructor asserts it.
//!
//! This is the field where the Tate pairing of the Type-1 curve takes its
//! values (embedding degree 2): `GT ⊂ F_{p²}*` is the order-`r` subgroup.

use crate::field::{FieldElement, PrimeField};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element `c0 + c1·i` of `F_{p²}`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub struct Fp2<F: PrimeField> {
    /// Real part.
    pub c0: F,
    /// Imaginary part (coefficient of `i`).
    pub c1: F,
}

impl<F: PrimeField> Fp2<F> {
    /// Construct from components.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the base modulus is not `3 (mod 4)`.
    pub fn new(c0: F, c1: F) -> Self {
        debug_assert!(F::modulus_is_3_mod_4(), "Fp2 tower requires p ≡ 3 (mod 4)");
        Self { c0, c1 }
    }

    /// Embed a base-field element.
    pub fn from_base(c0: F) -> Self {
        Self::new(c0, F::zero())
    }

    /// The element `i` (a square root of `-1`).
    pub fn i() -> Self {
        Self::new(F::zero(), F::one())
    }

    /// Complex conjugate `c0 - c1·i`. This is also the Frobenius
    /// endomorphism `x ↦ x^p` (since `i^p = -i` for `p ≡ 3 (mod 4)`), and
    /// the inverse of a norm-1 ("unitary") element.
    pub fn conjugate(&self) -> Self {
        Self {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// Field norm `N(x) = x · x^p = c0² + c1² ∈ F_p`. Both squares are
    /// accumulated unreduced; one reduction total.
    pub fn norm(&self) -> F {
        F::wide_reduce(F::wide_add(self.c0.square_wide(), self.c1.square_wide()))
    }

    /// True iff `N(x) = 1`, i.e. `x` lies in the kernel of the norm map —
    /// the cyclotomic subgroup of order `p + 1` containing `GT`.
    pub fn is_unitary(&self) -> bool {
        self.norm() == F::one()
    }

    /// Fast inverse for unitary elements (conjugation). Callers must ensure
    /// `self` is unitary; debug builds assert it.
    pub fn unitary_inverse(&self) -> Self {
        debug_assert!(self.is_unitary());
        self.conjugate()
    }

    /// Fully-reduced schoolbook/Karatsuba multiplication — the reference
    /// implementation the lazy-reduction paths (`square`, [`Fp2::norm`],
    /// [`Fp2::sum_of_products`]) are differentially tested against. Every
    /// base-field product is reduced eagerly.
    pub fn mul_reduced_reference(&self, rhs: &Self) -> Self {
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let s = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Self {
            c0: v0 - v1,
            c1: s - v0 - v1,
        }
    }

    /// Lazy inner product `Σ aᵢ·bᵢ` over `F_{p²}`: all `3n` base-field
    /// products are accumulated unreduced and each output component pays a
    /// **single** Montgomery reduction, instead of the `2n` reductions plus
    /// `n−1` reduced additions of the term-by-term path. Exact: returns the
    /// same canonical element as `zip(a, b).map(|x, y| x * y).sum()`.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different lengths.
    pub fn sum_of_products(a: &[Self], b: &[Self]) -> Self {
        assert_eq!(a.len(), b.len(), "sum_of_products length mismatch");
        let mut acc0 = F::wide_zero();
        let mut acc1 = F::wide_zero();
        for (x, y) in a.iter().zip(b.iter()) {
            let v0 = x.c0.mul_wide(&y.c0);
            let v1 = x.c1.mul_wide(&y.c1);
            let s = (x.c0 + x.c1).mul_wide(&(y.c0 + y.c1));
            acc0 = F::wide_sub(F::wide_add(acc0, v0), v1);
            acc1 = F::wide_sub(F::wide_sub(F::wide_add(acc1, s), v0), v1);
        }
        Self {
            c0: F::wide_reduce(acc0),
            c1: F::wide_reduce(acc1),
        }
    }
}

impl<F: PrimeField> Add for Fp2<F> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl<F: PrimeField> Sub for Fp2<F> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl<F: PrimeField> Neg for Fp2<F> {
    type Output = Self;
    fn neg(self) -> Self {
        Self {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl<F: PrimeField> Mul for Fp2<F> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Eager Karatsuba: (a0 + a1 i)(b0 + b1 i), i² = -1, three reduced
        // base-field products. A lazy-reduction variant (three `mul_wide`
        // products, two SOS reductions) was measured *slower* for a single
        // product at both 2 and 8 limbs: the m²-complement subtractions walk
        // a 2L-limb accumulator twice and the separate reduction pass spills
        // to memory, while the interleaved CIOS reduction stays in
        // registers. Deferred accumulation only pays when several products
        // share one reduction — see [`Fp2::sum_of_products`], [`Fp2::norm`]
        // and the doubling inside `square`.
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let s = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Self {
            c0: v0 - v1,
            c1: s - v0 - v1,
        }
    }
}

impl<F: PrimeField> AddAssign for Fp2<F> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<F: PrimeField> SubAssign for Fp2<F> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<F: PrimeField> MulAssign for Fp2<F> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<F: PrimeField> FieldElement for Fp2<F> {
    fn zero() -> Self {
        Self {
            c0: F::zero(),
            c1: F::zero(),
        }
    }
    fn one() -> Self {
        Self {
            c0: F::one(),
            c1: F::zero(),
        }
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }
    fn square(&self) -> Self {
        // (a + bi)² = (a+b)(a-b) + 2ab·i — two base multiplications. The
        // doubling of ab happens on the unreduced accumulator, so each
        // component pays exactly one reduction.
        let c0 = (self.c0 + self.c1) * (self.c0 - self.c1);
        let ab = self.c0.mul_wide(&self.c1);
        let c1 = F::wide_reduce(F::wide_add(ab, ab));
        Self { c0, c1 }
    }
    fn inverse(&self) -> Option<Self> {
        let n = self.norm();
        let ninv = n.inverse()?;
        Some(Self {
            c0: self.c0 * ninv,
            c1: -(self.c1 * ninv),
        })
    }
    fn random<R: rand::RngCore + ?Sized>(rng: &mut R) -> Self {
        Self {
            c0: F::random(rng),
            c1: F::random(rng),
        }
    }
    fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = self.c0.to_bytes_be();
        out.extend_from_slice(&self.c1.to_bytes_be());
        out
    }
    fn from_bytes_be(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 2 * F::byte_len() {
            return None;
        }
        let (b0, b1) = bytes.split_at(F::byte_len());
        Some(Self {
            c0: F::from_bytes_be(b0)?,
            c1: F::from_bytes_be(b1)?,
        })
    }
    fn byte_len() -> usize {
        2 * F::byte_len()
    }
}

impl<F: PrimeField> crate::erase::Erase for Fp2<F>
where
    F: crate::erase::Erase,
{
    fn erase(&mut self) {
        self.c0.erase();
        self.c1.erase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    crate::define_prime_field!(
        /// Test field with p = 1000003 ≡ 3 (mod 4).
        pub struct FSmall, 1, "0xf4243"
    );

    type F2 = Fp2<FSmall>;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(F2::i() * F2::i(), -F2::one());
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..40 {
            let a = F2::random(&mut r);
            let b = F2::random(&mut r);
            let c = F2::random(&mut r);
            assert_eq!(a + b, b + a);
            assert_eq!(a * b, b * a);
            assert_eq!(a * (b * c), (a * b) * c);
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), F2::one());
            }
        }
        assert!(F2::zero().inverse().is_none());
    }

    #[test]
    fn conjugate_is_frobenius() {
        let mut r = rng();
        let a = F2::random(&mut r);
        let p = FSmall::MODULUS;
        assert_eq!(a.pow_vartime(&p), a.conjugate());
        // conj is an automorphism
        let b = F2::random(&mut r);
        assert_eq!((a * b).conjugate(), a.conjugate() * b.conjugate());
    }

    #[test]
    fn norm_multiplicative() {
        let mut r = rng();
        let a = F2::random(&mut r);
        let b = F2::random(&mut r);
        assert_eq!((a * b).norm(), a.norm() * b.norm());
    }

    #[test]
    fn unitary_subgroup() {
        let mut r = rng();
        let a = F2::random(&mut r);
        if a.is_zero() {
            return;
        }
        // x^{p-1} = conj(x)/x is always unitary
        let u = a.conjugate() * a.inverse().unwrap();
        assert!(u.is_unitary());
        assert_eq!(u.unitary_inverse() * u, F2::one());
    }

    #[test]
    fn multiplicative_order_divides_p2_minus_1() {
        let mut r = rng();
        let a = F2::random(&mut r);
        if a.is_zero() {
            return;
        }
        // p² - 1 for p = 1000003: compute via u128, fits in 64 bits? p² ≈ 10^12 — fits u64.
        let p = FSmall::MODULUS[0];
        let e = p * p - 1;
        assert_eq!(a.pow_vartime(&[e]), F2::one());
    }

    #[test]
    fn lazy_mul_matches_reduced_reference() {
        let mut r = rng();
        let mut pool: Vec<F2> = (0..24).map(|_| F2::random(&mut r)).collect();
        // Edge values: 0, 1, i, p-1 components in every combination.
        let pm1 = -FSmall::one();
        for &x in &[FSmall::zero(), FSmall::one(), pm1] {
            for &y in &[FSmall::zero(), FSmall::one(), pm1] {
                pool.push(F2::new(x, y));
            }
        }
        for a in &pool {
            for b in &pool {
                assert_eq!(*a * *b, a.mul_reduced_reference(b));
            }
            assert_eq!(a.square(), a.mul_reduced_reference(a));
            assert_eq!(a.norm(), a.c0 * a.c0 + a.c1 * a.c1);
        }
    }

    #[test]
    fn sum_of_products_matches_term_by_term() {
        let mut r = rng();
        for n in [0usize, 1, 2, 7, 33] {
            let a: Vec<F2> = (0..n).map(|_| F2::random(&mut r)).collect();
            let b: Vec<F2> = (0..n).map(|_| F2::random(&mut r)).collect();
            let expect = a
                .iter()
                .zip(b.iter())
                .fold(F2::zero(), |acc, (x, y)| acc + x.mul_reduced_reference(y));
            assert_eq!(F2::sum_of_products(&a, &b), expect);
        }
        // Edge-valued long accumulation: stresses the overflow limb.
        let pm1 = F2::new(-FSmall::one(), -FSmall::one());
        let a = vec![pm1; 257];
        let b = vec![pm1; 257];
        let expect = a
            .iter()
            .zip(b.iter())
            .fold(F2::zero(), |acc, (x, y)| acc + x.mul_reduced_reference(y));
        assert_eq!(F2::sum_of_products(&a, &b), expect);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        let a = F2::random(&mut r);
        let b = a.to_bytes_be();
        assert_eq!(b.len(), F2::byte_len());
        assert_eq!(F2::from_bytes_be(&b), Some(a));
        assert_eq!(F2::from_bytes_be(&b[1..]), None);
    }
}
