//! Variable-width unsigned big integers (`Vec<u64>`, little-endian limbs).
//!
//! The fixed-width [`limbs`](crate::limbs) module covers field arithmetic;
//! this module covers the *derivation of constants* — pairing exponents
//! like `(q⁴ − q² + 1)/r`, cofactors, Frobenius exponents `(q − 1)/6` —
//! computed at runtime from the curve moduli rather than hardcoded (a
//! transcription error in a 1500-bit hex constant is invisible; a formula
//! is checkable).
//!
//! Not performance-sensitive: every function here runs a handful of times
//! per process.

/// Remove leading zero limbs (canonical form; zero is the empty vec).
pub fn normalize(mut a: Vec<u64>) -> Vec<u64> {
    while a.last() == Some(&0) {
        a.pop();
    }
    a
}

/// Compare two canonical-or-not big integers.
pub fn cmp(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    let la = a.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
    let lb = b.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
    if la != lb {
        return la.cmp(&lb);
    }
    for i in (0..la).rev() {
        if a[i] != b[i] {
            return a[i].cmp(&b[i]);
        }
    }
    core::cmp::Ordering::Equal
}

/// `a + b`.
pub fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len().max(b.len());
    let mut out = Vec::with_capacity(n + 1);
    let mut carry = 0u128;
    for i in 0..n {
        let s = carry
            + *a.get(i).unwrap_or(&0) as u128
            + *b.get(i).unwrap_or(&0) as u128;
        out.push(s as u64);
        carry = s >> 64;
    }
    if carry > 0 {
        out.push(carry as u64);
    }
    normalize(out)
}

/// `a - b`.
///
/// # Panics
///
/// Panics if `b > a`.
#[allow(clippy::needless_range_loop)]
pub fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    assert!(cmp(a, b) != core::cmp::Ordering::Less, "bignum underflow");
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i128;
    for i in 0..a.len() {
        let d = a[i] as i128 - *b.get(i).unwrap_or(&0) as i128 - borrow;
        if d < 0 {
            out.push((d + (1i128 << 64)) as u64);
            borrow = 1;
        } else {
            out.push(d as u64);
            borrow = 0;
        }
    }
    assert_eq!(borrow, 0);
    normalize(out)
}

/// `a · b` (schoolbook).
pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    normalize(out)
}

/// `(a / d, a mod d)` for a small divisor.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn div_small(a: &[u64], d: u64) -> (Vec<u64>, u64) {
    assert!(d != 0, "division by zero");
    let mut out = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | a[i] as u128;
        out[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    (normalize(out), rem as u64)
}

/// `(a / b, a mod b)` via binary long division.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn div_rem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let b = normalize(b.to_vec());
    assert!(!b.is_empty(), "division by zero");
    let a = normalize(a.to_vec());
    if cmp(&a, &b) == core::cmp::Ordering::Less {
        return (Vec::new(), a);
    }
    let bits = a.len() * 64;
    let mut q = vec![0u64; a.len()];
    let mut rem: Vec<u64> = Vec::new();
    for i in (0..bits).rev() {
        // rem = rem << 1 | bit_i(a)
        rem = shl1(&rem);
        if (a[i / 64] >> (i % 64)) & 1 == 1 {
            if rem.is_empty() {
                rem.push(1);
            } else {
                rem[0] |= 1;
            }
        }
        if cmp(&rem, &b) != core::cmp::Ordering::Less {
            rem = sub(&rem, &b);
            q[i / 64] |= 1 << (i % 64);
        }
    }
    (normalize(q), rem)
}

fn shl1(a: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for &w in a {
        out.push((w << 1) | carry);
        carry = w >> 63;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a^k` for small `k`.
pub fn pow(a: &[u64], k: u32) -> Vec<u64> {
    let mut out = vec![1u64];
    for _ in 0..k {
        out = mul(&out, a);
    }
    out
}

/// Parse little-endian limbs from a fixed array.
pub fn from_limbs(limbs: &[u64]) -> Vec<u64> {
    normalize(limbs.to_vec())
}

/// Construct from a `u128`.
pub fn from_u128(v: u128) -> Vec<u64> {
    normalize(vec![v as u64, (v >> 64) as u64])
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![u64::MAX, 7, 1];
        let b = vec![5, u64::MAX];
        let s = add(&a, &b);
        assert_eq!(sub(&s, &b), a);
        assert_eq!(sub(&s, &a), normalize(b));
    }

    #[test]
    fn mul_matches_u128() {
        for (x, y) in [(3u128, 5u128), (u64::MAX as u128, u64::MAX as u128), (1 << 100, 7)] {
            let p = mul(&from_u128(x), &from_u128(y));
            // compare against 256-bit schoolbook by splitting
            let expect = x.checked_mul(y);
            if let Some(e) = expect {
                assert_eq!(p, from_u128(e));
            }
        }
    }

    #[test]
    fn div_small_exact_and_remainder() {
        let a = mul(&from_u128(333_333_333_333_333_333_334), &[3]);
        let (q, r) = div_small(&a, 3);
        assert_eq!(r, 0);
        assert_eq!(mul(&q, &[3]), a);
        let (q, r) = div_small(&a, 7);
        assert_eq!(add(&mul(&q, &[7]), &[r]), a);
    }

    #[test]
    fn div_rem_reconstructs() {
        let a = vec![0xdead_beef, 0xcafe_f00d, 0x1234];
        let b = vec![0xffff_0001, 0x3];
        let (q, r) = div_rem(&a, &b);
        assert_eq!(cmp(&r, &b), Ordering::Less);
        assert_eq!(add(&mul(&q, &b), &r), normalize(a));
    }

    #[test]
    fn div_rem_small_cases() {
        assert_eq!(div_rem(&[7], &[7]), (vec![1], vec![]));
        assert_eq!(div_rem(&[6], &[7]), (vec![], vec![6]));
        assert_eq!(div_rem(&[], &[7]), (vec![], vec![]));
    }

    #[test]
    fn pow_small() {
        assert_eq!(pow(&[3], 4), vec![81]);
        assert_eq!(pow(&[0x1_0000_0000], 2), vec![0, 1]);
        assert_eq!(pow(&[5], 0), vec![1]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        sub(&[1], &[2]);
    }
}
