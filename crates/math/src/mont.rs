//! Runtime Montgomery arithmetic context.
//!
//! The compile-time path (the [`define_prime_field!`](crate::define_prime_field)
//! macro) bakes Montgomery constants into each field type. This module
//! provides the same arithmetic for moduli only known at runtime — used by
//! the Miller–Rabin primality test that validates the hardcoded curve
//! parameters, and by parameter-generation tooling.

use crate::limbs;

/// Montgomery context for an odd modulus held in `L` little-endian limbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontCtx<const L: usize> {
    modulus: [u64; L],
    n0inv: u64,
    r: [u64; L],
    r2: [u64; L],
}

impl<const L: usize> MontCtx<L> {
    /// Create a context for the given odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even or zero.
    pub fn new(modulus: [u64; L]) -> Self {
        assert!(!limbs::is_zero(&modulus), "modulus must be nonzero");
        let n0inv = limbs::mont_n0inv(modulus[0]);
        let r = limbs::compute_r(&modulus);
        let r2 = limbs::compute_r2(&modulus);
        Self {
            modulus,
            n0inv,
            r,
            r2,
        }
    }

    /// The modulus limbs.
    pub fn modulus(&self) -> &[u64; L] {
        &self.modulus
    }

    /// Montgomery form of 1.
    pub fn one(&self) -> [u64; L] {
        self.r
    }

    /// Convert a reduced integer into Montgomery form.
    pub fn to_mont(&self, a: &[u64; L]) -> [u64; L] {
        limbs::mont_mul(a, &self.r2, &self.modulus, self.n0inv)
    }

    /// Convert out of Montgomery form into a canonical reduced integer.
    pub fn from_mont(&self, a: &[u64; L]) -> [u64; L] {
        let mut one = [0u64; L];
        one[0] = 1;
        limbs::mont_mul(a, &one, &self.modulus, self.n0inv)
    }

    /// Montgomery product.
    pub fn mul(&self, a: &[u64; L], b: &[u64; L]) -> [u64; L] {
        limbs::mont_mul(a, b, &self.modulus, self.n0inv)
    }

    /// Modular exponentiation of a Montgomery-form base by a plain integer
    /// exponent (variable time in the exponent).
    pub fn pow(&self, base: &[u64; L], exp: &[u64; L]) -> [u64; L] {
        let nbits = limbs::bits(exp);
        let mut acc = self.one();
        let mut i = nbits;
        while i > 0 {
            i -= 1;
            acc = self.mul(&acc, &acc);
            if limbs::bit(exp, i) {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }
}

/// Deterministic Miller–Rabin witnesses sufficient for all `n < 3.3 × 10^24`
/// and a strong randomized-quality battery for larger inputs.
const WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Miller–Rabin primality test over `L`-limb integers.
///
/// Deterministic for 64-bit inputs; for larger inputs the fixed witness
/// battery gives error probability far below `2^{-80}` for the structured
/// parameters this repo validates (it is a *validation* tool, not an
/// adversarial-input primality oracle).
pub fn is_probable_prime<const L: usize>(n: &[u64; L]) -> bool {
    // Small / even cases.
    if limbs::is_zero(n) {
        return false;
    }
    if n[0] & 1 == 0 {
        // The only even prime is 2.
        let mut two = [0u64; L];
        two[0] = 2;
        return limbs::cmp(n, &two) == 0;
    }
    let mut one = [0u64; L];
    one[0] = 1;
    if limbs::cmp(n, &one) == 0 {
        return false;
    }

    // Trial division by the witness primes themselves.
    for &w in &WITNESSES {
        let mut wl = [0u64; L];
        wl[0] = w;
        if limbs::cmp(n, &wl) == 0 {
            return true;
        }
        if mod_small(n, w) == 0 {
            return false;
        }
    }

    // Write n-1 = d · 2^s with d odd.
    let n_minus_1 = limbs::sub_u64(n, 1);
    let mut d = n_minus_1;
    let mut s = 0u32;
    while d[0] & 1 == 0 {
        d = limbs::shr1(&d);
        s += 1;
    }

    let ctx = MontCtx::new(*n);
    let one_m = ctx.one();
    let neg_one = limbs::sub_mod(&[0u64; L], &one_m, n);

    'witness: for &w in &WITNESSES {
        let mut wl = [0u64; L];
        wl[0] = w;
        let a = ctx.to_mont(&wl);
        let mut x = ctx.pow(&a, &d);
        if limbs::cmp(&x, &one_m) == 0 || limbs::cmp(&x, &neg_one) == 0 {
            continue;
        }
        for _ in 0..s.saturating_sub(1) {
            x = ctx.mul(&x, &x);
            if limbs::cmp(&x, &neg_one) == 0 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Remainder of an `L`-limb integer modulo a small `u64` divisor.
fn mod_small<const L: usize>(n: &[u64; L], m: u64) -> u64 {
    let mut rem = 0u128;
    for i in (0..L).rev() {
        rem = ((rem << 64) | n[i] as u128) % m as u128;
    }
    rem as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mont_ctx_roundtrip() {
        let ctx = MontCtx::new([97u64]);
        for v in 0..97u64 {
            let m = ctx.to_mont(&[v]);
            assert_eq!(ctx.from_mont(&m), [v]);
        }
    }

    #[test]
    fn pow_small_field() {
        let ctx = MontCtx::new([97u64]);
        let b = ctx.to_mont(&[3]);
        // 3^96 ≡ 1 (Fermat)
        let x = ctx.pow(&b, &[96]);
        assert_eq!(ctx.from_mont(&x), [1]);
        // 3^5 = 243 = 2*97 + 49
        let x = ctx.pow(&b, &[5]);
        assert_eq!(ctx.from_mont(&x), [49]);
    }

    #[test]
    fn primality_small() {
        let primes = [2u64, 3, 5, 7, 61, 97, (1 << 61) - 1, 0xffff_ffff_ffff_ffc5];
        for p in primes {
            assert!(is_probable_prime(&[p]), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 9, 91, 561, 6601, (1 << 61) + 1];
        for c in composites {
            assert!(!is_probable_prime(&[c]), "{c} should be composite");
        }
    }

    #[test]
    fn primality_carmichael_strong() {
        // 3215031751 is the smallest strong pseudoprime to bases 2,3,5,7.
        assert!(!is_probable_prime(&[3_215_031_751u64]));
    }

    #[test]
    fn primality_two_limbs() {
        // TOY curve parameters from the generator run.
        let r: [u64; 2] = crate::limbs::parse_hex("0x5ed5e420ff583487");
        let p: [u64; 2] = crate::limbs::parse_hex("0x42ae6467338a04eeeb");
        assert!(is_probable_prime(&r));
        assert!(is_probable_prime(&p));
        // p = 0xb4 * r - 1
        let mut acc = [0u64; 2];
        for _ in 0..0xb4 {
            acc = limbs::add_carry(&acc, &r).0;
        }
        acc = limbs::sub_u64(&acc, 1);
        assert_eq!(acc, p);
    }

    #[test]
    fn mod_small_matches_u128() {
        let n: [u64; 2] = [0xdead_beef_cafe_f00d, 0x1234_5678];
        let big = (0x1234_5678u128 << 64) | 0xdead_beef_cafe_f00d;
        for m in [3u64, 7, 97, 1_000_003] {
            assert_eq!(mod_small(&n, m) as u128, big % m as u128);
        }
    }
}
