//! Secure erasure of secret state.
//!
//! The refresh protocol of the paper (Def. 3.1) requires that "the old
//! secret key share has been **erased** from the secret memory" when a
//! refresh completes — leakage functions chosen in period `t+1` must not be
//! able to see period-`t` shares. [`Erase`] provides best-effort zeroisation
//! that the optimiser is not allowed to elide (volatile writes followed by a
//! compiler fence), mirroring what the `zeroize` crate does, built in-repo.

use core::sync::atomic::{compiler_fence, Ordering};

/// Types whose in-memory representation can be overwritten with zeros.
pub trait Erase {
    /// Overwrite the secret content with zeros.
    ///
    /// After `erase` returns the value must compare equal to a
    /// default/zero value of its type and the previous bytes must not be
    /// recoverable from this allocation.
    fn erase(&mut self);
}

/// Volatile-zero a limb array (helper for field-type macro impls).
pub fn erase_limbs(limbs: &mut [u64]) {
    for l in limbs.iter_mut() {
        // SAFETY: `l` is a valid, aligned, exclusive reference.
        unsafe { core::ptr::write_volatile(l, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Volatile-zero a byte slice.
pub fn erase_bytes(bytes: &mut [u8]) {
    for b in bytes.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference.
        unsafe { core::ptr::write_volatile(b, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

impl Erase for u64 {
    fn erase(&mut self) {
        // SAFETY: exclusive reference.
        unsafe { core::ptr::write_volatile(self, 0) };
        compiler_fence(Ordering::SeqCst);
    }
}

impl Erase for u8 {
    fn erase(&mut self) {
        // SAFETY: exclusive reference.
        unsafe { core::ptr::write_volatile(self, 0) };
        compiler_fence(Ordering::SeqCst);
    }
}

impl<T: Erase> Erase for Vec<T> {
    fn erase(&mut self) {
        for item in self.iter_mut() {
            item.erase();
        }
        // Note: the capacity is retained; elements are zeroed in place.
    }
}

impl<T: Erase, const N: usize> Erase for [T; N] {
    fn erase(&mut self) {
        for item in self.iter_mut() {
            item.erase();
        }
    }
}

impl<T: Erase> Erase for Option<T> {
    fn erase(&mut self) {
        if let Some(v) = self.as_mut() {
            v.erase();
        }
        *self = None;
    }
}

impl<A: Erase, B: Erase> Erase for (A, B) {
    fn erase(&mut self) {
        self.0.erase();
        self.1.erase();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erase_bytes_zeroes() {
        let mut v = vec![1u8, 2, 3];
        v.erase();
        assert_eq!(v, vec![0, 0, 0]);
    }

    #[test]
    fn erase_limb_array() {
        let mut v = [u64::MAX; 4];
        v.erase();
        assert_eq!(v, [0; 4]);
    }

    #[test]
    fn erase_option_clears() {
        let mut v = Some(7u64);
        v.erase();
        assert!(v.is_none());
    }

    #[test]
    fn erase_tuple() {
        let mut v = (1u64, vec![9u8; 2]);
        v.erase();
        assert_eq!(v.0, 0);
        assert_eq!(v.1, vec![0, 0]);
    }
}
