//! Property-based tests for the BLS12-381 backend: tower-field algebra,
//! group laws, pairing bilinearity under random inputs, decoder totality.

use dlr_bls12::fields::{fq2_sqrt, Fq2};
use dlr_bls12::fq12::Fq12;
use dlr_bls12::fq6::Fq6;
use dlr_bls12::pairing::{pairing, Gt};
use dlr_bls12::params::Fr;
use dlr_bls12::{Bls12_381, G1, G2};
use dlr_curve::Group;
use dlr_math::{FieldElement, PrimeField};
use proptest::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    // pairing cases are expensive; keep counts low
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fq6_field_axioms(seed in any::<u64>()) {
        let mut r = rng(seed);
        let a = Fq6::random(&mut r);
        let b = Fq6::random(&mut r);
        let c = Fq6::random(&mut r);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fq6::one());
        }
    }

    #[test]
    fn fq12_field_axioms(seed in any::<u64>()) {
        let mut r = rng(seed);
        let a = Fq12::random(&mut r);
        let b = Fq12::random(&mut r);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a.square(), a * a);
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse().unwrap(), Fq12::one());
        }
        prop_assert_eq!((a * b).conjugate_q6(), a.conjugate_q6() * b.conjugate_q6());
    }

    #[test]
    fn fq2_sqrt_total(seed in any::<u64>()) {
        let mut r = rng(seed);
        let a = Fq2::random(&mut r);
        let sq = a.square();
        let root = fq2_sqrt(&sq).expect("squares have roots");
        prop_assert!(root == a || root == -a);
    }

    #[test]
    fn g1_g2_scalar_laws(seed in any::<u64>(), x in any::<u64>(), y in any::<u64>()) {
        let mut r = rng(seed);
        let p = G1::random(&mut r);
        let q = G2::random(&mut r);
        let s = Fr::from_bytes_be_reduced(&x.to_be_bytes());
        let t = Fr::from_bytes_be_reduced(&y.to_be_bytes());
        prop_assert_eq!(p.pow(&s).op(&p.pow(&t)), p.pow(&(s + t)));
        prop_assert_eq!(q.pow(&s).pow(&t), q.pow(&(s * t)));
    }

    #[test]
    fn pairing_bilinear(seed in any::<u64>(), x in 1u64..1000, y in 1u64..1000) {
        let mut r = rng(seed);
        let p = G1::random(&mut r);
        let q = G2::random(&mut r);
        let s = Fr::from_u64(x);
        let t = Fr::from_u64(y);
        prop_assert_eq!(
            Bls12_381::pair(&p.pow(&s), &q.pow(&t)),
            pairing(&p, &q).pow(&(s * t))
        );
    }

    #[test]
    fn decoders_total(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = G1::from_bytes(&bytes);
        let _ = G2::from_bytes(&bytes);
        let _ = Gt::from_bytes(&bytes);
        let _ = Fq12::from_bytes_be(&bytes);
    }
}
