//! The payoff of the asymmetric `Pairing` trait: the *entire* DLR scheme
//! stack — Πss sharing, HPSKE, the two-party decryption and refresh
//! protocols, DIBE and CCA2 — runs unmodified over BLS12-381, the Type-3
//! production instantiation the paper's reproduction hint points at.
//!
//! These run with deliberately small (n, λ) so the whole file stays in the
//! tens-of-seconds range — the affine-over-`F_{q¹²}` pairing favours
//! transparency over speed.

use dlr_bls12::pairing::Bls12_381;
use dlr_core::params::SchemeParams;
use dlr_core::{cca2, dibe, dlr, ibe, kem};
use dlr_curve::{Group, Pairing};
use dlr_hash::ots::Winternitz;
use rand::SeedableRng;

type E = Bls12_381;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn small_params() -> SchemeParams {
    // n = 8, λ = 16 over the 255-bit scalar field: κ = 2, ℓ = 14
    SchemeParams::derive::<<E as Pairing>::Scalar>(8, 16)
}

#[test]
fn dlr_over_bls12_full_period() {
    let mut r = rng(1);
    let params = small_params();
    let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut r);
    let mut p1 = dlr::Party1::new(pk.clone(), s1);
    let mut p2 = dlr::Party2::new(pk.clone(), s2);

    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = dlr::encrypt(&pk, &m, &mut r);
    assert_eq!(dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);

    dlr::refresh_local(&mut p1, &mut p2, &mut r).unwrap();
    assert_eq!(dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut r).unwrap(), m);
}

#[test]
fn hybrid_kem_over_bls12() {
    let mut r = rng(2);
    let (pk, s1, s2) = dlr::keygen::<E, _>(small_params(), &mut r);
    let mut p1 = dlr::Party1::new(pk.clone(), s1);
    let mut p2 = dlr::Party2::new(pk.clone(), s2);
    let sealed = kem::seal(&pk, b"type-3 payload", &mut r);
    assert_eq!(
        kem::open_local(&mut p1, &mut p2, &sealed, &mut r).unwrap(),
        b"type-3 payload"
    );
}

#[test]
fn dibe_over_bls12() {
    let mut r = rng(3);
    let (params, ms1, ms2) = dibe::dibe_keygen::<E, _>(small_params(), 8, &mut r);
    let mut a1 = dibe::DibeParty1::new(params.clone(), ms1);
    let mut a2 = dibe::DibeParty2::new(params.clone(), ms2);
    let (id1, id2) = dibe::idkey_local(&mut a1, &mut a2, b"alice", &mut r).unwrap();
    let mut ip1 = dibe::IdParty1::new(&params, id1);
    let mut ip2 = dibe::IdParty2::new(&params, id2);

    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = ibe::encrypt(&params, b"alice", &m, &mut r);
    assert_eq!(
        dibe::dibe_decrypt_local(&mut ip1, &mut ip2, &ct, &mut r).unwrap(),
        m
    );
}

#[test]
fn single_processor_ibe_over_bls12() {
    let mut r = rng(4);
    let (params, master) = ibe::setup::<E, _>(small_params(), 8, &mut r);
    let key = ibe::extract(&params, &master, b"bob", &mut r);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = ibe::encrypt(&params, b"bob", &m, &mut r);
    assert_eq!(ibe::decrypt(&key, &ct).unwrap(), m);
}

#[test]
#[ignore = "slow (~2 min): full CCA2 decryption = idkeygen + dibe decryption over BLS12"]
fn cca2_over_bls12() {
    let mut r = rng(5);
    let (params, ms1, ms2) = dibe::dibe_keygen::<E, _>(small_params(), 8, &mut r);
    let mut p1 = dibe::DibeParty1::new(params.clone(), ms1);
    let mut p2 = dibe::DibeParty2::new(params.clone(), ms2);
    let m = <E as Pairing>::Gt::random(&mut r);
    let ct = cca2::encrypt::<E, Winternitz<4>, _>(&params, &m, &mut r);
    assert_eq!(
        cca2::decrypt_distributed(&mut p1, &mut p2, &ct, &mut r).unwrap(),
        m
    );
}
