//! Generic short-Weierstrass arithmetic for `y² = x³ + b` (a = 0) over any
//! [`FieldElement`] — shared by G1 (over `F_q`), G2 (over `F_{q²}`) and
//! the untwisted Miller-loop points (over `F_{q¹²}`).

use dlr_math::FieldElement;

/// A Jacobian point (`z = 0` encodes infinity).
#[derive(Clone, Copy, Debug)]
pub struct JPoint<F> {
    /// Jacobian X.
    pub x: F,
    /// Jacobian Y.
    pub y: F,
    /// Jacobian Z.
    pub z: F,
}

impl<F: FieldElement> JPoint<F> {
    /// The point at infinity.
    pub fn infinity() -> Self {
        Self {
            x: F::one(),
            y: F::one(),
            z: F::zero(),
        }
    }

    /// From affine coordinates (unchecked).
    pub fn from_affine(x: F, y: F) -> Self {
        Self { x, y, z: F::one() }
    }

    /// True iff infinity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Affine coordinates, `None` at infinity.
    pub fn to_affine(&self) -> Option<(F, F)> {
        if self.is_infinity() {
            return None;
        }
        let zi = self.z.inverse().expect("nonzero z");
        let zi2 = zi.square();
        Some((self.x * zi2, self.y * zi2 * zi))
    }

    /// Point doubling (a = 0 formulas).
    pub fn double(&self) -> Self {
        if self.is_infinity() || self.y.is_zero() {
            return Self::infinity();
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let y3 = e * (d - x3) - c.double().double().double();
        let z3 = (self.y * self.z).double();
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point addition.
    pub fn add(&self, rhs: &Self) -> Self {
        if self.is_infinity() {
            return *rhs;
        }
        if rhs.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * rhs.z * z2z2;
        let s2 = rhs.y * self.z * z1z1;
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::infinity();
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Self {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Self {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }

    /// Scalar multiplication by little-endian limbs (variable time).
    pub fn mul_limbs(&self, exp: &[u64]) -> Self {
        let mut nbits = 0u32;
        for (i, w) in exp.iter().enumerate() {
            if *w != 0 {
                nbits = i as u32 * 64 + (64 - w.leading_zeros());
            }
        }
        let mut acc = Self::infinity();
        let mut i = nbits;
        while i > 0 {
            i -= 1;
            acc = acc.double();
            if (exp[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Equality as group elements (cross-multiplied).
    pub fn eq_point(&self, rhs: &Self) -> bool {
        match (self.is_infinity(), rhs.is_infinity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            _ => {
                let z1z1 = self.z.square();
                let z2z2 = rhs.z.square();
                self.x * z2z2 == rhs.x * z1z1
                    && self.y * (z2z2 * rhs.z) == rhs.y * (z1z1 * self.z)
            }
        }
    }

    /// Curve membership for `y² = x³ + b`.
    pub fn is_on_curve(&self, b: &F) -> bool {
        if self.is_infinity() {
            return true;
        }
        let z2 = self.z.square();
        let z6 = z2.square() * z2;
        self.y.square() == self.x.square() * self.x + *b * z6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Fq;
    use dlr_math::PrimeField;
    use rand::SeedableRng;

    fn b4() -> Fq {
        Fq::from_u64(4)
    }

    /// Find some point on y² = x³ + 4 over Fq by incrementing x.
    fn any_point() -> JPoint<Fq> {
        let mut x = Fq::from_u64(1);
        loop {
            let rhs = x.square() * x + b4();
            if let Some(y) = rhs.sqrt() {
                return JPoint::from_affine(x, y);
            }
            x += Fq::one();
        }
    }

    #[test]
    fn group_laws_on_g1_curve() {
        let p = any_point();
        assert!(p.is_on_curve(&b4()));
        let two_p = p.double();
        assert!(two_p.is_on_curve(&b4()));
        assert!(p.add(&p).eq_point(&two_p));
        assert!(p.add(&two_p).eq_point(&two_p.add(&p)));
        assert!(p.add(&p.neg()).is_infinity());
        // (P + 2P) + P == 2P + 2P
        assert!(p.add(&two_p).add(&p).eq_point(&two_p.double()));
    }

    #[test]
    fn mul_limbs_matches_additions(){
        let p = any_point();
        let mut acc = JPoint::infinity();
        for k in 0u64..8 {
            assert!(p.mul_limbs(&[k]).eq_point(&acc), "k={k}");
            acc = acc.add(&p);
        }
    }

    #[test]
    fn affine_roundtrip() {
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        let k = rand::Rng::gen_range(&mut r, 2u64..1000);
        let p = any_point().mul_limbs(&[k]);
        let (x, y) = p.to_affine().unwrap();
        assert!(p.eq_point(&JPoint::from_affine(x, y)));
        assert!(JPoint::<Fq>::infinity().to_affine().is_none());
    }
}
