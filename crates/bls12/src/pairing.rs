//! The BLS12-381 ate pairing `e : G1 × G2 → GT ⊂ F_{q¹²}*`.
//!
//! Implementation philosophy: *transparent over fast*. `G2` points are
//! explicitly untwisted into `E(F_{q¹²})` and the Miller loop runs with
//! plain affine arithmetic over `F_{q¹²}` — no hand-derived sparse-line
//! coefficient tables to get subtly wrong. The twist direction (M vs D)
//! is not assumed: both untwist maps are tried once and the one that lands
//! on `E : y² = x³ + 4` is cached. Denominator elimination is valid
//! because `x(ψ(Q)) ∈ F_{q⁶}` and `x(P) ∈ F_q`, so vertical-line values
//! lie in the subfield killed by `q⁶ − 1 |` final exponent.
//!
//! Final exponentiation: easy part `(q⁶−1)(q²+1)` via conjugation,
//! inversion and one `q²`-power; hard part by plain exponentiation with
//! the runtime-derived `(q⁴ − q² + 1)/r`.

use crate::fq12::Fq12;
use crate::fq6::Fq6;
use crate::groups::{G1, G2};
use crate::params::{hard_part_exponent, q_squared, r_limbs, Fq, X_ABS};
use dlr_curve::{counters, Group, GroupKind};
use dlr_math::{FieldElement, Fp2, PrimeField};
use rand::RngCore;
use std::sync::OnceLock;

/// Embed `F_q` into `F_{q¹²}`.
fn embed_fq(a: Fq) -> Fq12 {
    Fq12::from_fq6(Fq6::from_fq2(Fp2::from_base(a)))
}

/// Embed `F_{q²}` into `F_{q¹²}`.
fn embed_fq2(a: Fp2<Fq>) -> Fq12 {
    Fq12::from_fq6(Fq6::from_fq2(a))
}

/// `w ∈ F_{q¹²}`.
fn w() -> Fq12 {
    Fq12::new(Fq6::zero(), Fq6::one())
}

/// The untwist map ψ : E'(F_{q²}) → E(F_{q¹²}), with the twist direction
/// determined empirically once and cached: `true` = multiply by `w`
/// powers (D-type, ψ(x,y) = (x·w², y·w³)), `false` = divide (M-type,
/// ψ(x,y) = (x·w⁻², y·w⁻³)).
fn untwist(q: &G2) -> Option<(Fq12, Fq12)> {
    static DIRECTION: OnceLock<bool> = OnceLock::new();
    let (xq, yq) = q.to_affine()?;
    let b = embed_fq(Fq::from_u64(4));
    let w1 = w();
    let w2 = w1 * w1;
    let w3 = w2 * w1;
    let direction = *DIRECTION.get_or_init(|| {
        let x = embed_fq2(xq);
        let y = embed_fq2(yq);
        let on_curve = |x: Fq12, y: Fq12| y.square() == x.square() * x + b;
        if on_curve(x * w2, y * w3) {
            true
        } else {
            let w2i = w2.inverse().expect("nonzero");
            let w3i = w3.inverse().expect("nonzero");
            assert!(
                on_curve(x * w2i, y * w3i),
                "neither untwist direction lands on E(Fq12) — twist b' wrong?"
            );
            false
        }
    });
    let (xw, yw) = if direction {
        (w2, w3)
    } else {
        (w2.inverse().expect("nonzero"), w3.inverse().expect("nonzero"))
    };
    Some((embed_fq2(xq) * xw, embed_fq2(yq) * yw))
}

/// Affine Miller loop `f_{|x|, ψ(Q)}(P)` over `F_{q¹²}`.
fn miller_loop(p: &G1, q: &G2) -> Option<Fq12> {
    let (xp, yp) = p.to_affine()?;
    let (xp, yp) = (embed_fq(xp), embed_fq(yp));
    let (xq, yq) = untwist(q)?;

    let mut f = Fq12::one();
    let mut t: Option<(Fq12, Fq12)> = Some((xq, yq));
    let nbits = 64 - X_ABS.leading_zeros();
    let mut i = nbits - 1;
    while i > 0 {
        i -= 1;
        f = f.square();
        if let Some((xt, yt)) = t {
            if yt.is_zero() {
                t = None; // vertical tangent: subfield factor only
            } else {
                let lambda = (xt.square() * embed_fq(Fq::from_u64(3)))
                    * (yt.double()).inverse().expect("y != 0");
                let x3 = lambda.square() - xt.double();
                let y3 = lambda * (xt - x3) - yt;
                f *= yp - yt - lambda * (xp - xt);
                t = Some((x3, y3));
            }
        }
        if (X_ABS >> i) & 1 == 1 {
            if let Some((xt, yt)) = t {
                if xt == xq {
                    if yt == yq {
                        // doubling case cannot occur on the addition step
                        // for distinct multiples below the group order
                        unreachable!("T == Q mid-loop");
                    }
                    t = None; // vertical chord
                } else {
                    let lambda = (yq - yt) * (xq - xt).inverse().expect("x1 != x2");
                    let x3 = lambda.square() - xt - xq;
                    let y3 = lambda * (xt - x3) - yt;
                    f *= yp - yt - lambda * (xp - xt);
                    t = Some((x3, y3));
                }
            } else {
                t = Some((xq, yq));
            }
        }
    }
    // x is negative: ate pairing uses f^{-1}; equivalent to the q⁶
    // conjugate up to factors killed by the final exponentiation.
    Some(f.conjugate_q6())
}

/// Final exponentiation `f ↦ f^{(q¹²−1)/r}`.
pub fn final_exponentiation(f: &Fq12) -> Option<Fq12> {
    if f.is_zero() {
        return None;
    }
    // easy part: f^{(q⁶−1)(q²+1)}
    let f1 = f.conjugate_q6() * f.inverse()?;
    let f2 = f1.pow_vartime(q_squared()) * f1;
    // hard part: ^(q⁴ − q² + 1)/r — f2 is unitary after the easy part, so
    // cyclotomic squarings apply
    Some(f2.pow_vartime_unitary(hard_part_exponent()))
}

/// The ate pairing. Returns the identity when either input is the point
/// at infinity.
pub fn pairing(p: &G1, q: &G2) -> Gt {
    counters::count_pairing();
    let f = match miller_loop(p, q) {
        Some(f) if !f.is_zero() => f,
        _ => return Gt(Fq12::one()),
    };
    Gt(final_exponentiation(&f).expect("nonzero"))
}

/// The target group `GT ⊂ F_{q¹²}*` (unitary order-`r` elements).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Gt(pub(crate) Fq12);

impl Default for Gt {
    fn default() -> Self {
        Gt(Fq12::one())
    }
}

impl Gt {
    /// The underlying `F_{q¹²}` value.
    pub fn as_fq12(&self) -> &Fq12 {
        &self.0
    }

    /// Process-wide fixed-base tables for the generator.
    fn generator_table() -> &'static dlr_curve::FixedBase<Gt> {
        static TABLE: OnceLock<dlr_curve::FixedBase<Gt>> = OnceLock::new();
        TABLE.get_or_init(|| dlr_curve::FixedBase::new(&Self::generator()))
    }
}

impl Group for Gt {
    type Scalar = crate::params::Fr;
    const NAME: &'static str = "BLS12-GT";
    const KIND: GroupKind = GroupKind::Target;

    fn identity() -> Self {
        Gt(Fq12::one())
    }

    fn generator() -> Self {
        static GEN: OnceLock<Gt> = OnceLock::new();
        *GEN.get_or_init(|| {
            let gt = pairing(&G1::generator(), &G2::generator());
            assert!(!gt.is_identity(), "degenerate pairing");
            gt
        })
    }

    fn generator_pow(exp: &Self::Scalar) -> Self {
        Self::generator_table().pow_fixed(exp)
    }

    fn warm_generator_tables() {
        let _ = Self::generator_table();
    }

    fn raw_op(&self, rhs: &Self) -> Self {
        Gt(self.0 * rhs.0)
    }

    fn raw_double(&self) -> Self {
        Gt(self.0.cyclotomic_square())
    }

    fn inverse(&self) -> Self {
        Gt(self.0.unitary_inverse())
    }

    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        loop {
            let f = Fq12::random(rng);
            if f.is_zero() {
                continue;
            }
            if let Some(g) = final_exponentiation(&f) {
                if g != Fq12::one() {
                    return Gt(g);
                }
            }
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let f = Fq12::from_bytes_be(bytes)?;
        f.is_unitary().then_some(Gt(f))
    }

    fn byte_len() -> usize {
        Fq12::byte_len()
    }

    fn is_in_subgroup(&self) -> bool {
        self.0.is_unitary() && self.pow_vartime_limbs(r_limbs()).is_identity()
    }
}

/// The engine type: BLS12-381 as an asymmetric (Type-3) pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bls12_381;

impl Bls12_381 {
    /// The pairing map.
    pub fn pair(p: &G1, q: &G2) -> Gt {
        pairing(p, q)
    }
}

impl dlr_curve::Pairing for Bls12_381 {
    type Scalar = crate::params::Fr;
    type G1 = G1;
    type G2 = G2;
    type Gt = Gt;
    // No cached-line form on this backend yet: preparation is the point
    // itself and the default multi_pair/pairing_product folds apply.
    type Prepared = G1;
    const NAME: &'static str = "BLS12-381";

    fn pair(p: &G1, q: &G2) -> Gt {
        pairing(p, q)
    }

    fn pair_generators() -> Gt {
        Gt::generator()
    }

    fn prepare(p: &G1) -> G1 {
        *p
    }

    fn pair_prepared(prep: &G1, q: &G2) -> Gt {
        pairing(prep, q)
    }

    // No cached-line form on this backend yet: the prepared second slot is
    // the point itself, mirroring `Prepared`.
    type PreparedQ = G2;

    fn prepare_q(q: &G2) -> G2 {
        *q
    }

    fn pair_prepared_q(p: &G1, prep: &G2) -> Gt {
        pairing(p, prep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Fr;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn non_degenerate() {
        let e = pairing(&G1::generator(), &G2::generator());
        assert!(!e.is_identity());
        assert!(e.is_in_subgroup());
    }

    #[test]
    fn bilinearity() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G2::random(&mut r);
        let a = Fr::random(&mut r);
        let b = Fr::random(&mut r);
        let lhs = pairing(&p.pow(&a), &q.pow(&b));
        let rhs = pairing(&p, &q).pow(&(a * b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn additivity_both_slots() {
        let mut r = rng();
        let p1 = G1::random(&mut r);
        let p2 = G1::random(&mut r);
        let q = G2::random(&mut r);
        assert_eq!(
            pairing(&p1.op(&p2), &q),
            pairing(&p1, &q).op(&pairing(&p2, &q))
        );
        let q2 = G2::random(&mut r);
        assert_eq!(
            pairing(&p1, &q.op(&q2)),
            pairing(&p1, &q).op(&pairing(&p1, &q2))
        );
    }

    #[test]
    fn identity_slots() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G2::random(&mut r);
        assert!(pairing(&G1::identity(), &q).is_identity());
        assert!(pairing(&p, &G2::identity()).is_identity());
    }

    #[test]
    fn gt_group_laws() {
        let mut r = rng();
        let a = Gt::random(&mut r);
        let b = Gt::random(&mut r);
        assert!(a.is_in_subgroup());
        assert_eq!(a.op(&b), b.op(&a));
        assert_eq!(a.op(&a.inverse()), Gt::identity());
        let s = Fr::random(&mut r);
        let t = Fr::random(&mut r);
        assert_eq!(a.pow(&s).op(&a.pow(&t)), a.pow(&(s + t)));
    }

    #[test]
    fn gt_serialization() {
        let mut r = rng();
        let a = Gt::random(&mut r);
        assert_eq!(Gt::from_bytes(&a.to_bytes()), Some(a));
        // non-unitary rejected
        let junk = Fq12::random(&mut r);
        if !junk.is_unitary() {
            assert_eq!(Gt::from_bytes(&junk.to_bytes_be()), None);
        }
    }
}
