//! # dlr-bls12 — BLS12-381 from scratch: the Type-3 production backend
//!
//! The paper is written for a symmetric (Type-1) pairing, which
//! `dlr-curve` instantiates with supersingular curves. Modern deployments
//! use asymmetric (Type-3) curves; this crate builds **BLS12-381** without
//! external dependencies and plugs it into the same
//! [`Pairing`](dlr_curve::Pairing) abstraction, so every scheme in
//! `dlr-core` (DLR, DIBE, DLRCCA2, storage) runs over it unchanged — with
//! the natural role split: ciphertext components in `G1`, key-share
//! components in `G2`.
//!
//! Design choices (see module docs):
//!
//! * only `q`, `r` and the BLS parameter `x` are transcribed; cofactors,
//!   the twist order, Frobenius and final-exponentiation exponents are
//!   **derived at runtime** and cross-checked by tests ([`params`]);
//! * the Miller loop runs transparently over untwisted `E(F_{q¹²})`
//!   points with the twist direction determined empirically ([`pairing`]);
//! * tower fields `F_{q²}`/`F_{q⁶}`/`F_{q¹²}` are validated against
//!   brute-force Frobenius identities ([`fq6`], [`fq12`]).
//!
//! ```
//! use dlr_bls12::pairing::Bls12_381;
//! use dlr_curve::{Group, Pairing};
//! use dlr_math::FieldElement;
//!
//! let mut rng = rand::thread_rng();
//! let a = <Bls12_381 as Pairing>::Scalar::random(&mut rng);
//! let g = <Bls12_381 as Pairing>::G1::generator();
//! let h = <Bls12_381 as Pairing>::G2::generator();
//! assert_eq!(
//!     Bls12_381::pair(&g.pow(&a), &h),
//!     Bls12_381::pair_generators().pow(&a)
//! );
//! ```

pub mod fields;
pub mod fq12;
pub mod fq6;
pub mod groups;
pub mod pairing;
pub mod params;
pub mod wcurve;

pub use groups::{G1, G2};
pub use pairing::{Bls12_381, Gt};
pub use params::{Fq, Fr};
