//! Field tower helpers for BLS12-381: `F_{q²} = F_q[u]/(u²+1)` (reusing
//! [`dlr_math::Fp2`]) plus the non-residue `ξ = 1 + u` and a square root
//! in `F_{q²}` (needed to hash to G2).

use crate::params::Fq;
use dlr_math::bignum;
use dlr_math::{FieldElement, Fp2};
use std::sync::OnceLock;

/// `F_{q²}`.
pub type Fq2 = Fp2<Fq>;

/// The sextic non-residue `ξ = 1 + u` used to build
/// `F_{q⁶} = F_{q²}[v]/(v³ − ξ)`.
pub fn xi() -> Fq2 {
    Fq2::new(Fq::one(), Fq::one())
}

/// Multiply by `ξ = 1 + u`: `(c0 + c1·u)(1 + u) = (c0 − c1) + (c0 + c1)u`.
pub fn mul_by_xi(a: &Fq2) -> Fq2 {
    Fq2::new(a.c0 - a.c1, a.c0 + a.c1)
}

fn exponent_q_minus_3_over_4() -> &'static Vec<u64> {
    static E: OnceLock<Vec<u64>> = OnceLock::new();
    E.get_or_init(|| {
        let (e, rem) = bignum::div_small(&bignum::sub(&crate::params::q_big(), &[3]), 4);
        assert_eq!(rem, 0);
        e
    })
}

fn exponent_q_minus_1_over_2() -> &'static Vec<u64> {
    static E: OnceLock<Vec<u64>> = OnceLock::new();
    E.get_or_init(|| {
        let (e, rem) = bignum::div_small(&bignum::sub(&crate::params::q_big(), &[1]), 2);
        assert_eq!(rem, 0);
        e
    })
}

/// Square root in `F_{q²}` for `q ≡ 3 (mod 4)` (the "complex method" of
/// Adj–Rodríguez-Henríquez, as used in RFC 9380). Returns `None` for
/// non-residues.
pub fn fq2_sqrt(a: &Fq2) -> Option<Fq2> {
    if a.is_zero() {
        return Some(*a);
    }
    let a1 = a.pow_vartime(exponent_q_minus_3_over_4());
    let x0 = a1 * *a; // a^{(q+1)/4}
    let alpha = a1 * x0; // a^{(q-1)/2}
    let candidate = if alpha == -Fq2::one() {
        // x = u·x0
        Fq2::i() * x0
    } else {
        let b = (Fq2::one() + alpha).pow_vartime(exponent_q_minus_1_over_2());
        b * x0
    };
    (candidate.square() == *a).then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn xi_is_not_a_cube_or_square_heuristic() {
        // ξ must be a quadratic AND cubic non-residue for the tower to be a
        // field; verify via exponent tests: ξ^{(q²−1)/2} ≠ 1, ξ^{(q²−1)/3} ≠ 1
        let q = crate::params::q_big();
        let q2m1 = bignum::sub(&bignum::mul(&q, &q), &[1]);
        let (half, r0) = bignum::div_small(&q2m1, 2);
        let (third, r1) = bignum::div_small(&q2m1, 3);
        assert_eq!((r0, r1), (0, 0));
        assert_ne!(xi().pow_vartime(&half), Fq2::one(), "ξ is a square!");
        assert_ne!(xi().pow_vartime(&third), Fq2::one(), "ξ is a cube!");
    }

    #[test]
    fn mul_by_xi_matches_generic_mul() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fq2::random(&mut r);
            assert_eq!(mul_by_xi(&a), a * xi());
        }
    }

    #[test]
    fn sqrt_roundtrip() {
        let mut r = rng();
        let mut qr = 0;
        let mut qnr = 0;
        for _ in 0..20 {
            let a = Fq2::random(&mut r);
            let sq = a.square();
            let root = fq2_sqrt(&sq).expect("squares have roots");
            assert!(root == a || root == -a);
            match fq2_sqrt(&a) {
                Some(s) => {
                    assert_eq!(s.square(), a);
                    qr += 1;
                }
                None => qnr += 1,
            }
        }
        assert!(qr > 0 && qnr > 0, "both classes should appear: {qr}/{qnr}");
    }

    #[test]
    fn sqrt_zero_and_one() {
        assert_eq!(fq2_sqrt(&Fq2::zero()), Some(Fq2::zero()));
        let one_root = fq2_sqrt(&Fq2::one()).unwrap();
        assert_eq!(one_root.square(), Fq2::one());
    }
}
