//! `F_{q¹²} = F_{q⁶}[w]/(w² − v)`.

use crate::fq6::Fq6;
use dlr_math::FieldElement;
use rand::RngCore;

/// An element `c0 + c1·w`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Fq12 {
    /// Even part.
    pub c0: Fq6,
    /// Odd part (coefficient of `w`).
    pub c1: Fq6,
}

impl Fq12 {
    /// Construct from parts.
    pub fn new(c0: Fq6, c1: Fq6) -> Self {
        Self { c0, c1 }
    }

    /// Embed an `F_{q⁶}` element.
    pub fn from_fq6(c0: Fq6) -> Self {
        Self::new(c0, Fq6::zero())
    }

    /// The `q⁶`-power Frobenius, which on this tower is simply `c1 ↦ −c1`
    /// (`w^{q⁶} = −w` since `q⁶ ≡ 3 (mod 4)`-style sign flip on the odd
    /// part — verified against `pow_vartime` in tests).
    pub fn conjugate_q6(&self) -> Self {
        Self::new(self.c0, -self.c1)
    }

    /// True iff `x · x^{q⁶} = 1` — membership in the "unitary" subgroup
    /// every pairing output lands in after the easy part of the final
    /// exponentiation (inversion becomes conjugation there).
    pub fn is_unitary(&self) -> bool {
        *self * self.conjugate_q6() == Self::one()
    }

    /// Cheap inverse for unitary elements.
    pub fn unitary_inverse(&self) -> Self {
        debug_assert!(self.is_unitary());
        self.conjugate_q6()
    }

    /// Squaring specialised to **unitary** elements: from
    /// `f·f^{q⁶} = (c0 + c1 w)(c0 − c1 w) = c0² − v·c1² = 1` it follows
    /// that `f² = (1 + 2·v·c1²) + 2·c0·c1·w` — one `F_{q⁶}` squaring and
    /// one multiplication instead of a full Karatsuba product. Used by the
    /// final-exponentiation hard part and `GT` arithmetic.
    ///
    /// Callers must ensure unitarity (debug-asserted).
    pub fn cyclotomic_square(&self) -> Self {
        debug_assert!(self.is_unitary());
        let b2 = self.c1.square();
        let ab = self.c0 * self.c1;
        let c0 = Fq6::one() + b2.mul_by_v().double();
        Self::new(c0, ab.double())
    }

    /// Variable-time exponentiation using cyclotomic squarings (valid for
    /// unitary bases only).
    pub fn pow_vartime_unitary(&self, exp: &[u64]) -> Self {
        debug_assert!(self.is_unitary());
        let mut nbits = 0u32;
        for (i, w) in exp.iter().enumerate() {
            if *w != 0 {
                nbits = i as u32 * 64 + (64 - w.leading_zeros());
            }
        }
        let mut acc = Self::one();
        let mut i = nbits;
        while i > 0 {
            i -= 1;
            // `acc` stays unitary: products and squares of unitary
            // elements are unitary.
            acc = acc.cyclotomic_square();
            if (exp[(i / 64) as usize] >> (i % 64)) & 1 == 1 {
                acc *= *self;
            }
        }
        acc
    }
}

impl core::ops::Add for Fq12 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.c0 + rhs.c0, self.c1 + rhs.c1)
    }
}
impl core::ops::Sub for Fq12 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.c0 - rhs.c0, self.c1 - rhs.c1)
    }
}
impl core::ops::Neg for Fq12 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1)
    }
}
impl core::ops::Mul for Fq12 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Karatsuba with w² = v
        let v0 = self.c0 * rhs.c0;
        let v1 = self.c1 * rhs.c1;
        let c0 = v0 + v1.mul_by_v();
        let c1 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - v0 - v1;
        Self::new(c0, c1)
    }
}
impl core::ops::AddAssign for Fq12 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl core::ops::SubAssign for Fq12 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl core::ops::MulAssign for Fq12 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl FieldElement for Fq12 {
    fn zero() -> Self {
        Self::new(Fq6::zero(), Fq6::zero())
    }
    fn one() -> Self {
        Self::new(Fq6::one(), Fq6::zero())
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }
    fn inverse(&self) -> Option<Self> {
        // (c0 + c1 w)^{-1} = (c0 − c1 w)/(c0² − v·c1²)
        let norm = self.c0.square() - self.c1.square().mul_by_v();
        let ninv = norm.inverse()?;
        Some(Self::new(self.c0 * ninv, -(self.c1 * ninv)))
    }
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fq6::random(rng), Fq6::random(rng))
    }
    fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = self.c0.to_bytes_be();
        out.extend_from_slice(&self.c1.to_bytes_be());
        out
    }
    fn from_bytes_be(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::byte_len() {
            return None;
        }
        let step = Fq6::byte_len();
        Some(Self::new(
            Fq6::from_bytes_be(&bytes[..step])?,
            Fq6::from_bytes_be(&bytes[step..])?,
        ))
    }
    fn byte_len() -> usize {
        2 * Fq6::byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_math::bignum;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12)
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..6 {
            let a = Fq12::random(&mut r);
            let b = Fq12::random(&mut r);
            assert_eq!(a * b, b * a);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq12::one());
            }
        }
    }

    #[test]
    fn w_squared_is_v() {
        let w = Fq12::new(Fq6::zero(), Fq6::one());
        assert_eq!(w * w, Fq12::from_fq6(Fq6::v()));
    }

    #[test]
    fn conjugate_q6_is_q6_frobenius() {
        // x^{q⁶} computed by brute-force exponentiation must equal the
        // structural conjugation — this pins the tower's sign conventions.
        let mut r = rng();
        let a = Fq12::random(&mut r);
        let q = crate::params::q_big();
        let q6 = bignum::pow(&q, 6);
        assert_eq!(a.pow_vartime(&q6), a.conjugate_q6());
    }

    #[test]
    fn multiplicative_order_divides_q12_minus_1() {
        let mut r = rng();
        let a = Fq12::random(&mut r);
        if a.is_zero() {
            return;
        }
        let q = crate::params::q_big();
        let e = bignum::sub(&bignum::pow(&q, 12), &[1]);
        assert_eq!(a.pow_vartime(&e), Fq12::one());
    }

    #[test]
    fn cyclotomic_square_matches_plain_on_unitary() {
        let mut r = rng();
        for _ in 0..4 {
            let a = Fq12::random(&mut r);
            if a.is_zero() {
                continue;
            }
            // force unitarity: u = conj(a)/a satisfies u·conj(u) = 1
            let u = a.conjugate_q6() * a.inverse().unwrap();
            assert!(u.is_unitary());
            assert_eq!(u.cyclotomic_square(), u.square());
            assert_eq!(u.pow_vartime_unitary(&[12345]), u.pow_vartime(&[12345]));
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        let a = Fq12::random(&mut r);
        assert_eq!(Fq12::from_bytes_be(&a.to_bytes_be()), Some(a));
        assert_eq!(Fq12::byte_len(), 12 * 48);
    }
}
