//! BLS12-381 parameters and *derived* constants.
//!
//! Only three constants are transcribed from the standard: the base-field
//! prime `q`, the subgroup order `r`, and the BLS parameter
//! `x = -0xd201000000010000`. Everything else — cofactors, twist order,
//! Frobenius exponents, the final-exponentiation exponent — is **computed
//! at runtime** from those three (and the computations are cross-checked
//! by tests), because a silent transcription error in a 1500-bit constant
//! is the classic way pairing implementations go wrong.

use dlr_math::bignum;
use dlr_math::define_prime_field;
use std::sync::OnceLock;

define_prime_field!(
    /// The BLS12-381 base field `F_q` (381 bits, `q ≡ 3 (mod 4)`).
    pub struct Fq, 6, "0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"
);

define_prime_field!(
    /// The BLS12-381 scalar field `F_r` (255 bits).
    pub struct Fr, 4, "0x73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
);

/// |x| for the BLS parameter `x = -0xd201000000010000` (x is negative).
pub const X_ABS: u64 = 0xd201_0000_0001_0000;

/// `q` as a variable-width big integer.
pub fn q_big() -> Vec<u64> {
    bignum::from_limbs(&Fq::MODULUS)
}

/// `r` as a variable-width big integer.
pub fn r_big() -> Vec<u64> {
    bignum::from_limbs(&Fr::MODULUS)
}

/// `r` as little-endian limbs (exponent for subgroup checks).
pub fn r_limbs() -> &'static [u64] {
    &Fr::MODULUS
}

/// The G1 cofactor `h1 = (x−1)²/3` (for negative `x`: `(|x|+1)²/3`).
pub fn g1_cofactor() -> &'static [u64] {
    static H1: OnceLock<Vec<u64>> = OnceLock::new();
    H1.get_or_init(|| {
        let xm1 = X_ABS as u128 + 1; // |x - 1| for x < 0
        let sq = bignum::mul(&bignum::from_u128(xm1), &bignum::from_u128(xm1));
        let (h, rem) = bignum::div_small(&sq, 3);
        assert_eq!(rem, 0, "(x-1)^2 must be divisible by 3");
        h
    })
}

/// Integer square root (Newton), exact-checked by the caller.
fn isqrt(n: &[u64]) -> Vec<u64> {
    if n.is_empty() {
        return Vec::new();
    }
    // initial guess: 2^(ceil(bits/2))
    let bits = (n.len() - 1) * 64 + (64 - n.last().unwrap().leading_zeros() as usize);
    let mut x = vec![0u64; bits / 128 + 1];
    let top = bits / 2;
    x[top / 64] = 1 << (top % 64);
    if bignum::cmp(&bignum::mul(&x, &x), n) == core::cmp::Ordering::Less {
        // ensure initial guess >= sqrt(n)
        x = bignum::add(&bignum::mul(&x, &[2]), &[1]);
    }
    loop {
        // x' = (x + n/x) / 2
        let (q, _) = bignum::div_rem(n, &x);
        let (next, _) = bignum::div_small(&bignum::add(&x, &q), 2);
        if bignum::cmp(&next, &x) != core::cmp::Ordering::Less {
            return x;
        }
        x = next;
    }
}

/// The order of the sextic twist `E'(F_{q²})` and the G2 cofactor
/// `h2 = #E'/r`, derived from `(q, t)` via the twist-order formula
/// `t₂² − 4q² = −3f²`, with the correct sign choice verified by
/// divisibility by `r`.
pub fn g2_cofactor() -> &'static [u64] {
    static H2: OnceLock<Vec<u64>> = OnceLock::new();
    H2.get_or_init(|| {
        let q = q_big();
        let r = r_big();
        // trace over Fq: t = x + 1 (negative); |t| = |x| - 1
        let t_abs = bignum::from_u128(X_ABS as u128 - 1);
        let t_sq = bignum::mul(&t_abs, &t_abs);
        // t2 = t² - 2q  (negative); |t2| = 2q - t²
        let two_q = bignum::mul(&q, &[2]);
        let t2_abs = bignum::sub(&two_q, &t_sq);
        // 4q² - t2² = 3f²
        let four_q2 = bignum::mul(&bignum::mul(&q, &q), &[4]);
        let t2_sq = bignum::mul(&t2_abs, &t2_abs);
        let (f_sq, rem) = bignum::div_small(&bignum::sub(&four_q2, &t2_sq), 3);
        assert_eq!(rem, 0, "4q² − t₂² must be divisible by 3");
        let f = isqrt(&f_sq);
        assert_eq!(bignum::mul(&f, &f), f_sq, "f must be an exact square root");

        // Sextic-twist order candidates: q² + 1 − (±3f ± t2)/2. With
        // t2 < 0 written via |t2|, the four candidates are
        // q² + 1 ± (3f ∓ |t2|)/2 and q² + 1 ± (3f ± |t2|)/2.
        let q2p1 = bignum::add(&bignum::mul(&q, &q), &[1]);
        let three_f = bignum::mul(&f, &[3]);
        let mut candidates = Vec::new();
        // (3f + |t2|) and |3f − |t2||, added or subtracted
        let sum = bignum::add(&three_f, &t2_abs);
        let diff = if bignum::cmp(&three_f, &t2_abs) == core::cmp::Ordering::Less {
            bignum::sub(&t2_abs, &three_f)
        } else {
            bignum::sub(&three_f, &t2_abs)
        };
        for half in [&sum, &diff] {
            let (h, rem) = bignum::div_small(half, 2);
            if rem != 0 {
                continue;
            }
            candidates.push(bignum::add(&q2p1, &h));
            if bignum::cmp(&q2p1, &h) != core::cmp::Ordering::Less {
                candidates.push(bignum::sub(&q2p1, &h));
            }
        }
        // the right one is divisible by r (and, for BLS curves, exactly one is)
        let mut hits: Vec<Vec<u64>> = candidates
            .into_iter()
            .filter_map(|n| {
                let (h2, rem) = bignum::div_rem(&n, &r);
                rem.is_empty().then_some(h2)
            })
            .collect();
        assert!(
            !hits.is_empty(),
            "no twist-order candidate divisible by r — formula error"
        );
        hits.sort();
        hits.dedup();
        assert_eq!(hits.len(), 1, "ambiguous twist order candidates");
        hits.pop().unwrap()
    })
}

/// The "hard part" exponent of the final exponentiation,
/// `(q⁴ − q² + 1)/r`, derived by exact division.
pub fn hard_part_exponent() -> &'static [u64] {
    static E: OnceLock<Vec<u64>> = OnceLock::new();
    E.get_or_init(|| {
        let q = q_big();
        let q2 = bignum::mul(&q, &q);
        let q4 = bignum::mul(&q2, &q2);
        let numerator = bignum::add(&bignum::sub(&q4, &q2), &[1]);
        let (e, rem) = bignum::div_rem(&numerator, &r_big());
        assert!(rem.is_empty(), "r must divide q⁴ − q² + 1 (cyclotomic)");
        e
    })
}

/// `q²` as limbs (exponent used in the easy part of the final
/// exponentiation).
pub fn q_squared() -> &'static [u64] {
    static E: OnceLock<Vec<u64>> = OnceLock::new();
    E.get_or_init(|| {
        let q = q_big();
        bignum::mul(&q, &q)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_math::mont::is_probable_prime;
    use dlr_math::PrimeField;

    #[test]
    fn moduli_are_prime_and_3_mod_4() {
        assert!(is_probable_prime(&Fq::MODULUS));
        assert!(is_probable_prime(&Fr::MODULUS));
        assert!(Fq::modulus_is_3_mod_4());
        assert_eq!(Fq::modulus_bits(), 381);
        assert_eq!(Fr::modulus_bits(), 255);
    }

    #[test]
    fn r_is_cyclotomic_in_x() {
        // r = x⁴ − x² + 1 (x negative, even powers only — use |x|)
        let x2 = bignum::mul(&bignum::from_u128(X_ABS as u128), &bignum::from_u128(X_ABS as u128));
        let x4 = bignum::mul(&x2, &x2);
        let r = bignum::add(&bignum::sub(&x4, &x2), &[1]);
        assert_eq!(r, r_big());
    }

    #[test]
    fn q_matches_bls_formula() {
        // q = (x−1)²·r/3 + x; with x < 0: q = (|x|+1)²·r/3 − |x|
        let xm1 = bignum::from_u128(X_ABS as u128 + 1);
        let num = bignum::mul(&bignum::mul(&xm1, &xm1), &r_big());
        let (third, rem) = bignum::div_small(&num, 3);
        assert_eq!(rem, 0);
        let q = bignum::sub(&third, &bignum::from_u128(X_ABS as u128));
        assert_eq!(q, q_big());
    }

    #[test]
    fn g1_cofactor_times_r_is_curve_order() {
        // #E(Fq) = q + 1 − t = q + 1 + (|x|+1)... t = x+1 (negative),
        // so #E = q + 1 + (|x| - 1) = q + |x|... careful: t = x + 1,
        // |t| = |x| - 1 (x negative), #E = q + 1 - t = q + 1 + (|x| - 1)
        //     = q + |x|.
        let order = bignum::add(&q_big(), &bignum::from_u128(X_ABS as u128));
        assert_eq!(bignum::mul(g1_cofactor(), &r_big()), order);
    }

    #[test]
    fn g2_cofactor_is_derived_consistently() {
        let h2 = g2_cofactor();
        // must be nonzero and large (≈ q²/r ≈ 2^507)
        let bits = (h2.len() - 1) * 64 + (64 - h2.last().unwrap().leading_zeros() as usize);
        assert!((500..=515).contains(&bits), "h2 has {bits} bits");
        // spot-check the well-known low limb of the standard constant
        assert_eq!(h2[0], 0xcf1c38e31c7238e5, "h2 low limb mismatch");
    }

    #[test]
    fn hard_part_exponent_reconstructs() {
        let e = hard_part_exponent();
        let q2 = bignum::mul(&q_big(), &q_big());
        let q4 = bignum::mul(&q2, &q2);
        let num = bignum::add(&bignum::sub(&q4, &q2), &[1]);
        assert_eq!(bignum::mul(e, &r_big()), num);
    }

    #[test]
    fn isqrt_small_values() {
        for (n, root) in [(0u64, 0u64), (1, 1), (2, 1), (3, 1), (4, 2), (99, 9), (100, 10)] {
            let got = isqrt(&bignum::from_limbs(&[n]));
            let expect = bignum::from_limbs(&[root]);
            assert_eq!(got, expect, "isqrt({n})");
        }
    }
}
