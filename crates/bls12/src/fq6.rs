//! `F_{q⁶} = F_{q²}[v]/(v³ − ξ)`.

use crate::fields::{mul_by_xi, Fq2};
use dlr_math::FieldElement;
use rand::RngCore;

/// An element `c0 + c1·v + c2·v²`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Fq6 {
    /// Constant coefficient.
    pub c0: Fq2,
    /// Coefficient of `v`.
    pub c1: Fq2,
    /// Coefficient of `v²`.
    pub c2: Fq2,
}

impl Fq6 {
    /// Construct from coefficients.
    pub fn new(c0: Fq2, c1: Fq2, c2: Fq2) -> Self {
        Self { c0, c1, c2 }
    }

    /// Embed an `F_{q²}` element.
    pub fn from_fq2(c0: Fq2) -> Self {
        Self::new(c0, Fq2::zero(), Fq2::zero())
    }

    /// The element `v`.
    pub fn v() -> Self {
        Self::new(Fq2::zero(), Fq2::one(), Fq2::zero())
    }

    /// Multiply by `v`: `(c0 + c1 v + c2 v²)·v = ξ·c2 + c0 v + c1 v²`.
    pub fn mul_by_v(&self) -> Self {
        Self::new(mul_by_xi(&self.c2), self.c0, self.c1)
    }
}

impl core::ops::Add for Fq6 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.c0 + rhs.c0, self.c1 + rhs.c1, self.c2 + rhs.c2)
    }
}

impl core::ops::Sub for Fq6 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.c0 - rhs.c0, self.c1 - rhs.c1, self.c2 - rhs.c2)
    }
}

impl core::ops::Neg for Fq6 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.c0, -self.c1, -self.c2)
    }
}

impl core::ops::Mul for Fq6 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        // Toom-style interpolation (standard v³ = ξ reduction):
        let a = &self;
        let b = &rhs;
        let v0 = a.c0 * b.c0;
        let v1 = a.c1 * b.c1;
        let v2 = a.c2 * b.c2;
        let c0 = v0 + mul_by_xi(&((a.c1 + a.c2) * (b.c1 + b.c2) - v1 - v2));
        let c1 = (a.c0 + a.c1) * (b.c0 + b.c1) - v0 - v1 + mul_by_xi(&v2);
        let c2 = (a.c0 + a.c2) * (b.c0 + b.c2) - v0 - v2 + v1;
        Self::new(c0, c1, c2)
    }
}

impl core::ops::AddAssign for Fq6 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl core::ops::SubAssign for Fq6 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl core::ops::MulAssign for Fq6 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl FieldElement for Fq6 {
    fn zero() -> Self {
        Self::new(Fq2::zero(), Fq2::zero(), Fq2::zero())
    }
    fn one() -> Self {
        Self::new(Fq2::one(), Fq2::zero(), Fq2::zero())
    }
    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }
    fn inverse(&self) -> Option<Self> {
        // standard cubic-extension inversion
        let a = self;
        let t0 = a.c0.square() - mul_by_xi(&(a.c1 * a.c2));
        let t1 = mul_by_xi(&a.c2.square()) - a.c0 * a.c1;
        let t2 = a.c1.square() - a.c0 * a.c2;
        let norm = a.c0 * t0 + mul_by_xi(&(a.c2 * t1)) + mul_by_xi(&(a.c1 * t2));
        let ninv = norm.inverse()?;
        Some(Self::new(t0 * ninv, t1 * ninv, t2 * ninv))
    }
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::new(Fq2::random(rng), Fq2::random(rng), Fq2::random(rng))
    }
    fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = self.c0.to_bytes_be();
        out.extend_from_slice(&self.c1.to_bytes_be());
        out.extend_from_slice(&self.c2.to_bytes_be());
        out
    }
    fn from_bytes_be(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::byte_len() {
            return None;
        }
        let step = Fq2::byte_len();
        Some(Self::new(
            Fq2::from_bytes_be(&bytes[..step])?,
            Fq2::from_bytes_be(&bytes[step..2 * step])?,
            Fq2::from_bytes_be(&bytes[2 * step..])?,
        ))
    }
    fn byte_len() -> usize {
        3 * Fq2::byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(6)
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fq6::random(&mut r);
            let b = Fq6::random(&mut r);
            let c = Fq6::random(&mut r);
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fq6::one());
            }
        }
    }

    #[test]
    fn v_cubed_is_xi() {
        let v = Fq6::v();
        let v3 = v * v * v;
        assert_eq!(v3, Fq6::from_fq2(crate::fields::xi()));
        // and mul_by_v agrees with multiplication by v
        let mut r = rng();
        let a = Fq6::random(&mut r);
        assert_eq!(a.mul_by_v(), a * v);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        let a = Fq6::random(&mut r);
        assert_eq!(Fq6::from_bytes_be(&a.to_bytes_be()), Some(a));
        assert_eq!(Fq6::from_bytes_be(&[0u8; 10]), None);
    }

    #[test]
    fn pow_vartime_consistent() {
        let mut r = rng();
        let a = Fq6::random(&mut r);
        assert_eq!(a.pow_vartime(&[5]), a * a * a * a * a);
    }
}
