//! The BLS12-381 source groups `G1 ⊂ E(F_q)` and `G2 ⊂ E'(F_{q²})` as
//! [`dlr_curve::Group`] instances (so the generic Πss/HPSKE machinery of
//! `dlr-core` works over them unchanged).

use crate::fields::{fq2_sqrt, mul_by_xi, Fq2};
use crate::params::{g1_cofactor, g2_cofactor, r_limbs, Fq, Fr};
use crate::wcurve::JPoint;
use dlr_curve::{Group, GroupKind};
use dlr_math::{FieldElement, PrimeField};
use rand::RngCore;
use std::sync::OnceLock;

/// `b = 4` for `E : y² = x³ + 4`.
pub fn b_g1() -> Fq {
    Fq::from_u64(4)
}

/// `b' = 4·(1 + u)` for the sextic twist `E' : y² = x³ + 4(1+u)`.
pub fn b_g2() -> Fq2 {
    mul_by_xi(&Fq2::from_base(Fq::from_u64(4)))
}

macro_rules! impl_bls_group {
    (
        $(#[$doc:meta])*
        $name:ident, $F:ty, $b:expr, $cofactor:expr, $sqrt:expr,
        $domain:literal, $kind:expr
    ) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug)]
        pub struct $name(pub(crate) JPoint<$F>);

        impl $name {
            /// Construct from affine coordinates, checking the curve
            /// equation (but not subgroup membership).
            pub fn from_affine(x: $F, y: $F) -> Option<Self> {
                let p = JPoint::from_affine(x, y);
                p.is_on_curve(&$b).then_some(Self(p))
            }

            /// Affine coordinates (`None` at infinity).
            pub fn to_affine(&self) -> Option<($F, $F)> {
                self.0.to_affine()
            }

            /// Compressed serialization (tag ‖ x, with `y` recovered via a
            /// square root on parse).
            pub fn to_bytes_compressed(&self) -> Vec<u8> {
                let len = 1 + <$F>::byte_len();
                match self.to_affine() {
                    None => vec![0u8; len],
                    Some((x, y)) => {
                        let neg = -y;
                        let sign = y.to_bytes_be() > neg.to_bytes_be();
                        let mut out = Vec::with_capacity(len);
                        out.push(if sign { 3 } else { 2 });
                        out.extend_from_slice(&x.to_bytes_be());
                        out
                    }
                }
            }

            /// Parse a compressed point.
            pub fn from_bytes_compressed(bytes: &[u8]) -> Option<Self> {
                if bytes.len() != 1 + <$F>::byte_len() {
                    return None;
                }
                match bytes[0] {
                    0 => bytes.iter().all(|&b| b == 0).then(Self::identity),
                    tag @ (2 | 3) => {
                        let x = <$F>::from_bytes_be(&bytes[1..])?;
                        let rhs = x.square() * x + $b;
                        let y = $sqrt(&rhs)?;
                        let neg = -y;
                        let y_sign = y.to_bytes_be() > neg.to_bytes_be();
                        let y = if y_sign == (tag == 3) { y } else { neg };
                        Some(Self(JPoint::from_affine(x, y)))
                    }
                    _ => None,
                }
            }

            /// Hash bytes onto the prime-order subgroup
            /// (try-and-increment + cofactor clearing; deterministic).
            pub fn hash_to_group(domain: &[u8], msg: &[u8]) -> Self {
                let flen = <$F>::byte_len() + 16;
                for ctr in 0u32..u32::MAX {
                    let mut info = $domain.to_vec();
                    info.extend_from_slice(&ctr.to_be_bytes());
                    let bytes = dlr_hash::hkdf::hkdf(domain, msg, &info, flen + 1);
                    let x = reduce_bytes::<$F>(&bytes[..flen]);
                    let rhs = x.square() * x + $b;
                    if let Some(y) = $sqrt(&rhs) {
                        let y = if bytes[flen] & 1 == 1 { -y } else { y };
                        let cleared = JPoint::from_affine(x, y).mul_limbs($cofactor);
                        if !cleared.is_infinity() {
                            return Self(cleared);
                        }
                    }
                }
                unreachable!("hash_to_group exhausted the counter space")
            }

            /// Process-wide fixed-base tables for the generator.
            fn generator_table() -> &'static dlr_curve::FixedBase<$name> {
                static TABLE: OnceLock<dlr_curve::FixedBase<$name>> = OnceLock::new();
                TABLE.get_or_init(|| dlr_curve::FixedBase::new(&Self::generator()))
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self(JPoint::infinity())
            }
        }

        impl PartialEq for $name {
            fn eq(&self, rhs: &Self) -> bool {
                self.0.eq_point(&rhs.0)
            }
        }
        impl Eq for $name {}

        impl core::hash::Hash for $name {
            fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
                state.write(&self.to_bytes());
            }
        }

        impl Group for $name {
            type Scalar = Fr;
            const NAME: &'static str = stringify!($name);
            const KIND: GroupKind = $kind;

            fn identity() -> Self {
                Self(JPoint::infinity())
            }

            fn generator() -> Self {
                // Typed cache: the macro expands per concrete group, so a
                // plain static is legal here (no byte round-trip per call).
                static GEN: OnceLock<$name> = OnceLock::new();
                *GEN.get_or_init(|| Self::hash_to_group($domain, b"generator"))
            }

            fn generator_pow(exp: &Self::Scalar) -> Self {
                Self::generator_table().pow_fixed(exp)
            }

            fn warm_generator_tables() {
                let _ = Self::generator_table();
            }

            fn raw_op(&self, rhs: &Self) -> Self {
                Self(self.0.add(&rhs.0))
            }

            fn raw_double(&self) -> Self {
                Self(self.0.double())
            }

            fn inverse(&self) -> Self {
                Self(self.0.neg())
            }

            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut seed = [0u8; 32];
                rng.fill_bytes(&mut seed);
                Self::hash_to_group(b"dlr-bls12-random", &seed)
            }

            fn to_bytes(&self) -> Vec<u8> {
                let len = Self::byte_len();
                match self.to_affine() {
                    None => vec![0u8; len],
                    Some((x, y)) => {
                        let mut out = Vec::with_capacity(len);
                        out.push(4);
                        out.extend_from_slice(&x.to_bytes_be());
                        out.extend_from_slice(&y.to_bytes_be());
                        out
                    }
                }
            }

            fn from_bytes(bytes: &[u8]) -> Option<Self> {
                if bytes.len() != Self::byte_len() {
                    return None;
                }
                match bytes[0] {
                    0 => bytes.iter().all(|&b| b == 0).then(Self::identity),
                    4 => {
                        let flen = <$F>::byte_len();
                        let x = <$F>::from_bytes_be(&bytes[1..1 + flen])?;
                        let y = <$F>::from_bytes_be(&bytes[1 + flen..])?;
                        Self::from_affine(x, y)
                    }
                    _ => None,
                }
            }

            fn byte_len() -> usize {
                1 + 2 * <$F>::byte_len()
            }

            fn is_in_subgroup(&self) -> bool {
                self.0.is_on_curve(&$b) && self.0.mul_limbs(r_limbs()).is_infinity()
            }
        }
    };
}

/// Reduce arbitrary bytes into the coordinate field.
fn reduce_bytes<F: CoordinateField>(bytes: &[u8]) -> F {
    F::from_reduced(bytes)
}

/// Helper trait: both coordinate fields can absorb arbitrary bytes.
pub trait CoordinateField: FieldElement {
    /// Interpret bytes as a (reduced) field element.
    fn from_reduced(bytes: &[u8]) -> Self;
}

impl CoordinateField for Fq {
    fn from_reduced(bytes: &[u8]) -> Self {
        <Fq as PrimeField>::from_bytes_be_reduced(bytes)
    }
}

impl CoordinateField for Fq2 {
    fn from_reduced(bytes: &[u8]) -> Self {
        let half = bytes.len() / 2;
        Fq2::new(
            <Fq as PrimeField>::from_bytes_be_reduced(&bytes[..half]),
            <Fq as PrimeField>::from_bytes_be_reduced(&bytes[half..]),
        )
    }
}

fn fq_sqrt(a: &Fq) -> Option<Fq> {
    a.sqrt()
}

impl_bls_group!(
    /// `G1`: the order-`r` subgroup of `E(F_q) : y² = x³ + 4`.
    G1, Fq, b_g1(), g1_cofactor(), fq_sqrt, b"dlr-bls12-g1", GroupKind::Source
);

impl_bls_group!(
    /// `G2`: the order-`r` subgroup of the sextic twist
    /// `E'(F_{q²}) : y² = x³ + 4(1+u)`.
    G2, Fq2, b_g2(), g2_cofactor(), fq2_sqrt, b"dlr-bls12-g2", GroupKind::Source
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2)
    }

    #[test]
    fn g1_generator_valid() {
        let g = G1::generator();
        assert!(!g.is_identity());
        assert!(g.is_in_subgroup());
        assert_eq!(G1::generator(), g);
    }

    #[test]
    fn g2_generator_valid() {
        let g = G2::generator();
        assert!(!g.is_identity());
        assert!(g.is_in_subgroup(), "g2 cofactor clearing failed — twist order wrong?");
    }

    #[test]
    fn g1_group_laws_and_scalars() {
        let mut r = rng();
        let p = G1::random(&mut r);
        let q = G1::random(&mut r);
        assert_eq!(p.op(&q), q.op(&p));
        assert_eq!(p.op(&p.inverse()), G1::identity());
        let s = Fr::random(&mut r);
        let t = Fr::random(&mut r);
        assert_eq!(p.pow(&s).op(&p.pow(&t)), p.pow(&(s + t)));
        // order r
        assert_eq!(p.pow(&(-Fr::one())).op(&p), G1::identity());
    }

    #[test]
    fn g2_group_laws_and_scalars() {
        let mut r = rng();
        let p = G2::random(&mut r);
        assert!(p.is_in_subgroup());
        let s = Fr::random(&mut r);
        let t = Fr::random(&mut r);
        assert_eq!(p.pow(&s).pow(&t), p.pow(&(s * t)));
        assert_eq!(p.pow(&(-Fr::one())).op(&p), G2::identity());
    }

    #[test]
    fn serialization_roundtrips() {
        let mut r = rng();
        let p = G1::random(&mut r);
        assert_eq!(G1::from_bytes(&p.to_bytes()), Some(p));
        let q = G2::random(&mut r);
        assert_eq!(G2::from_bytes(&q.to_bytes()), Some(q));
        assert_eq!(G1::from_bytes(&G1::identity().to_bytes()), Some(G1::identity()));
        assert_eq!(G1::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn compressed_roundtrips() {
        let mut r = rng();
        let p = G1::random(&mut r);
        assert_eq!(G1::from_bytes_compressed(&p.to_bytes_compressed()), Some(p));
        let q = G2::random(&mut r);
        assert_eq!(G2::from_bytes_compressed(&q.to_bytes_compressed()), Some(q));
        assert_eq!(
            G1::from_bytes_compressed(&G1::identity().to_bytes_compressed()),
            Some(G1::identity())
        );
        assert!(q.to_bytes_compressed().len() < q.to_bytes().len());
    }

    #[test]
    fn multiexp_via_group_trait() {
        let mut r = rng();
        let bases: Vec<G2> = (0..4).map(|_| G2::random(&mut r)).collect();
        let exps: Vec<Fr> = (0..4).map(|_| Fr::random(&mut r)).collect();
        let fast = G2::product_of_powers(&bases, &exps);
        let slow = dlr_curve::multiexp::naive(&bases, &exps);
        assert_eq!(fast, slow);
    }
}
