//! The naive single-device scheme and its collapse under continual
//! leakage — the negative control of experiment F3.
//!
//! The whole secret key (an ElGamal exponent) sits in one device's secret
//! memory. There is no refresh: with the public key fixed, the unique
//! secret key cannot be re-randomized ("the hole in the bucket" problem
//! that \[11\] names and this paper's *distribution* solves differently).
//! A bit-probe adversary that leaks a bounded number of bits per period
//! therefore accumulates the entire key after `⌈|sk|/b⌉` periods and wins
//! the IND game with probability 1.

use crate::elgamal::{self, ElGamalCt, ElGamalPk, ElGamalSk};
use dlr_curve::Group;
use dlr_leakage::leakfn::{window_bits, LeakInput};
use dlr_leakage::Bits;
use dlr_math::FieldElement;
use dlr_protocol::Device;
use rand::RngCore;

/// The naive scheme's single device, with `sk` fully resident in secret
/// memory.
pub struct NaiveDevice<G: Group> {
    /// The underlying public key.
    pub pk: ElGamalPk<G>,
    sk: ElGamalSk<G>,
    device: Device,
}

impl<G: Group> NaiveDevice<G> {
    /// Generate keys and load the device.
    pub fn keygen<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let (pk, sk) = elgamal::keygen::<G, _>(rng);
        let mut device = Device::new("NAIVE");
        device.secret.store("sk", sk.x.to_bytes_be());
        Self { pk, sk, device }
    }

    /// The device under leakage.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Decrypt (the honest path).
    pub fn decrypt(&self, ct: &ElGamalCt<G>) -> G {
        elgamal::decrypt(&self.sk, ct)
    }

    /// Secret-memory size in bits.
    pub fn secret_bits(&self) -> usize {
        self.device.secret.total_bits()
    }
}

/// Result of the probe game against the naive scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveGameResult {
    /// Whether the adversary recovered the full key.
    pub key_recovered: bool,
    /// Whether the adversary won the IND challenge.
    pub won: bool,
    /// Periods the probe ran.
    pub periods: u64,
}

/// Run the bit-probe game against the naive single-device scheme:
/// `bits_per_period` bits of the (static) secret memory leak each period.
pub fn run_naive_probe_game<G: Group, R: RngCore>(
    bits_per_period: usize,
    periods: u64,
    rng: &mut R,
) -> NaiveGameResult {
    let target = NaiveDevice::<G>::keygen(rng);
    let total_bits = target.secret_bits();

    // Leakage phase: fixed memory, advancing probe window.
    let mut collected = Bits::new();
    let mut offset = 0usize;
    for _ in 0..periods {
        if offset >= total_bits {
            break;
        }
        let take = bits_per_period.min(total_bits - offset);
        let mut f = window_bits(offset, take);
        let view = target.device().secret.view();
        let out = f.eval(&LeakInput {
            secret: &view,
            public: &[],
        });
        collected.extend(&out);
        offset += take;
    }

    let key_recovered = collected.len() >= total_bits;
    let candidate_sk = if key_recovered {
        // reassemble the exponent from the leaked bits
        let bytes: Vec<u8> = collected
            .as_bytes()
            .iter()
            .copied()
            .take(total_bits / 8)
            .collect();
        G::Scalar::from_bytes_be(&bytes).map(|x| ElGamalSk::<G> { x })
    } else {
        None
    };

    // Challenge phase.
    let m0 = G::random(rng);
    let m1 = G::random(rng);
    let b = rng.next_u32() & 1 == 1;
    let challenge = elgamal::encrypt(&target.pk, if b { &m1 } else { &m0 }, rng);

    let guess = match &candidate_sk {
        Some(sk) => {
            let m = elgamal::decrypt(sk, &challenge);
            if m == m1 {
                true
            } else if m == m0 {
                false
            } else {
                rng.next_u32() & 1 == 1
            }
        }
        None => rng.next_u32() & 1 == 1,
    };

    NaiveGameResult {
        key_recovered,
        won: guess == b,
        periods,
    }
}

/// Estimate the probe's win rate over many trials.
pub fn estimate_naive_win_rate<G: Group, R: RngCore>(
    bits_per_period: usize,
    periods: u64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut wins = 0usize;
    for _ in 0..trials {
        if run_naive_probe_game::<G, _>(bits_per_period, periods, rng).won {
            wins += 1;
        }
    }
    wins as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::gt::Gt;
    use dlr_curve::Toy;
    use rand::SeedableRng;

    type G = Gt<Toy>;

    #[test]
    fn full_probe_recovers_key_and_wins() {
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        // scalar is 8 bytes = 64 bits on the toy curve; 16 bits/period × 4
        for _ in 0..10 {
            let res = run_naive_probe_game::<G, _>(16, 4, &mut r);
            assert!(res.key_recovered);
            assert!(res.won, "with the full key the adversary always wins");
        }
    }

    #[test]
    fn partial_probe_no_advantage() {
        let mut r = rand::rngs::StdRng::seed_from_u64(12);
        let rate = estimate_naive_win_rate::<G, _>(16, 2, 60, &mut r);
        assert!((rate - 0.5).abs() < 0.25, "rate = {rate}");
    }

    #[test]
    fn win_rate_jumps_at_coverage_threshold() {
        let mut r = rand::rngs::StdRng::seed_from_u64(13);
        let before = estimate_naive_win_rate::<G, _>(16, 3, 40, &mut r);
        let after = estimate_naive_win_rate::<G, _>(16, 4, 40, &mut r);
        assert!(after > 0.95, "after = {after}");
        assert!(before < 0.85, "before = {before}");
    }
}
