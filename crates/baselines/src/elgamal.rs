//! Plain ElGamal over an abstract prime-order group — the efficiency floor
//! for the T2 comparison (no leakage resilience whatsoever) and the
//! secret-key scheme inside the naive single-device baseline.

use dlr_curve::Group;
use dlr_math::FieldElement;
use rand::RngCore;

/// ElGamal public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElGamalPk<G: Group> {
    /// `h = g^x`.
    pub h: G,
}

/// ElGamal secret key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElGamalSk<G: Group> {
    /// The exponent `x`.
    pub x: G::Scalar,
}

/// ElGamal ciphertext `(g^t, m·h^t)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElGamalCt<G: Group> {
    /// `g^t`.
    pub a: G,
    /// `m·h^t`.
    pub b: G,
}

/// Generate a key pair.
pub fn keygen<G: Group, R: RngCore + ?Sized>(rng: &mut R) -> (ElGamalPk<G>, ElGamalSk<G>) {
    let x = G::Scalar::random(rng);
    (
        ElGamalPk {
            h: G::generator().pow(&x),
        },
        ElGamalSk { x },
    )
}

/// Encrypt a group element.
pub fn encrypt<G: Group, R: RngCore + ?Sized>(
    pk: &ElGamalPk<G>,
    m: &G,
    rng: &mut R,
) -> ElGamalCt<G> {
    let t = G::Scalar::random(rng);
    ElGamalCt {
        a: G::generator().pow(&t),
        b: m.op(&pk.h.pow(&t)),
    }
}

/// Decrypt.
pub fn decrypt<G: Group>(sk: &ElGamalSk<G>, ct: &ElGamalCt<G>) -> G {
    ct.b.div(&ct.a.pow(&sk.x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::gt::Gt;
    use dlr_curve::modgroup::{Mini1009, ModGroup};
    use dlr_curve::Toy;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_gt_group() {
        let mut r = rand::rngs::StdRng::seed_from_u64(1);
        let (pk, sk) = keygen::<Gt<Toy>, _>(&mut r);
        let m = Gt::<Toy>::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        assert_eq!(decrypt(&sk, &ct), m);
    }

    #[test]
    fn roundtrip_mini_group() {
        let mut r = rand::rngs::StdRng::seed_from_u64(2);
        let (pk, sk) = keygen::<ModGroup<Mini1009>, _>(&mut r);
        let m = ModGroup::<Mini1009>::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        assert_eq!(decrypt(&sk, &ct), m);
    }

    #[test]
    fn wrong_key_garbles() {
        let mut r = rand::rngs::StdRng::seed_from_u64(3);
        let (pk, _sk) = keygen::<ModGroup<Mini1009>, _>(&mut r);
        let (_pk2, sk2) = keygen::<ModGroup<Mini1009>, _>(&mut r);
        let m = ModGroup::<Mini1009>::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        assert_ne!(decrypt(&sk2, &ct), m);
    }
}
