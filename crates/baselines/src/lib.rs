//! # dlr-baselines — comparison schemes for the experiments
//!
//! The schemes the paper compares against (§1.2.1 / footnote 3), built on
//! the same group substrate and instrumentation as DLR so the comparisons
//! are apples-to-apples:
//!
//! * [`elgamal`] — plain ElGamal (efficiency floor, zero leakage
//!   resilience);
//! * [`naor_segev`] — bounded-leakage PKE (\[32\]): leakage-resilient but
//!   *not refreshable* — the "hole in the bucket";
//! * [`bitbybit`] — bit-by-bit encryption with `ω(n)` elements per bit,
//!   the BKKV \[11\] cost profile;
//! * [`naive`] — the single-device negative control: a bit-probe adversary
//!   recovers the whole key and wins the IND game with probability 1
//!   (experiment F3's contrast to DLR's flat 1/2).

pub mod bitbybit;
pub mod elgamal;
pub mod naive;
pub mod naor_segev;
