//! Naor–Segev-style bounded-leakage PKE (\[32\], the scheme the paper's
//! secret sharing is "inspired by").
//!
//! `pk = (g_1, …, g_ℓ, h = ∏ g_i^{x_i})`, `sk = (x_1, …, x_ℓ)`;
//! `Enc(m) = (g_1^t, …, g_ℓ^t, m·h^t)`; `Dec(c) = c_0 / ∏ c_i^{x_i}`.
//!
//! Leakage-resilient up to `~(ℓ−2)·log p − 2·log(1/ε)` bits **in total**
//! (leftover hash lemma) — but the key cannot be refreshed while keeping
//! `pk` fixed, so under *continual* leakage the budget eventually runs dry:
//! the "hole in the bucket". Experiment F4 contrasts its collapse with
//! DLR's flat advantage curve.

use dlr_curve::Group;
use dlr_math::FieldElement;
use rand::RngCore;

/// Public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsPk<G: Group> {
    /// The bases `g_i` (random, unknown dlog).
    pub g: Vec<G>,
    /// `h = ∏ g_i^{x_i}`.
    pub h: G,
}

/// Secret key (the leakage target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsSk<G: Group> {
    /// The exponent vector.
    pub x: Vec<G::Scalar>,
}

/// Ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsCt<G: Group> {
    /// `g_i^t`.
    pub c: Vec<G>,
    /// `m·h^t`.
    pub c0: G,
}

/// Generate an `ℓ`-element key pair.
pub fn keygen<G: Group, R: RngCore + ?Sized>(ell: usize, rng: &mut R) -> (NsPk<G>, NsSk<G>) {
    assert!(ell >= 1);
    let g: Vec<G> = (0..ell).map(|_| G::random(rng)).collect();
    let x: Vec<G::Scalar> = (0..ell).map(|_| G::Scalar::random(rng)).collect();
    let h = G::product_of_powers(&g, &x);
    (NsPk { g, h }, NsSk { x })
}

/// Encrypt a group element.
pub fn encrypt<G: Group, R: RngCore + ?Sized>(pk: &NsPk<G>, m: &G, rng: &mut R) -> NsCt<G> {
    let t = G::Scalar::random(rng);
    NsCt {
        c: pk.g.iter().map(|gi| gi.pow(&t)).collect(),
        c0: m.op(&pk.h.pow(&t)),
    }
}

/// Decrypt. Returns `None` on a length mismatch.
pub fn decrypt<G: Group>(sk: &NsSk<G>, ct: &NsCt<G>) -> Option<G> {
    if sk.x.len() != ct.c.len() {
        return None;
    }
    Some(ct.c0.div(&G::product_of_powers(&ct.c, &sk.x)))
}

/// The analytic total-leakage bound (bits) this scheme tolerates:
/// `(ℓ−2)·log p − 2·log(1/ε)` (leftover hash lemma with output `log p`).
pub fn leakage_bound(ell: usize, log_p: u32, n: u32) -> i64 {
    (ell as i64 - 2) * log_p as i64 - 2 * n as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::modgroup::{Mini1009, ModGroup};
    use dlr_curve::{Toy, G};
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut r = rand::rngs::StdRng::seed_from_u64(4);
        for ell in [1usize, 2, 8] {
            let (pk, sk) = keygen::<G<Toy>, _>(ell, &mut r);
            let m = G::<Toy>::random(&mut r);
            let ct = encrypt(&pk, &m, &mut r);
            assert_eq!(decrypt(&sk, &ct), Some(m), "ell={ell}");
        }
    }

    #[test]
    fn key_length_checked() {
        let mut r = rand::rngs::StdRng::seed_from_u64(5);
        let (pk, sk) = keygen::<ModGroup<Mini1009>, _>(4, &mut r);
        let m = ModGroup::<Mini1009>::random(&mut r);
        let ct = encrypt(&pk, &m, &mut r);
        let short = NsSk {
            x: sk.x[..3].to_vec(),
        };
        assert_eq!(decrypt(&short, &ct), None);
    }

    #[test]
    fn leakage_bound_shape() {
        // grows linearly in ℓ, shrinks in n
        assert!(leakage_bound(10, 256, 128) > leakage_bound(5, 256, 128));
        assert!(leakage_bound(10, 256, 128) > leakage_bound(10, 256, 512));
        assert_eq!(leakage_bound(2, 256, 0), 0);
    }
}
