//! Bit-by-bit encryption — the cost profile of the BKKV \[11\] family.
//!
//! \[11\] encrypts single bits with `ω(n)` group elements and `ω(n)`
//! exponentiations per bit. This baseline reproduces that *cost shape*
//! (experiment T2 measures it with the same instrumentation as DLR):
//! each plaintext bit is a Naor–Segev encryption of `g^b` under an
//! `n_elems`-element key.

use crate::naor_segev::{self, NsCt, NsPk, NsSk};
use dlr_curve::Group;
use rand::RngCore;

/// Public key (one NS key reused across bit positions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPk<G: Group> {
    inner: NsPk<G>,
}

/// Secret key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSk<G: Group> {
    inner: NsSk<G>,
}

/// Ciphertext: one NS ciphertext **per bit**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitCt<G: Group> {
    /// Per-bit component ciphertexts.
    pub bits: Vec<NsCt<G>>,
}

impl<G: Group> BitCt<G> {
    /// Total group elements in this ciphertext (the T2 metric).
    pub fn group_elements(&self) -> usize {
        self.bits.iter().map(|ct| ct.c.len() + 1).sum()
    }
}

/// Generate keys with `n_elems` group elements of key material per bit
/// (the `ω(n)` knob).
pub fn keygen<G: Group, R: RngCore + ?Sized>(n_elems: usize, rng: &mut R) -> (BitPk<G>, BitSk<G>) {
    let (pk, sk) = naor_segev::keygen(n_elems, rng);
    (BitPk { inner: pk }, BitSk { inner: sk })
}

/// Encrypt a byte string bit-by-bit (MSB first).
pub fn encrypt<G: Group, R: RngCore + ?Sized>(
    pk: &BitPk<G>,
    message: &[u8],
    rng: &mut R,
) -> BitCt<G> {
    let g = G::generator();
    let bits = message
        .iter()
        .flat_map(|byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
        .map(|b| {
            let m = if b { g } else { G::identity() };
            naor_segev::encrypt(&pk.inner, &m, rng)
        })
        .collect();
    BitCt { bits }
}

/// Decrypt. Returns `None` if any component is malformed or decodes to
/// neither `1` nor `g`.
pub fn decrypt<G: Group>(sk: &BitSk<G>, ct: &BitCt<G>) -> Option<Vec<u8>> {
    if !ct.bits.len().is_multiple_of(8) {
        return None;
    }
    let g = G::generator();
    let mut out = vec![0u8; ct.bits.len() / 8];
    for (i, comp) in ct.bits.iter().enumerate() {
        let m = naor_segev::decrypt(&sk.inner, comp)?;
        if m == g {
            out[i / 8] |= 1 << (7 - i % 8);
        } else if !m.is_identity() {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlr_curve::modgroup::{Mini1009, ModGroup};
    use rand::SeedableRng;

    type MG = ModGroup<Mini1009>;

    #[test]
    fn roundtrip() {
        let mut r = rand::rngs::StdRng::seed_from_u64(6);
        let (pk, sk) = keygen::<MG, _>(4, &mut r);
        for msg in [&b"a"[..], b"hello", &[0u8, 255, 170]] {
            let ct = encrypt(&pk, msg, &mut r);
            assert_eq!(decrypt(&sk, &ct).as_deref(), Some(msg));
        }
    }

    #[test]
    fn cost_scales_with_message_and_n() {
        let mut r = rand::rngs::StdRng::seed_from_u64(7);
        let (pk4, _) = keygen::<MG, _>(4, &mut r);
        let (pk8, _) = keygen::<MG, _>(8, &mut r);
        let ct4 = encrypt(&pk4, b"ab", &mut r);
        let ct8 = encrypt(&pk8, b"ab", &mut r);
        // 16 bits × (n+1) elements
        assert_eq!(ct4.group_elements(), 16 * 5);
        assert_eq!(ct8.group_elements(), 16 * 9);
        let ct4long = encrypt(&pk4, b"abcd", &mut r);
        assert_eq!(ct4long.group_elements(), 32 * 5);
    }

    #[test]
    fn truncated_ciphertext_rejected() {
        let mut r = rand::rngs::StdRng::seed_from_u64(8);
        let (pk, sk) = keygen::<MG, _>(4, &mut r);
        let mut ct = encrypt(&pk, b"x", &mut r);
        ct.bits.pop();
        assert_eq!(decrypt(&sk, &ct), None);
    }
}
