//! End-to-end CLI test: drives the compiled `dlr` binary through
//! keygen → info → encrypt → refresh → decrypt in a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn dlr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dlr"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlr-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_file_roundtrip() {
    let dir = tmpdir("roundtrip");
    let keys = dir.join("keys");
    let pk = keys.join("pk.dlr");
    let sk1 = keys.join("sk1.dlr");
    let sk2 = keys.join("sk2.dlr");

    let out = dlr()
        .args(["keygen", "--out-dir", keys.to_str().unwrap(), "--n", "16", "--lambda", "64"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(pk.exists() && sk1.exists() && sk2.exists());

    let out = dlr()
        .args(["info", "--pk", pk.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("κ"), "{stdout}");

    let plain = dir.join("msg.txt");
    std::fs::write(&plain, b"top secret bytes\x00\xff").unwrap();
    let ct = dir.join("msg.ct");
    let out = dlr()
        .args([
            "encrypt", "--pk", pk.to_str().unwrap(),
            "--in", plain.to_str().unwrap(), "--out", ct.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // refresh rotates both share files in place
    let sk1_before = std::fs::read(&sk1).unwrap();
    let out = dlr()
        .args([
            "refresh", "--pk", pk.to_str().unwrap(),
            "--sk1", sk1.to_str().unwrap(), "--sk2", sk2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_ne!(std::fs::read(&sk1).unwrap(), sk1_before);

    // old ciphertext decrypts under the refreshed shares
    let recovered = dir.join("msg.out");
    let out = dlr()
        .args([
            "decrypt", "--pk", pk.to_str().unwrap(),
            "--sk1", sk1.to_str().unwrap(), "--sk2", sk2.to_str().unwrap(),
            "--in", ct.to_str().unwrap(), "--out", recovered.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        std::fs::read(&recovered).unwrap(),
        b"top secret bytes\x00\xff"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = dlr().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = dlr().args(["decrypt", "--pk", "/nonexistent"]).output().unwrap();
    assert!(!out.status.success());
    // help succeeds
    let out = dlr().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("keygen"));
}

#[test]
fn mismatched_keys_rejected() {
    let dir = tmpdir("mismatch");
    let keys_a = dir.join("a");
    let keys_b = dir.join("b");
    for k in [&keys_a, &keys_b] {
        let out = dlr()
            .args(["keygen", "--out-dir", k.to_str().unwrap(), "--n", "16", "--lambda", "64"])
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    let plain = dir.join("m.txt");
    std::fs::write(&plain, b"x").unwrap();
    let ct = dir.join("m.ct");
    assert!(dlr()
        .args([
            "encrypt", "--pk", keys_a.join("pk.dlr").to_str().unwrap(),
            "--in", plain.to_str().unwrap(), "--out", ct.to_str().unwrap(),
        ])
        .output()
        .unwrap()
        .status
        .success());
    // decrypting with instance B's shares: MAC failure, nonzero exit
    let out = dlr()
        .args([
            "decrypt", "--pk", keys_b.join("pk.dlr").to_str().unwrap(),
            "--sk1", keys_b.join("sk1.dlr").to_str().unwrap(),
            "--sk2", keys_b.join("sk2.dlr").to_str().unwrap(),
            "--in", ct.to_str().unwrap(), "--out", dir.join("out").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
