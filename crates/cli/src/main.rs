//! `dlr` — command-line interface for the distributed encryption system.
//!
//! ```text
//! dlr keygen  --out-dir keys [--curve toy|ss512] [--n 32] [--lambda 256]
//! dlr info    --pk keys/pk.dlr [--curve toy]
//! dlr encrypt --pk keys/pk.dlr --in secret.txt --out secret.dlrct
//! dlr decrypt --pk keys/pk.dlr --sk1 keys/sk1.dlr --sk2 keys/sk2.dlr \
//!             --in secret.dlrct --out secret.txt
//! dlr refresh --pk keys/pk.dlr --sk1 keys/sk1.dlr --sk2 keys/sk2.dlr
//! dlr serve-p2 --pk keys/pk.dlr --sk2 keys/sk2.dlr --listen 127.0.0.1:7700
//! dlr decrypt-remote --pk keys/pk.dlr --sk1 keys/sk1.dlr \
//!             --connect 127.0.0.1:7700 --in secret.dlrct --out secret.txt
//! ```
//!
//! `decrypt` runs both protocol roles in-process (useful for tests and
//! single-host deployments); `serve-p2`/`decrypt-remote` split them across
//! a real TCP connection, smart-card style.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
