//! CLI subcommand implementations, generic over the curve parameter set.

use crate::args::{ArgError, Args};
use dlr_core::dlr::{self, Party1, Party2, PublicKey, Share1, Share2};
use dlr_core::driver::{self, GENERATION_ANY};
use dlr_core::error::CoreError;
use dlr_core::kem::{self, HybridCiphertext};
use dlr_core::params::SchemeParams;
use dlr_curve::{Group, Pairing, Ss1024, Ss512, Ss768, Toy};
use dlr_protocol::runtime::run_pair;
use dlr_protocol::transport::TcpTransport;
use dlr_protocol::Transport;
use dlr_cluster::{run_fleet_ladder, FleetFault, FleetLadderConfig, FleetLadderKey};
use dlr_server::{Keyring, LoadgenConfig, Server, ServerConfig};
use std::error::Error;
use std::fs;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

type AnyError = Box<dyn Error>;

const HELP: &str = "\
dlr — distributed public key encryption secure against continual leakage

subcommands:
  keygen          --out-dir DIR [--curve toy|ss512|ss768|ss1024] [--n N] [--lambda L]
  info            --pk FILE [--curve C]
  encrypt         --pk FILE --in FILE --out FILE [--curve C]
  decrypt         --pk FILE --sk1 FILE --sk2 FILE --in FILE --out FILE [--curve C]
  refresh         --pk FILE --sk1 FILE --sk2 FILE [--curve C]
  serve-p2        --pk FILE --sk2 FILE --listen ADDR [--curve C] [--key-id ID]
                  [--max-sessions N] [--workers N] [--shards N]
                  [--epoch-secs S] [--stats-json FILE] [--stats-secs S]
                  [--batch-max N] [--batch-wait-us US]
  decrypt-remote  --pk FILE --sk1 FILE --connect ADDR --in FILE --out FILE
                  [--curve C] [--key-id ID] [--retries N]
  loadgen         --pk FILE --sk1 FILE --connect ADDR [--curve C] [--key-id ID]
                  [--clients N] [--requests N] [--out FILE]
  cluster         [--curve C] [--replicas N] [--keys K] [--clients N] [--requests N]
                  [--shards N] [--n N] [--lambda L] [--out FILE]
                  [--fault-ms MS] [--downtime-ms MS] [--fault-replica I]
                  [--epoch-sweep-secs S] [--batch-max N] [--batch-wait-us US]
  metrics         [--curve C] [--trials N] [--n N] [--lambda L]
  artifact        [--profile kick-tires|full] [--out DIR] [--mode all|generate|check]
                  [--docs FILE] [--l2-workers N,N,...]
  help

`serve-p2` runs the concurrent dlr-server key-share service: a fixed set
of readiness event loops (--workers, 0 = auto) driving nonblocking
sessions, the keyring sharded across them by key id (--shards, 0 = one
per worker), per-session key selection via hello, epoch-driven refresh
boundaries (--epoch-secs), durable share persistence back to --sk2 after
every refresh, and periodic JSON stats dumps. --batch-max N with N != 1
turns on dynamic cross-request batching: decrypt requests decoded in the
same readiness tick are executed as one fused multi-exponentiation batch
per key (N = 0 removes the size cap; --batch-wait-us bounds how long a
multi-request window stays open; a lone request is flushed immediately,
preserving idle latency). `loadgen` drives a running server with
concurrent closed-loop decrypt clients and prints (or writes with --out)
a throughput/latency report in dlr-metrics JSON.

`cluster` is a self-contained fleet demo: it generates K keys in
process, spawns a key-sharded fleet of --replicas dlr-server instances
(each owning the slice of the FNV-1a key ring whose `shard % replicas`
lands on it), then drives the routed closed-loop load generator — every
client follows NotMine redirects and fails over on replica death. With
--fault-ms it kills replica --fault-replica (default 0) that many ms
into the run and restarts it after --downtime-ms, proving routed
clients ride through the outage. --epoch-sweep-secs S rolls a staggered
epoch boundary across the running replicas every S seconds while the
load runs; --batch-max/--batch-wait-us enable per-replica cross-request
batching as in serve-p2. Prints aggregate and per-shard percentiles
plus redirect/failover counters; --out writes the dlr-metrics JSON
report.

`metrics` runs an instrumented in-process session (keygen, encrypt, N
decrypt/refresh trials, plus one transport-backed decrypt+refresh) and
prints the per-phase span tree, group-operation counts and wire traffic.

`artifact` regenerates the measured EXPERIMENTS.md tables (A6 span
fingerprint, A7 fixed-base parity, A8 multiexp crossover, L1 server
load, L2 high-concurrency ladder, L3 fleet replica ladder; the full
profile adds the L1 concurrency ladder, and --l2-workers N,N,... adds
an ungated machine-dependent worker-count sweep of the L2 workload)
into --out (default `out/`) as markdown + CSV
+ raw metrics JSON, then diffs them against the committed tables in
--docs (default `EXPERIMENTS.md`): op-count cells must match exactly,
columns headed `(md)` are machine-dependent and skipped. Exits nonzero
on any drift. `tools/kick-tires.sh` and `tools/full.sh` wrap it.
";

/// Dispatch a parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), AnyError> {
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{HELP}");
        return Ok(());
    }
    let args = Args::parse(argv)?;
    match args.get_or("curve", "toy") {
        "toy" => run::<Toy>(&args),
        "ss512" => run::<Ss512>(&args),
        "ss768" => run::<Ss768>(&args),
        "ss1024" => run::<Ss1024>(&args),
        other => Err(Box::new(ArgError(format!("unknown curve `{other}`")))),
    }
}

fn run<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    match args.command.as_str() {
        "keygen" => keygen::<E>(args),
        "info" => info::<E>(args),
        "encrypt" => encrypt::<E>(args),
        "decrypt" => decrypt::<E>(args),
        "refresh" => refresh::<E>(args),
        "serve-p2" => serve_p2::<E>(args),
        "decrypt-remote" => decrypt_remote::<E>(args),
        "loadgen" => loadgen::<E>(args),
        "cluster" => cluster::<E>(args),
        "metrics" => metrics::<E>(args),
        "artifact" => artifact(args),
        other => Err(Box::new(ArgError(format!(
            "unknown subcommand `{other}` (try `dlr help`)"
        )))),
    }
}

fn load_pk<E: Pairing>(args: &Args) -> Result<PublicKey<E>, AnyError> {
    let bytes = fs::read(args.require("pk")?)?;
    Ok(PublicKey::<E>::from_bytes(&bytes)?)
}

fn load_shares<E: Pairing>(
    args: &Args,
    pk: &PublicKey<E>,
) -> Result<(Share1<E>, Share2<E>), AnyError> {
    let s1 = Share1::<E>::from_bytes(&fs::read(args.require("sk1")?)?, &pk.params)?;
    let s2 = Share2::<E>::from_bytes(&fs::read(args.require("sk2")?)?, &pk.params)?;
    Ok((s1, s2))
}

fn keygen<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let out_dir = args.require("out-dir")?;
    let n = args.get_u32_or("n", 32)?;
    let lambda = args.get_u32_or("lambda", 256)?;
    let params = SchemeParams::derive::<E::Scalar>(n, lambda);
    let mut rng = rand::thread_rng();
    let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut rng);

    fs::create_dir_all(out_dir)?;
    let dir = Path::new(out_dir);
    fs::write(dir.join("pk.dlr"), pk.to_bytes())?;
    fs::write(dir.join("sk1.dlr"), s1.to_bytes())?;
    fs::write(dir.join("sk2.dlr"), s2.to_bytes())?;
    println!(
        "wrote {}/pk.dlr, sk1.dlr (device P1), sk2.dlr (device P2); κ={}, ℓ={}",
        out_dir, params.kappa, params.ell
    );
    println!("provision sk1 and sk2 onto *different* devices, then delete them here.");
    Ok(())
}

fn info<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let pk = load_pk::<E>(args)?;
    let p = pk.params;
    println!("DLR public key");
    println!("  security parameter n : {} (ε = 2^-{})", p.n, p.n);
    println!("  leakage parameter λ  : {} bits/period from P1", p.lambda);
    println!("  group order bits     : {}", p.log_p);
    println!("  κ (HPSKE key len)    : {}", p.kappa);
    println!("  ℓ (Πss key len)      : {}", p.ell);
    Ok(())
}

fn encrypt<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let pk = load_pk::<E>(args)?;
    let payload = fs::read(args.require("in")?)?;
    let mut rng = rand::thread_rng();
    let ct = kem::seal(&pk, &payload, &mut rng);
    fs::write(args.require("out")?, ct.to_bytes())?;
    println!(
        "encrypted {} bytes -> {} bytes",
        payload.len(),
        ct.to_bytes().len()
    );
    Ok(())
}

fn decrypt<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let pk = load_pk::<E>(args)?;
    let (s1, s2) = load_shares::<E>(args, &pk)?;
    let ct = HybridCiphertext::<E>::from_bytes(&fs::read(args.require("in")?)?)?;
    let mut rng = rand::thread_rng();
    let mut p1 = Party1::new(pk.clone(), s1);
    let mut p2 = Party2::new(pk, s2);
    let payload = kem::open_local(&mut p1, &mut p2, &ct, &mut rng)?;
    fs::write(args.require("out")?, &payload)?;
    println!("decrypted {} bytes", payload.len());
    Ok(())
}

fn refresh<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let pk = load_pk::<E>(args)?;
    let (s1, s2) = load_shares::<E>(args, &pk)?;
    let mut rng = rand::thread_rng();
    let mut p1 = Party1::new(pk.clone(), s1);
    let mut p2 = Party2::new(pk.clone(), s2);
    dlr::refresh_local(&mut p1, &mut p2, &mut rng)?;
    fs::write(args.require("sk1")?, p1.share().to_bytes())?;
    fs::write(args.require("sk2")?, p2.share().to_bytes())?;
    println!("shares refreshed in place (public key unchanged)");
    Ok(())
}

fn serve_p2<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let pk = load_pk::<E>(args)?;
    let sk2_path = PathBuf::from(args.require("sk2")?);
    let s2 = Share2::<E>::from_bytes(&fs::read(&sk2_path)?, &pk.params)?;
    let key_id = args.get_or("key-id", "default").as_bytes().to_vec();

    // The share file doubles as the durable store: every refresh is
    // persisted back to it atomically before the reply leaves.
    let mut keyring = Keyring::new();
    keyring.insert_persistent(&key_id, pk, s2, sk2_path);

    let epoch_secs = args.get_u32_or("epoch-secs", 0)?;
    let stats_secs = args.get_u32_or("stats-secs", 10)?;
    let config = ServerConfig {
        max_sessions: args.get_u32_or("max-sessions", 32)? as usize,
        workers: args.get_u32_or("workers", 0)? as usize,
        shards: args.get_u32_or("shards", 0)? as usize,
        epoch_interval: (epoch_secs > 0).then(|| Duration::from_secs(epoch_secs.into())),
        stats_interval: (stats_secs > 0).then(|| Duration::from_secs(stats_secs.into())),
        stats_path: args.options_get("stats-json").map(PathBuf::from),
        batch_max: args.get_u32_or("batch-max", 1)? as usize,
        batch_wait: Duration::from_micros(args.get_u32_or("batch-wait-us", 0)?.into()),
        ..ServerConfig::default()
    };
    let (workers, shards) = (config.resolved_workers(), config.resolved_shards());
    let batching = if config.batching_enabled() {
        format!(
            ", batching <= {} / {} µs",
            if config.batch_max == 0 {
                "∞".to_string()
            } else {
                config.batch_max.to_string()
            },
            config.batch_wait.as_micros()
        )
    } else {
        String::new()
    };
    let server = Server::bind(args.require("listen")?, Arc::new(keyring), config)?;
    println!(
        "dlr-server: P2 serving on {} (key id `{}`, {workers} workers, {shards} shards{batching})",
        server.handle().local_addr(),
        args.get_or("key-id", "default"),
    );
    let stats = server.run()?;
    println!(
        "server exited: {} sessions, {} decrypts, {} refreshes, {} error replies",
        stats.sessions_completed, stats.requests_decrypt, stats.refreshes, stats.error_replies
    );
    Ok(())
}

fn decrypt_remote<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let pk = load_pk::<E>(args)?;
    let s1 = Share1::<E>::from_bytes(&fs::read(args.require("sk1")?)?, &pk.params)?;
    let ct = HybridCiphertext::<E>::from_bytes(&fs::read(args.require("in")?)?)?;
    let addr = args.require("connect")?.to_string();
    let key_id = args.get_or("key-id", "default").as_bytes().to_vec();
    let mut rng = rand::thread_rng();
    let mut p1 = Party1::new(pk.clone(), s1);

    // KEM decap over the wire with capped-exponential-backoff retry
    // (reconnect + re-hello per attempt), DEM locally.
    let policy = driver::RetryPolicy {
        max_attempts: args.get_u32_or("retries", 4)?.max(1),
        ..driver::RetryPolicy::default()
    };
    let mut connect = || -> Result<Box<dyn Transport>, CoreError> {
        let stream = TcpStream::connect(&addr).map_err(dlr_protocol::TransportError::from)?;
        let mut t = TcpTransport::new(stream);
        let _ = t.set_nodelay(true);
        driver::p1_hello(&mut t, &key_id, GENERATION_ANY)?;
        Ok(Box::new(t))
    };
    let k = driver::p1_decrypt_with_retry(&mut p1, &ct.kem, &mut connect, &policy, &mut rng)?;
    let payload = kem::open_with_key::<E>(&k, &ct)?;
    fs::write(args.require("out")?, &payload)?;
    println!("decrypted {} bytes via remote P2", payload.len());
    Ok(())
}

fn loadgen<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let pk = load_pk::<E>(args)?;
    let s1 = Share1::<E>::from_bytes(&fs::read(args.require("sk1")?)?, &pk.params)?;
    let addr = args
        .require("connect")?
        .parse()
        .map_err(|e| ArgError(format!("--connect must be a socket address: {e}")))?;
    let config = LoadgenConfig {
        clients: args.get_u32_or("clients", 4)? as usize,
        requests_per_client: args.get_u32_or("requests", 25)? as usize,
        key_id: args.get_or("key-id", "default").as_bytes().to_vec(),
        ..LoadgenConfig::default()
    };
    let mut rng = rand::thread_rng();
    let outcome = dlr_server::run_loadgen::<E, _>(addr, &pk, &s1, &config, &mut rng);
    let report = outcome.to_report().to_json();
    match args.options_get("out") {
        Some(path) => {
            fs::write(path, &report)?;
            println!(
                "loadgen: {}/{} ok, {:.1} req/s, p50 {} µs, p99 {} µs -> {path}",
                outcome.successes,
                outcome.requests,
                outcome.throughput_rps(),
                outcome.latency_percentile_ns(50.0) / 1_000,
                outcome.latency_percentile_ns(99.0) / 1_000,
            );
        }
        None => println!("{report}"),
    }
    if outcome.failures > 0 || outcome.mismatches > 0 {
        return Err(Box::new(ArgError(format!(
            "loadgen saw {} failures and {} plaintext mismatches",
            outcome.failures, outcome.mismatches
        ))));
    }
    Ok(())
}

/// Self-contained fleet demo: keygen in process, spawn a key-sharded
/// replica fleet, drive it with routed clients, optionally kill and
/// restart one replica mid-load, and report per-shard percentiles.
fn cluster<E: Pairing>(args: &Args) -> Result<(), AnyError> {
    let replicas = (args.get_u32_or("replicas", 2)? as usize).max(1);
    let key_count = (args.get_u32_or("keys", 4)? as usize).max(1);
    let clients = (args.get_u32_or("clients", 4)? as usize).max(1);
    let requests = args.get_u32_or("requests", 25)? as usize;
    let shards = args.get_u32_or("shards", 0)? as usize;
    let n = args.get_u32_or("n", 16)?;
    let lambda = args.get_u32_or("lambda", 64)?;
    let fault_ms = args.get_u32_or("fault-ms", 0)?;
    let epoch_sweep_secs = args.get_u32_or("epoch-sweep-secs", 0)?;

    let params = SchemeParams::derive::<E::Scalar>(n, lambda);
    let mut rng = rand::thread_rng();
    let keys: Vec<FleetLadderKey<E>> = (0..key_count)
        .map(|i| {
            let (pk, share1, share2) = dlr::keygen::<E, _>(params, &mut rng);
            FleetLadderKey {
                id: format!("key-{i}").into_bytes(),
                pk,
                share1,
                share2,
            }
        })
        .collect();

    let data_dir = std::env::temp_dir().join(format!("dlr-cluster-cli-{}", std::process::id()));
    let _ = fs::remove_dir_all(&data_dir);
    let config = FleetLadderConfig {
        replica_rungs: vec![replicas],
        shards,
        data_dir: data_dir.clone(),
        base_server: ServerConfig {
            max_sessions: clients + 2,
            poll_interval: Duration::from_millis(5),
            batch_max: args.get_u32_or("batch-max", 1)? as usize,
            batch_wait: Duration::from_micros(args.get_u32_or("batch-wait-us", 0)?.into()),
            ..ServerConfig::default()
        },
        base: dlr_cluster::FleetLoadgenConfig {
            clients,
            requests_per_client: requests,
            read_timeout: Some(Duration::from_millis(2_000)),
            max_reconnects: 64,
            backoff: driver::RetryPolicy {
                max_attempts: 12,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(50),
                ..driver::RetryPolicy::default()
            },
            ..dlr_cluster::FleetLoadgenConfig::default()
        },
        fault: (fault_ms > 0).then(|| FleetFault {
            replica: args.get_u32_or("fault-replica", 0).unwrap_or(0) as usize,
            delay: Duration::from_millis(fault_ms.into()),
            downtime: Duration::from_millis(
                args.get_u32_or("downtime-ms", 150).unwrap_or(150).into(),
            ),
        }),
        epoch_sweep: (epoch_sweep_secs > 0)
            .then(|| Duration::from_secs(epoch_sweep_secs.into())),
    };
    let rungs = run_fleet_ladder(&config, &keys, &mut rng)?;
    let _ = fs::remove_dir_all(&data_dir);
    let rung = rungs.into_iter().next().expect("one rung requested");
    let outcome = &rung.outcome;

    println!(
        "cluster: {replicas} replicas / {} shards, {key_count} keys, {clients} clients x {requests} reqs",
        rung.topology.shards,
    );
    println!(
        "  {}/{} ok, {:.1} req/s, p50 {} µs, p95 {} µs, p99 {} µs",
        outcome.successes,
        outcome.requests,
        outcome.throughput_rps(),
        outcome.latency_percentile_ns(50.0) / 1_000,
        outcome.latency_percentile_ns(95.0) / 1_000,
        outcome.latency_percentile_ns(99.0) / 1_000,
    );
    println!(
        "  {} redirects, {} failovers, {} reconnects{}",
        outcome.redirects,
        outcome.failovers,
        outcome.reconnects,
        match rung.restarted_replica {
            Some(i) => format!(" (replica {i} killed and restarted mid-run)"),
            None => String::new(),
        },
    );
    for (&shard, samples) in &outcome.per_shard {
        println!(
            "  shard {shard} -> replica {}: {} reqs, p50 {} µs, p95 {} µs",
            shard % replicas,
            samples.len(),
            outcome.shard_percentile_ns(shard, 50.0) / 1_000,
            outcome.shard_percentile_ns(shard, 95.0) / 1_000,
        );
    }
    if let Some(path) = args.options_get("out") {
        fs::write(path, outcome.to_report(&rung.topology).to_json())?;
        println!("  wrote {path}");
    }
    if outcome.failures > 0 || outcome.mismatches > 0 || outcome.client_panics > 0 {
        return Err(Box::new(ArgError(format!(
            "cluster run saw {} failures, {} mismatches, {} client panics",
            outcome.failures, outcome.mismatches, outcome.client_panics
        ))));
    }
    Ok(())
}

fn metrics<E: Pairing>(args: &Args) -> Result<(), AnyError>
where
    Party1<E>: Send,
    Party2<E>: Send,
    E::Gt: Send,
{
    let trials = args.get_u32_or("trials", 5)?;
    let n = args.get_u32_or("n", 16)?;
    let lambda = args.get_u32_or("lambda", 64)?;

    dlr_metrics::reset();
    let params = SchemeParams::derive::<E::Scalar>(n, lambda);
    let mut rng = rand::thread_rng();
    let (pk, s1, s2) = dlr::keygen::<E, _>(params, &mut rng);
    let m = E::Gt::random(&mut rng);
    let ct = dlr::encrypt(&pk, &m, &mut rng);

    let mut p1 = Party1::new(pk.clone(), s1.clone());
    let mut p2 = Party2::new(pk.clone(), s2.clone());
    for _ in 0..trials {
        dlr::decrypt_local(&mut p1, &mut p2, &ct, &mut rng)?;
        dlr::refresh_local(&mut p1, &mut p2, &mut rng)?;
    }

    // One transport-backed session for wire-level statistics.
    let (mut d1, mut d2) = (Party1::new(pk.clone(), s1), Party2::new(pk, s2));
    let out = run_pair(
        move |t| {
            let mut rng = rand::thread_rng();
            let got = driver::p1_decrypt(&mut d1, &ct, t, &mut rng).expect("p1 decrypt");
            driver::p1_refresh(&mut d1, t, &mut rng).expect("p1 refresh");
            driver::p1_shutdown(t).expect("p1 shutdown");
            got
        },
        move |t| {
            let mut rng = rand::thread_rng();
            driver::p2_serve_loop(&mut d2, t, &mut rng).expect("p2 serve loop")
        },
    );
    if out.p1 != m {
        return Err(Box::new(ArgError("instrumented session decrypted wrong value".into())));
    }

    let mut report = dlr_metrics::Report::capture()
        .with_meta("curve", args.get_or("curve", "toy"))
        .with_meta("trials", &trials.to_string());
    report.push_wire("driver.session", out.wire);
    println!("{}", report.render());
    Ok(())
}

/// The artifact harness: regenerate the measured EXPERIMENTS.md tables
/// into `--out` and/or drift-check them against the committed copies.
/// Curve-independent — the tables fix their own parameter sets (TOY for
/// the session and load tables, TOY+SS512 for the A7 parity table).
fn artifact(args: &Args) -> Result<(), AnyError> {
    use dlr_bench::artifact as art;

    let mut profile = match args.get_or("profile", "kick-tires") {
        "kick-tires" => art::kick_tires_profile(),
        "full" => art::full_profile(),
        other => {
            return Err(Box::new(ArgError(format!(
                "unknown profile `{other}` (kick-tires|full)"
            ))))
        }
    };
    if let Some(list) = args.options_get("l2-workers") {
        profile.l2_worker_rungs = list
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| {
                ArgError(format!(
                    "--l2-workers must be a comma-separated list of worker counts, got `{list}`"
                ))
            })?;
    }
    let out_dir = PathBuf::from(args.get_or("out", "out"));
    let docs = PathBuf::from(args.get_or("docs", "EXPERIMENTS.md"));
    let mode = args.get_or("mode", "all");
    if !matches!(mode, "all" | "generate" | "check") {
        return Err(Box::new(ArgError(format!(
            "unknown mode `{mode}` (all|generate|check)"
        ))));
    }

    if mode != "check" {
        println!("artifact: generating tables (profile `{}`) ...", profile.name);
        let generated = art::generate(&profile, &out_dir).map_err(ArgError)?;
        for table in &generated.tables {
            println!("  regenerated {}", table.id);
        }
        for file in &generated.files {
            println!("  wrote {}", file.display());
        }
    }
    if mode == "generate" {
        return Ok(());
    }

    println!("artifact: drift check against {} ...", docs.display());
    let checks = art::check_docs(&docs, &out_dir);
    let mut drifted = false;
    for check in &checks {
        if check.passed() {
            println!(
                "  {}: OK ({} exact cells match, {} machine-dependent cells skipped)",
                check.id, check.exact_cells, check.skipped_cells
            );
        } else {
            drifted = true;
            println!("  {}: DRIFT", check.id);
            for problem in &check.problems {
                println!("    {problem}");
            }
        }
    }
    if drifted {
        return Err(Box::new(ArgError(
            "regenerated tables disagree with the committed EXPERIMENTS.md (see above); \
             if the change is intentional, paste the regenerated out/<ID>.md blocks into \
             the docs"
                .into(),
        )));
    }
    println!("artifact: all gated tables match the committed docs");
    Ok(())
}
