//! Tiny hand-rolled `--flag value` argument parser (no external
//! dependencies, consistent with the workspace policy).

use std::collections::BTreeMap;

/// Parsed arguments: a subcommand plus `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first positional).
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Argument parsing failure.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse `argv` (without the program name).
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = argv.iter();
        out.command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand (try `dlr help`)".into()))?
            .clone();
        while let Some(flag) = it.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected --flag, got `{flag}`")))?;
            let value = it
                .next()
                .ok_or_else(|| ArgError(format!("--{key} requires a value")))?;
            if out.options.insert(key.to_string(), value.clone()).is_some() {
                return Err(ArgError(format!("--{key} given twice")));
            }
        }
        Ok(out)
    }

    /// Required option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required --{key}")))
    }

    /// Optional option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Optional option without a default.
    pub fn options_get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional numeric option.
    pub fn get_u32_or(&self, key: &str, default: u32) -> Result<u32, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} must be a number, got `{v}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&sv(&["keygen", "--out-dir", "keys", "--lambda", "256"])).unwrap();
        assert_eq!(a.command, "keygen");
        assert_eq!(a.require("out-dir").unwrap(), "keys");
        assert_eq!(a.get_u32_or("lambda", 0).unwrap(), 256);
        assert_eq!(a.get_or("curve", "toy"), "toy");
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&sv(&[])).is_err());
        assert!(Args::parse(&sv(&["x", "naked"])).is_err());
        assert!(Args::parse(&sv(&["x", "--a"])).is_err());
        assert!(Args::parse(&sv(&["x", "--a", "1", "--a", "2"])).is_err());
        let a = Args::parse(&sv(&["x", "--n", "abc"])).unwrap();
        assert!(a.get_u32_or("n", 1).is_err());
        assert!(a.require("missing").is_err());
    }
}
